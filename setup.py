"""Setuptools shim.

The offline environment lacks the ``wheel`` package, which PEP 660 editable
installs (``pip install -e .``) need; ``python setup.py develop`` installs
the package in editable mode without it.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
