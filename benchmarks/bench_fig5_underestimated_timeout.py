"""Fig. 5 — latency when the timeout is *under*estimated.

Paper setup (§IV-B2): network fixed at N(250, 50); lambda swept down to
150 ms; only the partially-synchronous protocols participate (an
underestimated delay violates the synchronous protocols' assumption, and
async BA has no lambda at all).

Paper claims:
* LibraBFT is unaffected (timeout certificates keep rounds synchronized);
* PBFT does better as lambda approaches the true delay;
* HotStuff+NS becomes very unstable — its naive synchronizer cannot solve
  view synchronization efficiently; the paper reports a 5.3x mean latency
  blow-up and extreme cases around 80 s (§IV-D).

Our reproduction captures the ordering and the instability (std and
worst-case blow up for HotStuff+NS only); the absolute blow-up factor is
implementation-sensitive — see EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.analysis import ExperimentCell, render_series, run_cell
from repro.protocols import PARTIALLY_SYNCHRONOUS, get_protocol

from _common import PAPER_PROTOCOLS, run_once, save_artifact

LAMBDAS = [150.0, 250.0, 500.0, 1000.0]
MEAN, STD = 250.0, 50.0


def test_fig5_underestimated_timeout(benchmark) -> None:
    protocols = [
        p for p in PAPER_PROTOCOLS
        if get_protocol(p).network_model == PARTIALLY_SYNCHRONOUS
    ]

    def experiment():
        return {
            (protocol, lam): run_cell(
                ExperimentCell(
                    protocol=protocol, lam=lam, mean=MEAN, std=STD,
                    max_time=7_200_000.0,
                )
            )
            for protocol in protocols
            for lam in LAMBDAS
        }

    table = run_once(benchmark, experiment)

    series = {
        protocol: [
            table[(protocol, lam)].latency_per_decision.format(1 / 1000, "s")
            for lam in LAMBDAS
        ]
        for protocol in protocols
    }
    save_artifact(
        "fig5_underestimated_timeout",
        render_series(
            "Fig 5: latency per decision vs lambda, p-sync protocols (N(250,50))",
            "lambda", [int(x) for x in LAMBDAS], series,
            note="paper: LibraBFT flat; PBFT improves as lambda approaches the "
            "true delay; HotStuff+NS unstable at lambda=150 (5.3x mean, ~80s "
            "extremes in theirs).",
        ),
    )

    def cell(protocol, lam):
        return table[(protocol, lam)]

    # LibraBFT flat.
    libra_low = cell("librabft", 150.0).latency_per_decision.mean
    libra_ref = cell("librabft", 1000.0).latency_per_decision.mean
    assert libra_low < libra_ref * 1.3, "LibraBFT must be unaffected by small lambda"
    # PBFT monotone improvement toward the true delay.
    pbft = [cell("pbft", lam).latency_per_decision.mean for lam in LAMBDAS]
    assert pbft[0] > pbft[-1], "PBFT should improve as lambda approaches the delay"
    # HotStuff+NS degrades at lambda=150 and is the least stable protocol there.
    hs_low = cell("hotstuff-ns", 150.0)
    hs_ref = cell("hotstuff-ns", 1000.0)
    assert hs_low.latency_per_decision.mean > hs_ref.latency_per_decision.mean * 1.5
    assert (
        hs_low.latency_per_decision.std
        > cell("librabft", 150.0).latency_per_decision.std
    ), "HotStuff+NS must be less stable than LibraBFT at lambda=150"
