"""Throughput bench — open-loop workload saturation curves (PR-9 tentpole).

Where the other benches measure the *kernel* (events/sec, memory), this
bench measures the *system model*: committed transactions per second under
an open-loop Poisson client workload, swept across offered arrival rates
until each protocol saturates.  The expected shape is the classic
throughput–latency curve: below the knee, committed tx/s tracks the
offered rate and latency stays flat; past the knee, committed tx/s
plateaus at the protocol's pipeline capacity while request latency grows
with the queue.

Matrix: {pbft, tendermint, hotstuff-ns} x offered rate in {10, 40, 160}
req/s — 10 clients, a 3000 ms arrival window, batch = 16, batch timeout
= 500 ms, lambda = 1000, the default N(250, 50) network, seed 3.  Each
cell records the exact request counts (a determinism guard: arrivals are
drawn on dedicated ``workload.{client}`` substreams, so submitted and
decided counts must never drift), the committed tx/s, latency
percentiles, and the saturation flag.

``BENCH_throughput.json`` is the committed reference.  The tests assert:

1. **Determinism** — live ``submitted``/``decided`` request counts match
   the committed counts exactly, per cell.
2. **Conservation** — every committed cell decided exactly the requests
   it submitted (open-loop runs drain before terminating).
3. **The curve saturates** — for every protocol the committed curve is
   unsaturated at the lowest rate, saturated at the highest, committed
   tx/s is monotone non-decreasing in the offered rate, and the top-rate
   committed tx/s falls short of the offered rate (the plateau is real).
4. **No regression** (CI perf smoke) — the live headline cells stay under
   ``REPRO_BENCH_MAX_REGRESSION`` (default 2.0) times the committed
   wall-clock medians.

Regenerate after an intentional workload/protocol change (seconds)::

    PYTHONPATH=src python benchmarks/bench_throughput.py --update
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro import SimulationConfig, WorkloadConfig, run_simulation
from repro.analysis import render_table

from _common import run_once, save_artifact

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_throughput.json"

PROTOCOLS = ("pbft", "tendermint", "hotstuff-ns")
RATES = (10.0, 40.0, 160.0)
CLIENTS = 10
DURATION_MS = 3000.0
BATCH = 16
BATCH_TIMEOUT_MS = 500.0
SEED = 3

MAX_REGRESSION = float(os.environ.get("REPRO_BENCH_MAX_REGRESSION", "2.0"))

#: Absolute floor for the wall-clock gate.  The cells here run in single
#: milliseconds, where interpreter warmup and scheduler noise dwarf any
#: multiplicative tolerance; the floor still catches the regressions this
#: gate exists for (a workload path going quadratic is >100x).
MIN_LIMIT_S = 0.5

#: The perf-smoke cells: one mid-curve cell per headline protocol.
SMOKE_CELLS = (("pbft", 40.0), ("hotstuff-ns", 40.0))


def _config(protocol: str, rate: float) -> SimulationConfig:
    return SimulationConfig(
        protocol=protocol,
        n=4,
        lam=1000.0,
        seed=SEED,
        workload=WorkloadConfig(
            rate=rate,
            clients=CLIENTS,
            duration=DURATION_MS,
            batch=BATCH,
            batch_timeout=BATCH_TIMEOUT_MS,
        ),
    )


def measure_cell(protocol: str, rate: float, reps: int = 3) -> dict:
    """Throughput metrics plus median wall-clock of ``reps`` runs.

    The workload numbers are asserted identical across repetitions —
    repetition exists only to stabilize the wall-clock median.
    """
    config = _config(protocol, rate)
    times = []
    cell = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = run_simulation(config, lineage=False)
        times.append(time.perf_counter() - t0)
        wl = result.workload
        assert wl is not None and result.terminated
        current = {
            "submitted": wl.submitted,
            "decided": wl.decided,
            "committed_tx_s": round(wl.committed_tx_s, 2),
            "latency_p50_ms": round(wl.latency_p50_ms, 1),
            "latency_p99_ms": round(wl.latency_p99_ms, 1),
            "max_queue_depth": wl.max_queue_depth,
            "saturated": wl.saturated,
        }
        if cell is None:
            cell = current
        else:
            assert cell == current, (
                f"{protocol}/rate={rate}: workload metrics varied between "
                "repetitions — a determinism break"
            )
    times.sort()
    cell["median_s"] = round(times[len(times) // 2], 3)
    return cell


def load_baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text(encoding="utf-8"))


def _cell_key(protocol: str, rate: float) -> str:
    return f"{protocol}/rate{rate:g}"


# ---------------------------------------------------------------------------
# committed-reference assertions
# ---------------------------------------------------------------------------


def test_committed_matrix_is_complete():
    baseline = load_baseline()
    for protocol in PROTOCOLS:
        for rate in RATES:
            cell = baseline["cells"][_cell_key(protocol, rate)]
            assert cell["submitted"] > 0
            assert cell["committed_tx_s"] > 0


def test_committed_conservation():
    """Every committed cell decided exactly what it submitted: open-loop
    runs only terminate once the workload drains, so a shortfall in the
    artifact means requests were lost.  Pure artifact check."""
    baseline = load_baseline()
    for key, cell in baseline["cells"].items():
        assert cell["decided"] == cell["submitted"], (
            f"{key}: committed artifact lost requests "
            f"({cell['decided']}/{cell['submitted']})"
        )


def test_committed_saturation_curve():
    """The committed curves must show the tentpole claim: each protocol is
    unsaturated at the lowest offered rate, saturated at the highest, with
    monotone non-decreasing committed tx/s that plateaus below the top
    offered rate.  Pure artifact check — no simulation runs."""
    baseline = load_baseline()
    for protocol in PROTOCOLS:
        curve = [baseline["cells"][_cell_key(protocol, r)] for r in RATES]
        assert not curve[0]["saturated"], (
            f"{protocol}: already saturated at {RATES[0]:g} req/s; lower "
            "the bench's bottom rate"
        )
        assert curve[-1]["saturated"], (
            f"{protocol}: not saturated at {RATES[-1]:g} req/s; raise the "
            "bench's top rate"
        )
        tx = [cell["committed_tx_s"] for cell in curve]
        assert tx == sorted(tx), (
            f"{protocol}: committed tx/s not monotone across rates: {tx}"
        )
        assert tx[-1] < RATES[-1], (
            f"{protocol}: top cell commits {tx[-1]} tx/s >= offered "
            f"{RATES[-1]:g} — no plateau, the curve never saturated"
        )


def test_throughput_smoke_regression(benchmark):
    """CI perf-smoke gate: the headline mid-curve cells, live vs committed.

    Guards determinism (exact submitted/decided request counts and
    identical throughput numbers) and wall-clock regression (within
    ``REPRO_BENCH_MAX_REGRESSION`` of the committed medians)."""
    baseline = load_baseline()

    def run() -> dict:
        return {
            _cell_key(protocol, rate): measure_cell(protocol, rate, reps=3)
            for protocol, rate in SMOKE_CELLS
        }

    # Untimed warmup: the cells are milliseconds, so the first simulation's
    # import/alloc warmup would otherwise dominate the timed medians.
    run_simulation(_config(*SMOKE_CELLS[0]), lineage=False)
    live = run_once(benchmark, run)
    rows = []
    for key, cell in live.items():
        ref = baseline["cells"][key]
        for field in ("submitted", "decided"):
            assert cell[field] == ref[field], (
                f"{key}: {field} {cell[field]} != committed {ref[field]}; "
                "arrival-substream RNG consumption drifted — a determinism "
                "break, not noise"
            )
        assert cell["committed_tx_s"] == ref["committed_tx_s"], (
            f"{key}: committed_tx_s {cell['committed_tx_s']} != committed "
            f"{ref['committed_tx_s']} on identical request counts"
        )
        limit = max(MAX_REGRESSION * ref["median_s"], MIN_LIMIT_S)
        assert cell["median_s"] <= limit, (
            f"{key}: live {cell['median_s']:.3f}s exceeds "
            f"{MAX_REGRESSION:.1f}x committed {ref['median_s']:.3f}s "
            f"(floor {MIN_LIMIT_S}s)"
        )
        rows.append(
            (key, f"{cell['decided']}/{cell['submitted']}",
             f"{cell['committed_tx_s']:.1f}", f"{cell['latency_p50_ms']:.0f}",
             f"{ref['median_s']:.3f}", f"{cell['median_s']:.3f}")
        )
    save_artifact(
        "throughput_smoke",
        render_table(
            "Throughput perf smoke: mid-curve cells, live vs committed",
            ["cell", "decided/submitted", "tx/s", "p50 (ms)",
             "ref (s)", "live (s)"],
            rows,
            note=f"gate: live <= {MAX_REGRESSION:.1f}x committed median; "
            "request counts and tx/s must match exactly.",
        ),
    )


# ---------------------------------------------------------------------------
# regeneration
# ---------------------------------------------------------------------------


def _update() -> None:
    cells: dict[str, dict] = {}
    for protocol in PROTOCOLS:
        for rate in RATES:
            key = _cell_key(protocol, rate)
            cells[key] = measure_cell(protocol, rate)
            print(f"{key}: {cells[key]}", flush=True)
    payload = {
        "description": (
            "Committed throughput reference for bench_throughput.py: "
            "open-loop Poisson workload at n=4, lambda=1000, default "
            "N(250,50) network, seed 3; 10 clients over a 3000 ms window, "
            "batch=16, batch timeout=500 ms, swept across offered rates. "
            "submitted/decided are determinism guards: they must never "
            "drift."
        ),
        "workload": {
            "n": 4, "lam": 1000.0, "seed": SEED, "clients": CLIENTS,
            "duration_ms": DURATION_MS, "batch": BATCH,
            "batch_timeout_ms": BATCH_TIMEOUT_MS, "rates": list(RATES),
        },
        "cells": cells,
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {BASELINE_PATH}")


if __name__ == "__main__":
    import sys

    if "--update" in sys.argv:
        _update()
    else:
        baseline = load_baseline()
        for protocol, rate in SMOKE_CELLS:
            live = measure_cell(protocol, rate, reps=1)
            ref = baseline["cells"][_cell_key(protocol, rate)]
            assert live["submitted"] == ref["submitted"]
            assert live["decided"] == ref["decided"]
            print(f"{_cell_key(protocol, rate)}: {live} (committed: {ref})")
        print("ok")
