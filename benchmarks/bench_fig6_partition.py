"""Fig. 6 — time usage under a network-partition attack.

Paper setup (§IV-C1): the attacker splits the network into two subnets;
the partition heals at 60 s (the figure's dotted line).  Synchronous
protocols are excluded except Algorand, which is partition-resilient by
design.

Paper claims:
* every protocol terminates within a few seconds of the heal — except
  HotStuff+NS, whose naive synchronizer accumulated exponentially doubled
  intervals during the outage and must wait them out (the paper observes
  roughly an extra 100 s);
* LibraBFT recovers promptly: timeout votes are retransmitted at a fixed
  cadence and combine into a timeout certificate right after the heal.
"""

from __future__ import annotations

from repro.analysis import ExperimentCell, render_table, run_cell
from repro.core.config import AttackConfig

from _common import run_once, save_artifact

PROTOCOLS = ["algorand", "pbft", "hotstuff-ns", "librabft"]
HEAL_AT_MS = 60_000.0
MEAN, STD = 250.0, 50.0


def _attack() -> AttackConfig:
    return AttackConfig(name="partition", params={"end": HEAL_AT_MS})


def test_fig6_partition(benchmark) -> None:
    def experiment():
        return {
            protocol: run_cell(
                ExperimentCell(
                    protocol=protocol, lam=1000.0, mean=MEAN, std=STD,
                    attack=_attack(), max_time=7_200_000.0,
                )
            )
            for protocol in PROTOCOLS
        }

    table = run_once(benchmark, experiment)

    rows = [
        (
            protocol,
            table[protocol].latency.format(1 / 1000, "s"),
            f"{(table[protocol].latency.mean - HEAL_AT_MS) / 1000:.1f}s",
        )
        for protocol in PROTOCOLS
    ]
    save_artifact(
        "fig6_partition",
        render_table(
            "Fig 6: total time usage under a 2-way partition healing at 60s",
            ["protocol", "total latency", "after heal"],
            rows,
            note="paper: all protocols finish a few seconds after the heal "
            "except HotStuff+NS, which waits out the exponential back-off "
            "accumulated during the outage.",
        ),
    )

    after_heal = {
        p: table[p].latency.mean - HEAL_AT_MS for p in PROTOCOLS
    }
    for protocol in ("algorand", "pbft", "librabft"):
        assert after_heal[protocol] < 15_000.0, (
            f"{protocol} should recover within seconds of the heal "
            f"(took {after_heal[protocol] / 1000:.1f}s)"
        )
    assert after_heal["hotstuff-ns"] > 1.25 * max(
        after_heal[p] for p in ("algorand", "pbft", "librabft")
    ), "HotStuff+NS must be the slowest to recover (accumulated back-off)"
