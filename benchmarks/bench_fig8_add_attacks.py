"""Fig. 8 — static and rushing-adaptive attacks on the ADD+ variants.

Paper setup (§IV-C3/C4), n = 16, f = 5 corruption budget:

* **Left (static attack).**  The attacker must choose its victims before
  the run.  Against ADD+v1's public round-robin schedule it fail-stops the
  first ``f`` scheduled leaders, wasting ``f`` iterations; against
  ADD+v2/v3 the VRF hides future leaders and the same attack is harmless.
* **Right (rushing-adaptive attack).**  The attacker observes each
  iteration's credential messages in flight and corrupts the winner.
  ADD+v2 reveals credentials one phase before the proposal, so the
  attacker wins the race every time until its budget is exhausted
  (~``f`` wasted iterations).  ADD+v3's prepare round binds credential and
  proposal into one send: by the time the winner is identifiable its
  proposal is already beyond retraction, and termination stays
  expected-constant-round.
"""

from __future__ import annotations

from repro.analysis import ExperimentCell, render_table, run_cell
from repro.core.config import AttackConfig

from _common import run_once, save_artifact

BUDGET = 5
VARIANTS = ["add-v1", "add-v2", "add-v3"]


def _cell(protocol: str, attack: AttackConfig | None) -> ExperimentCell:
    return ExperimentCell(
        protocol=protocol,
        lam=1000.0,
        mean=250.0,
        std=50.0,
        attack=attack or AttackConfig(),
        max_time=1_800_000.0,
    )


def test_fig8_add_attacks(benchmark) -> None:
    static = AttackConfig(name="add-static", params={"count": BUDGET})
    adaptive = AttackConfig(name="add-adaptive", params={"budget": BUDGET})

    def experiment():
        table = {}
        for protocol in VARIANTS:
            table[(protocol, "benign")] = run_cell(_cell(protocol, None))
            table[(protocol, "static")] = run_cell(_cell(protocol, static))
            if protocol != "add-v1":
                table[(protocol, "adaptive")] = run_cell(_cell(protocol, adaptive))
        return table

    table = run_once(benchmark, experiment)

    def fmt(protocol, attack):
        if (protocol, attack) not in table:
            return "-"
        return table[(protocol, attack)].latency.format(1 / 1000, "s")

    rows = [
        (protocol, fmt(protocol, "benign"), fmt(protocol, "static"), fmt(protocol, "adaptive"))
        for protocol in VARIANTS
    ]
    save_artifact(
        "fig8_add_attacks",
        render_table(
            "Fig 8: ADD+ latency under static (left) and rushing-adaptive "
            "(right) attacks, f=5",
            ["variant", "benign", "static attack", "adaptive attack"],
            rows,
            note="paper: static delays v1 by ~f iterations, v2 immune (VRF); "
            "adaptive delays v2 by ~f iterations, v3 immune (prepare round).",
        ),
    )

    lat = lambda p, a: table[(p, a)].latency.mean  # noqa: E731
    # Static: v1 pays ~f extra iterations (3*lambda each); v2/v3 do not.
    assert lat("add-v1", "static") > lat("add-v1", "benign") + BUDGET * 2_500
    assert lat("add-v2", "static") < lat("add-v2", "benign") * 1.5
    assert lat("add-v3", "static") < lat("add-v3", "benign") * 1.5
    # Adaptive: v2 pays ~f extra iterations (4*lambda each); v3 does not.
    assert lat("add-v2", "adaptive") > lat("add-v2", "benign") + BUDGET * 3_500
    assert lat("add-v3", "adaptive") < lat("add-v3", "benign") * 1.5
