"""Fig. 4 — latency when the timeout is *over*estimated (responsiveness).

Paper setup (§IV-B1): network fixed at N(250, 50); lambda swept from
1000 ms up to 3000 ms.  Claim: "increasing lambda only affects synchronous
protocols" — the responsive protocols (PBFT, HotStuff+NS, LibraBFT, and
async BA, which has no timers at all) sit right of the dotted line and are
flat, while the synchronous protocols' latency grows with lambda because
their phase schedules are clocked off it.
"""

from __future__ import annotations

from repro.analysis import ExperimentCell, render_series, run_cell
from repro.protocols import get_protocol

from _common import PAPER_PROTOCOLS, run_once, save_artifact

LAMBDAS = [1000.0, 1500.0, 2000.0, 2500.0, 3000.0]
MEAN, STD = 250.0, 50.0


def test_fig4_overestimated_timeout(benchmark) -> None:
    protocols = PAPER_PROTOCOLS

    def experiment():
        return {
            (protocol, lam): run_cell(
                ExperimentCell(protocol=protocol, lam=lam, mean=MEAN, std=STD)
            )
            for protocol in protocols
            for lam in LAMBDAS
        }

    table = run_once(benchmark, experiment)

    series = {}
    for protocol in protocols:
        marker = "(responsive)" if get_protocol(protocol).responsive else "(sync)"
        series[f"{protocol} {marker}"] = [
            table[(protocol, lam)].latency_per_decision.format(1 / 1000, "s")
            for lam in LAMBDAS
        ]
    save_artifact(
        "fig4_overestimated_timeout",
        render_series(
            "Fig 4: latency per decision vs lambda (network fixed at N(250,50))",
            "lambda", [int(x) for x in LAMBDAS], series,
            note="paper: increasing lambda only affects synchronous protocols; "
            "responsive ones are flat.",
        ),
    )

    for protocol in protocols:
        low = table[(protocol, LAMBDAS[0])].latency_per_decision.mean
        high = table[(protocol, LAMBDAS[-1])].latency_per_decision.mean
        if get_protocol(protocol).responsive:
            assert high < low * 1.25, (
                f"{protocol} is responsive: tripling lambda must not change latency "
                f"(got {low:.0f} -> {high:.0f} ms)"
            )
        else:
            assert high > low * 2.0, (
                f"{protocol} is lambda-clocked: tripling lambda must inflate latency "
                f"(got {low:.0f} -> {high:.0f} ms)"
            )
