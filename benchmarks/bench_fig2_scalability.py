"""Fig. 2 — simulation wall-clock time vs node count, ours vs BFTSim-style.

Paper claim: the message-level simulator handles 16x the nodes of BFTSim
(512 vs 32) and is orders of magnitude faster at n = 32 (38 ms vs 19.4 s
on the authors' machine); BFTSim fails with out-of-memory beyond 32 nodes.

This bench runs PBFT to one decision (lambda = 1000, N(250, 50)) on both
engines, reports wall-clock per n, and probes the baseline's memory wall.
Absolute times are machine- and language-dependent; the asserted shape is
(a) the baseline is slower at every n >= 8 with a widening gap, and (b) the
baseline refuses n > 32 while the message-level engine keeps going.

Set ``REPRO_BENCH_FULL=1`` to extend the message-level sweep to n = 512
(the paper's right edge; a few minutes in Python).
"""

from __future__ import annotations

import os

import pytest

from repro import SimulationConfig, NetworkConfig, run_simulation
from repro.analysis import render_table
from repro.baseline import run_baseline_simulation
from repro.core.errors import BaselineCapacityError

from _common import run_once, save_artifact

OURS_NODE_COUNTS = [4, 8, 16, 32, 64, 128]
FULL_NODE_COUNTS = [4, 8, 16, 32, 64, 128, 256, 512]
BASELINE_NODE_COUNTS = [4, 8, 16, 32]
OOM_PROBES = [40, 64]


def _config(n: int) -> SimulationConfig:
    return SimulationConfig(
        protocol="pbft",
        n=n,
        lam=1000.0,
        network=NetworkConfig(mean=250.0, std=50.0),
        num_decisions=1,
        seed=1,
    )


def test_fig2_scalability(benchmark) -> None:
    ours_counts = (
        FULL_NODE_COUNTS if os.environ.get("REPRO_BENCH_FULL") else OURS_NODE_COUNTS
    )

    def experiment():
        ours = {n: run_simulation(_config(n)) for n in ours_counts}
        baseline = {n: run_baseline_simulation(_config(n)) for n in BASELINE_NODE_COUNTS}
        oom: dict[int, str] = {}
        for n in OOM_PROBES:
            try:
                run_baseline_simulation(_config(n))
                oom[n] = "ok (unexpected)"
            except BaselineCapacityError:
                oom[n] = "out-of-memory"
        return ours, baseline, oom

    ours, baseline, oom = run_once(benchmark, experiment)

    rows = []
    for n in ours_counts:
        ours_ms = ours[n].wall_clock_seconds * 1000
        if n in baseline:
            base_ms = baseline[n].wall_clock_seconds * 1000
            rows.append((n, f"{ours_ms:.1f}", f"{base_ms:.1f}", f"{base_ms / ours_ms:.1f}x"))
        else:
            rows.append((n, f"{ours_ms:.1f}", oom.get(n, "out-of-memory"), "-"))
    for n in OOM_PROBES:
        if n not in ours:
            rows.append((n, "-", oom[n], "-"))
    save_artifact(
        "fig2_scalability",
        render_table(
            "Fig 2: PBFT simulation wall-clock (lambda=1000, N(250,50), 1 decision)",
            ["n", "ours (ms)", "baseline (ms)", "ratio"],
            rows,
            note="paper: 38 ms vs 19.4 s at n=32; BFTSim OOM beyond 32 nodes. "
            "Absolute times differ by host/language; shape (widening gap, "
            "baseline memory wall past 32) is the reproduced claim.",
        ),
    )

    # Shape assertions.
    assert all(oom[n] == "out-of-memory" for n in OOM_PROBES), (
        "baseline must hit its memory wall past 32 nodes"
    )
    assert ours[max(ours_counts)].terminated, "ours must scale beyond the baseline"
    gap_16 = baseline[16].wall_clock_seconds / ours[16].wall_clock_seconds
    gap_32 = baseline[32].wall_clock_seconds / ours[32].wall_clock_seconds
    assert gap_32 > 1.0, "baseline should be slower at n=32"
    assert gap_32 > gap_16 * 0.8, "the gap should not be shrinking with n"


@pytest.mark.parametrize("n", BASELINE_NODE_COUNTS)
def test_fig2_baseline_latency_agrees(benchmark, n) -> None:
    """Both engines should report comparable *simulated* PBFT latency —
    the engines differ in cost, not in protocol outcome."""

    def experiment():
        return run_simulation(_config(n)), run_baseline_simulation(_config(n))

    ours, baseline = run_once(benchmark, experiment)
    assert ours.terminated and baseline.terminated
    assert abs(ours.latency - baseline.latency) < 500.0
