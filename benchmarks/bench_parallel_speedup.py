"""Parallel engine — wall-clock speedup and determinism cross-check.

The paper repeats every experiment 100 times per configuration (§IV); those
repetitions are independent deterministic runs, so the parallel engine
should scale their wall-clock cost down with the number of cores while
reproducing the serial results bit-for-bit (all deterministic fields; only
``wall_clock_seconds`` — host time — differs).

This bench runs the paper's standard PBFT cell (n=16, lambda=1000,
N(250, 50)) 100 times serially and with ``jobs=4``, records both timings
and the speedup under ``benchmarks/out/``, and asserts:

* the two batches are fingerprint-identical (always), and
* on a machine with >= 4 physical cores, ``jobs=4`` is at least 2x faster
  (skipped on smaller hosts, where a process pool cannot beat serial —
  the artifact still records the measured numbers).
"""

from __future__ import annotations

import os
import time

from repro import SimulationConfig, NetworkConfig, repeat_simulation, result_fingerprint
from repro.analysis import render_table

from _common import run_once, save_artifact

REPETITIONS = 100
JOBS = 4


def _config() -> SimulationConfig:
    return SimulationConfig(
        protocol="pbft",
        n=16,
        lam=1000.0,
        network=NetworkConfig(mean=250.0, std=50.0),
        num_decisions=1,
        seed=1,
    )


def test_parallel_speedup(benchmark) -> None:
    cores = os.cpu_count() or 1

    def experiment():
        t0 = time.perf_counter()
        serial = repeat_simulation(_config(), REPETITIONS, jobs=1)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = repeat_simulation(_config(), REPETITIONS, jobs=JOBS)
        t_parallel = time.perf_counter() - t0
        return serial, parallel, t_serial, t_parallel

    serial, parallel, t_serial, t_parallel = run_once(benchmark, experiment)
    speedup = t_serial / t_parallel

    save_artifact(
        "parallel_speedup",
        render_table(
            f"Parallel engine: {REPETITIONS}x PBFT (n=16, lambda=1000, "
            f"N(250,50)) on a {cores}-core host",
            ["jobs", "wall-clock (s)", "speedup"],
            [
                (1, f"{t_serial:.2f}", "1.00x"),
                (JOBS, f"{t_parallel:.2f}", f"{speedup:.2f}x"),
            ],
            note="deterministic fields of all 100 results are identical at "
            "every job count; the >=2x speedup claim applies to hosts "
            "with >= 4 cores.",
        ),
    )

    # Determinism: the parallel batch reproduces the serial one exactly.
    assert [result_fingerprint(r) for r in serial] == [
        result_fingerprint(r) for r in parallel
    ], "parallel execution changed deterministic results"
    assert [r.config.seed for r in parallel] == [
        1 + i for i in range(REPETITIONS)
    ], "results must come back in seed order"

    # Speedup: only a host with enough cores can honour the 2x claim.
    if cores >= JOBS:
        assert speedup >= 2.0, (
            f"jobs={JOBS} on {cores} cores should be >= 2x faster, "
            f"measured {speedup:.2f}x"
        )
