"""Ablation — communication complexity vs cluster size.

The mechanism behind the paper's Fig. 3b: chained HotStuff's communication
is *linear* in n (one proposal broadcast + votes to a single collector per
view), while PBFT and Tendermint are *quadratic* (all-to-all prepare/commit
rounds).  This bench measures messages per decision as n grows and asserts
the asymptotic split — the property that makes HotStuff-family protocols
"better suited to larger sets of nodes" (paper §IV).
"""

from __future__ import annotations

from repro.analysis import ExperimentCell, render_series, run_cell

from _common import run_once, save_artifact

NODE_COUNTS = [8, 16, 32, 64]
PROTOCOLS = ["pbft", "tendermint", "hotstuff-ns", "librabft"]


def test_ablation_message_scaling(benchmark) -> None:
    def experiment():
        return {
            (protocol, n): run_cell(
                ExperimentCell(
                    protocol=protocol, n=n, lam=1000.0, mean=100.0, std=20.0
                ),
                repetitions=2,
            )
            for protocol in PROTOCOLS
            for n in NODE_COUNTS
        }

    table = run_once(benchmark, experiment)

    series = {
        protocol: [
            f"{table[(protocol, n)].messages_per_decision.mean:.0f}"
            for n in NODE_COUNTS
        ]
        for protocol in PROTOCOLS
    }
    save_artifact(
        "ablation_message_scaling",
        render_series(
            "Ablation: messages per decision vs n (benign network)",
            "n", NODE_COUNTS, series,
            note="quadratic (PBFT, Tendermint) vs linear (HotStuff family) "
            "communication — the Fig. 3b mechanism.",
        ),
    )

    def messages(protocol, n):
        return table[(protocol, n)].messages_per_decision.mean

    for protocol in PROTOCOLS:
        assert table[(protocol, max(NODE_COUNTS))].terminated_fraction == 1.0

    # Quadratic protocols: 8x the nodes => ~64x the messages.
    for protocol in ("pbft", "tendermint"):
        growth = messages(protocol, 64) / messages(protocol, 8)
        assert growth > 30, f"{protocol} should scale quadratically ({growth:.1f}x)"
    # Linear protocols: 8x the nodes => ~8x the messages.
    for protocol in ("hotstuff-ns", "librabft"):
        growth = messages(protocol, 64) / messages(protocol, 8)
        assert growth < 16, f"{protocol} should scale linearly ({growth:.1f}x)"
