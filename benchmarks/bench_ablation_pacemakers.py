"""Ablation — pacemaker policies on an identical chained-HotStuff core.

DESIGN.md design decision #5: the Fig. 5/6/7 contrasts are pure pacemaker
ablations.  This bench pits the three policies against each other on the
same protocol core, across the paper's three stress regimes:

* ``per-node``      — HotStuff+NS default: per-replica exponential back-off
                      with uncoordinated reset on progress (the paper's
                      naive synchronizer);
* ``view-indexed``  — Naor et al.'s view-doubling: duration is a function
                      of the view number anchored at the last commit;
                      self-stabilizing;
* ``tc``            — LibraBFT: certificate-driven round advancement with
                      an adaptive timeout.

Regimes: underestimated timeout (lambda=150, N(250,50)); five fail-stop
nodes (lambda=1000, N(1000,300)); a 60 s partition (lambda=1000, N(250,50)).
"""

from __future__ import annotations

from repro.analysis import ExperimentCell, render_table, run_cell
from repro.core.config import AttackConfig

from _common import run_once, save_artifact

VARIANTS = {
    "per-node": ("hotstuff-ns", {"synchronizer": "per-node"}),
    "view-indexed": ("hotstuff-ns", {"synchronizer": "view-indexed"}),
    "tc (librabft)": ("librabft", {}),
}

REGIMES = {
    "lam=150 N(250,50)": dict(lam=150.0, mean=250.0, std=50.0, attack=AttackConfig()),
    "5 fail-stop N(1000,300)": dict(
        lam=1000.0, mean=1000.0, std=300.0,
        attack=AttackConfig(name="failstop", params={"count": 5}),
    ),
    "60s partition N(250,50)": dict(
        lam=1000.0, mean=250.0, std=50.0,
        attack=AttackConfig(name="partition", params={"end": 60_000.0}),
    ),
}


def test_ablation_pacemakers(benchmark) -> None:
    def experiment():
        table = {}
        for variant, (protocol, params) in VARIANTS.items():
            for regime, kwargs in REGIMES.items():
                cell = ExperimentCell(
                    protocol=protocol,
                    protocol_params=params,
                    max_time=10_800_000.0,
                    **kwargs,
                )
                table[(variant, regime)] = run_cell(cell, repetitions=3)
        return table

    table = run_once(benchmark, experiment)

    def fmt(summary) -> str:
        if summary.terminated_fraction < 1.0:
            return ">horizon"
        return summary.latency.format(1 / 1000, "s")

    rows = [
        (variant, *(fmt(table[(variant, regime)]) for regime in REGIMES))
        for variant in VARIANTS
    ]
    save_artifact(
        "ablation_pacemakers",
        render_table(
            "Ablation: pacemaker policy vs stress regime (total latency, 10 decisions)",
            ["pacemaker", *REGIMES.keys()],
            rows,
            note="same chained-HotStuff core under all three policies; the "
            "policy alone explains the paper's HotStuff+NS pathologies.",
        ),
    )

    # The naive per-node policy must be the worst in every regime...
    for regime in REGIMES:
        naive = table[("per-node", regime)]
        tc = table[("tc (librabft)", regime)]
        assert tc.terminated_fraction == 1.0
        if naive.terminated_fraction == 1.0:
            assert naive.latency.mean >= tc.latency.mean * 0.95
    # ...and the view-indexed repair must terminate everywhere.
    for regime in REGIMES:
        assert table[("view-indexed", regime)].terminated_fraction == 1.0
