"""Telemetry overhead — what observability costs on the dispatch hot path.

The paper's headline property is simulator *efficiency* (§V: millions of
events per second, linear scaling); a telemetry layer is only acceptable
if the disabled configuration pays nothing measurable and the enabled
configurations pay a bounded, known price.

This bench runs the same PBFT workload (n=16, lambda=1000, N(250, 50),
20 decisions — a few tens of thousands of dispatched events) under five
telemetry configurations:

* ``off``        — no sink, no profiler (the default fast path);
* ``null-sink``  — trace recording on, events discarded (sink dispatch cost);
* ``jsonl-sink`` — trace streamed to disk (serialization + I/O cost);
* ``profiler``   — hot-path section timing on (perf_counter pair per section);
* ``all``        — JSONL sink + profiler together.

Each configuration is timed over several repetitions (best-of to suppress
host noise), the artifact records events/second and the overhead relative
to ``off``, and the bench asserts the determinism contract: every
configuration produces the identical ``result_fingerprint``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import (
    JsonlSink,
    NetworkConfig,
    NullSink,
    SimulationConfig,
    result_fingerprint,
    run_simulation,
)
from repro.analysis import render_table

from _common import run_once, save_artifact

REPETITIONS = 3


def _config() -> SimulationConfig:
    return SimulationConfig(
        protocol="pbft",
        n=16,
        lam=1000.0,
        network=NetworkConfig(mean=250.0, std=50.0),
        num_decisions=20,
        seed=1,
    )


def _time_variant(make_kwargs) -> tuple[float, object]:
    """Best-of-``REPETITIONS`` wall-clock for one telemetry configuration."""
    best = float("inf")
    result = None
    for _ in range(REPETITIONS):
        kwargs = make_kwargs()
        t0 = time.perf_counter()
        result = run_simulation(_config(), **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_observability_overhead(benchmark) -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.jsonl"

        variants = [
            ("off", dict),
            ("null-sink", lambda: {"sink": NullSink()}),
            ("jsonl-sink", lambda: {"sink": JsonlSink(trace_path)}),
            ("profiler", lambda: {"profile": True}),
            ("all", lambda: {"sink": JsonlSink(trace_path), "profile": True}),
        ]

        def experiment():
            return [(name, *_time_variant(make)) for name, make in variants]

        timings = run_once(benchmark, experiment)

    t_off = timings[0][1]
    events = timings[0][2].events_processed
    rows = [
        (
            name,
            f"{seconds * 1e3:.1f}",
            f"{events / seconds:,.0f}",
            "—" if name == "off" else f"{(seconds / t_off - 1) * 100:+.1f}%",
        )
        for name, seconds, _ in timings
    ]

    save_artifact(
        "observability_overhead",
        render_table(
            f"Telemetry overhead: PBFT (n=16, lambda=1000, N(250,50), "
            f"20 decisions, {events} events), best of {REPETITIONS}",
            ["telemetry", "wall-clock (ms)", "events/s", "overhead"],
            rows,
            note="overhead is relative to the telemetry-off run on the same "
            "host; all five configurations are fingerprint-identical.",
        ),
    )

    # The determinism contract: telemetry never changes what a run computes.
    fingerprints = {name: result_fingerprint(res) for name, _, res in timings}
    assert len(set(fingerprints.values())) == 1, (
        f"telemetry changed deterministic results: {fingerprints}"
    )
