"""Validator cross-check — §III-D's implementation validation, as a bench.

The paper validates its simulator by confirming that its PBFT simulation
generates the same event sequences as BFTSim's.  We reproduce the method
with our two engines: the packet-level baseline (the BFTSim stand-in)
produces a ground-truth trace; the validator replays its delivery schedule
through the message-level engine and cross-checks that every node decides
the same values — and it does, across protocols and seeds.
"""

from __future__ import annotations

from repro import NetworkConfig, SimulationConfig
from repro.analysis import render_table
from repro.baseline import run_baseline_simulation
from repro.validator import compare_decisions, replay_simulation

from _common import run_once, save_artifact

CASES = [
    ("pbft", 8, 2),
    ("pbft", 16, 1),
    ("hotstuff-ns", 8, 5),
    ("librabft", 8, 5),
    ("async-ba", 8, 1),
]
SEEDS = [1, 2, 3]


def _config(protocol: str, n: int, decisions: int, seed: int) -> SimulationConfig:
    return SimulationConfig(
        protocol=protocol,
        n=n,
        lam=1000.0,
        network=NetworkConfig(mean=250.0, std=50.0),
        num_decisions=decisions,
        seed=seed,
        record_trace=True,
    )


def test_validator_crosscheck(benchmark) -> None:
    def experiment():
        rows = []
        for protocol, n, decisions in CASES:
            for seed in SEEDS:
                config = _config(protocol, n, decisions, seed)
                ground_truth = run_baseline_simulation(config)
                replayed = replay_simulation(config, ground_truth.trace)
                report = compare_decisions(ground_truth.trace, replayed.trace)
                rows.append(
                    (protocol, n, seed, report.checked_decisions,
                     "MATCH" if report.matches else f"{len(report.mismatches)} mismatches")
                )
        return rows

    rows = run_once(benchmark, experiment)
    save_artifact(
        "validator_crosscheck",
        render_table(
            "Validator: packet-level ground truth replayed on the message-level engine",
            ["protocol", "n", "seed", "decisions checked", "result"],
            rows,
            note="the paper validates against BFTSim the same way (§III-D); "
            "our baseline engine is the BFTSim stand-in.",
        ),
    )
    assert all(row[4] == "MATCH" for row in rows)
