"""Scale bench — dissemination overlays at n up to 1000 (PR-6 tentpole).

Where ``bench_core_hotpath.py`` watches the kernel's per-event cost on the
paper's mid-scale configs, this bench watches the *scaling wall*: a
three-phase PBFT decision at n = 1000 materializes ~1.7M delivery events,
and under the seed's full broadcast fan-out every one of them is a
separately allocated message copy.  The dissemination overlays (``tree`` /
``gossip``) relay broadcasts instead: payloads are shared copy-on-write,
per-broadcast delays are drawn as one vectorized batch, and the fast tier
schedules one shared delivery event per broadcast — so the same protocol
run costs a fraction of the wall-clock and the allocator traffic.

Workload: one decision, lambda = 1000, N(50, 10) link delays, seed 2022,
and **block proposals** (``block_txns = 256``): each proposal value carries
a 256-transaction list, the realistic payload weight where full fan-out
pays a structural copy per recipient and the overlays pay nothing.

Matrix: {pbft, hotstuff-ns} x n in {64, 256, 1000} x {full, tree, gossip},
events/sec from warm wall-clock repetitions (fewer at n = 1000 — the full
cell runs minutes); peak traced memory (tracemalloc) for the pbft n = 1000
cells in a separate pass, since tracing multiplies wall time several-fold.

``BENCH_scale.json`` is the committed reference.  The tests assert:

1. **Determinism** — ``events_processed`` per cell matches the committed
   count exactly (RNG consumption and event ordering are seed-stable).
2. **The headline claim stands** — the committed n=1000 pbft numbers show
   ``tree`` >= 3x the events/sec of ``full``, at lower peak memory.
3. **No regression** (CI smoke, n=256 only) — the live n=256 cells stay
   under ``REPRO_BENCH_MAX_REGRESSION`` (default 2.0) times the committed
   medians, and ``tree`` still beats ``full`` live.

Regenerate after an intentional kernel/overlay change (takes ~15 minutes,
dominated by the n=1000 full-fan-out cells)::

    PYTHONPATH=src python benchmarks/bench_scale.py --update
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import tracemalloc

from repro import NetworkConfig, SimulationConfig, run_simulation
from repro.analysis import render_table

from _common import run_once, save_artifact

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_scale.json"

PROTOCOLS = ("pbft", "hotstuff-ns")
SIZES = (64, 256, 1000)
MODES = ("full", "tree", "gossip")
BLOCK_TXNS = 256

MAX_REGRESSION = float(os.environ.get("REPRO_BENCH_MAX_REGRESSION", "2.0"))

#: Headline acceptance bar: committed n=1000 pbft tree vs full events/sec.
MIN_HEADLINE_SPEEDUP = 3.0


def _config(protocol: str, n: int, mode: str) -> SimulationConfig:
    return SimulationConfig(
        protocol=protocol,
        n=n,
        lam=1000.0,
        network=NetworkConfig(mean=50.0, std=10.0, dissemination=mode),
        num_decisions=1,
        seed=2022,
        protocol_params={"block_txns": BLOCK_TXNS},
    )


def _reps_for(n: int) -> int:
    return {64: 5, 256: 3}.get(n, 1)


def measure_cell(protocol: str, n: int, mode: str, reps: int | None = None) -> dict:
    """Median wall-clock and events/sec of ``reps`` runs of one cell.

    Lineage stamping is off (documented digest-neutral observability); the
    bench measures the kernel, not the telemetry layer.
    """
    if reps is None:
        reps = _reps_for(n)
    config = _config(protocol, n, mode)
    times = []
    events = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = run_simulation(config, lineage=False)
        times.append(time.perf_counter() - t0)
        if events is None:
            events = result.events_processed
        else:
            assert events == result.events_processed, (
                f"{protocol}/n={n}/{mode}: event count varied between repetitions"
            )
    times.sort()
    median = times[len(times) // 2]
    return {
        "events": events,
        "median_s": round(median, 3),
        "events_per_sec": round(events / median, 1),
    }


def measure_peak(protocol: str, n: int, mode: str) -> dict:
    """Peak traced allocation of one run (separate pass: tracemalloc
    multiplies wall time several-fold, so timing cells never trace)."""
    config = _config(protocol, n, mode)
    tracemalloc.start()
    result = run_simulation(config, lineage=False)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {"events": result.events_processed, "peak_mib": round(peak / 2**20, 1)}


def load_baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text(encoding="utf-8"))


def _cell_key(protocol: str, n: int, mode: str) -> str:
    return f"{protocol}/n{n}/{mode}"


# ---------------------------------------------------------------------------
# committed-reference assertions
# ---------------------------------------------------------------------------


def test_committed_headline_speedup():
    """The committed artifact must show the tentpole claim: at n=1000 the
    tree overlay sustains >= 3x the events/sec of the full fan-out on pbft,
    at lower peak memory.  Pure artifact check — no simulation runs."""
    baseline = load_baseline()
    cells = baseline["cells"]
    full = cells[_cell_key("pbft", 1000, "full")]
    tree = cells[_cell_key("pbft", 1000, "tree")]
    speedup = tree["events_per_sec"] / full["events_per_sec"]
    assert speedup >= MIN_HEADLINE_SPEEDUP, (
        f"committed n=1000 pbft tree/full events/sec ratio is only "
        f"{speedup:.2f}x (claimed >= {MIN_HEADLINE_SPEEDUP}x); re-measure "
        "with --update and revisit the overlay fast path"
    )
    peaks = baseline["peak_memory"]
    assert (
        peaks[_cell_key("pbft", 1000, "tree")]["peak_mib"]
        < peaks[_cell_key("pbft", 1000, "full")]["peak_mib"]
    ), "tree overlay must not cost more peak memory than full fan-out"


def test_committed_matrix_is_complete():
    baseline = load_baseline()
    for protocol in PROTOCOLS:
        for n in SIZES:
            for mode in MODES:
                cell = baseline["cells"][_cell_key(protocol, n, mode)]
                assert cell["events"] > 0 and cell["events_per_sec"] > 0


def test_scale_smoke_regression(benchmark):
    """CI perf-smoke gate: the n=256 pbft cells, live vs committed.

    Guards determinism (exact event counts), the overlay advantage (tree
    beats full live), and wall-clock regression (within
    ``REPRO_BENCH_MAX_REGRESSION`` of the committed medians)."""
    baseline = load_baseline()

    def run() -> dict:
        return {
            mode: measure_cell("pbft", 256, mode, reps=1)
            for mode in ("full", "tree")
        }

    live = run_once(benchmark, run)
    rows = []
    for mode, cell in live.items():
        ref = baseline["cells"][_cell_key("pbft", 256, mode)]
        assert cell["events"] == ref["events"], (
            f"pbft/n256/{mode}: events_processed {cell['events']} != committed "
            f"{ref['events']}; RNG consumption or event ordering drifted — a "
            "determinism break, not noise"
        )
        limit = MAX_REGRESSION * ref["median_s"]
        assert cell["median_s"] <= limit, (
            f"pbft/n256/{mode}: live {cell['median_s']:.2f}s exceeds "
            f"{MAX_REGRESSION:.1f}x committed {ref['median_s']:.2f}s"
        )
        rows.append(
            (mode, str(cell["events"]), f"{ref['median_s']:.2f}",
             f"{cell['median_s']:.2f}", f"{cell['events_per_sec']:.0f}")
        )
    assert live["tree"]["events_per_sec"] > live["full"]["events_per_sec"], (
        "tree overlay no longer beats full fan-out at n=256"
    )
    save_artifact(
        "scale_smoke",
        render_table(
            "Scale perf smoke: pbft n=256, block_txns=256, full vs tree",
            ["mode", "events", "ref (s)", "live (s)", "live ev/s"],
            rows,
            note=f"gate: live <= {MAX_REGRESSION:.1f}x committed median; "
            "events must match exactly.",
        ),
    )


# ---------------------------------------------------------------------------
# regeneration
# ---------------------------------------------------------------------------


def _update() -> None:
    cells: dict[str, dict] = {}
    for protocol in PROTOCOLS:
        for n in SIZES:
            for mode in MODES:
                key = _cell_key(protocol, n, mode)
                cells[key] = measure_cell(protocol, n, mode)
                print(f"{key}: {cells[key]}", flush=True)
    peaks: dict[str, dict] = {}
    for mode in MODES:
        key = _cell_key("pbft", 1000, mode)
        peaks[key] = measure_peak("pbft", 1000, mode)
        print(f"peak {key}: {peaks[key]}", flush=True)
    headline = (
        cells[_cell_key("pbft", 1000, "tree")]["events_per_sec"]
        / cells[_cell_key("pbft", 1000, "full")]["events_per_sec"]
    )
    payload = {
        "description": (
            "Committed scale reference for bench_scale.py: one decision at "
            "lambda=1000, N(50,10), seed 2022, block_txns=256; events/sec "
            "from warm wall-clock medians (single rep at n=1000), peak "
            "memory from a separate tracemalloc pass. events is a "
            "determinism guard: it must never drift."
        ),
        "workload": {
            "lam": 1000.0, "mean": 50.0, "std": 10.0, "seed": 2022,
            "num_decisions": 1, "block_txns": BLOCK_TXNS,
        },
        "headline_speedup_n1000_pbft": round(headline, 2),
        "cells": cells,
        "peak_memory": peaks,
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {BASELINE_PATH} (headline {headline:.2f}x)")


if __name__ == "__main__":
    import sys

    if "--update" in sys.argv:
        _update()
    else:
        baseline = load_baseline()
        for mode in ("full", "tree"):
            live = measure_cell("pbft", 256, mode, reps=1)
            ref = baseline["cells"][_cell_key("pbft", 256, mode)]
            assert live["events"] == ref["events"]
            print(f"pbft/n256/{mode}: {live} (committed: {ref})")
        print("ok")
