"""Lineage and metrics overhead — what causal tracking costs per event.

PR 5's tentpole wires causal lineage (every message/timer stamped with the
id of the event being handled when it was created) and simulated-time
metrics sampling through the dispatch hot path.  Both are designed to be
cheap: lineage is one attribute store per dispatched event plus one per
submitted message (no RNG draws, no queue events); metrics cost one float
compare per event between sampling boundaries.

This bench runs the same PBFT workload (n=16, lambda=1000, N(250, 50),
20 decisions) under four configurations:

* ``lineage-off``     — ``lineage=False`` (the cause plumbing skipped);
* ``lineage-on``      — the default: causes stamped, no trace recorded;
* ``lineage+sink``    — causes stamped *and* recorded via ``NullSink``;
* ``lineage+metrics`` — causes stamped, metrics sampled every 100 ms.

The acceptance bar (ISSUE, PR 5): lineage-on stays within a few percent of
lineage-off (threshold below is deliberately loose for noisy CI hosts),
and every configuration is fingerprint-identical.
"""

from __future__ import annotations

import os
import time

from repro import (
    NetworkConfig,
    NullSink,
    SimulationConfig,
    result_fingerprint,
    run_simulation,
)
from repro.analysis import render_table

from _common import run_once, save_artifact

REPETITIONS = 5

#: Maximum tolerated lineage-on / lineage-off slowdown.  The mechanism's
#: true cost is ~1-2%; the guard is looser because best-of-N on shared CI
#: hosts still jitters.  Override with REPRO_LINEAGE_MAX_OVERHEAD.
MAX_LINEAGE_OVERHEAD = float(os.environ.get("REPRO_LINEAGE_MAX_OVERHEAD", "1.05"))


def _config() -> SimulationConfig:
    return SimulationConfig(
        protocol="pbft",
        n=16,
        lam=1000.0,
        network=NetworkConfig(mean=250.0, std=50.0),
        num_decisions=20,
        seed=1,
    )


def _time_variant(make_kwargs) -> tuple[float, object]:
    """Best-of-``REPETITIONS`` wall-clock for one configuration."""
    best = float("inf")
    result = None
    for _ in range(REPETITIONS):
        kwargs = make_kwargs()
        t0 = time.perf_counter()
        result = run_simulation(_config(), **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_lineage_overhead(benchmark) -> None:
    variants = [
        ("lineage-off", lambda: {"lineage": False}),
        ("lineage-on", lambda: {"lineage": True}),
        ("lineage+sink", lambda: {"lineage": True, "sink": NullSink()}),
        ("lineage+metrics", lambda: {"lineage": True, "metrics": True}),
    ]

    def experiment():
        return [(name, *_time_variant(make)) for name, make in variants]

    timings = run_once(benchmark, experiment)

    t_off = timings[0][1]
    t_on = timings[1][1]
    events = timings[0][2].events_processed
    rows = [
        (
            name,
            f"{seconds * 1e3:.1f}",
            f"{events / seconds:,.0f}",
            "—" if name == "lineage-off" else f"{(seconds / t_off - 1) * 100:+.1f}%",
        )
        for name, seconds, _ in timings
    ]

    save_artifact(
        "lineage_overhead",
        render_table(
            f"Causal lineage overhead: PBFT (n=16, lambda=1000, N(250,50), "
            f"20 decisions, {events} events), best of {REPETITIONS}",
            ["configuration", "wall-clock (ms)", "events/s", "overhead"],
            rows,
            note="overhead is relative to lineage-off on the same host; all "
            "four configurations are fingerprint-identical.",
        ),
    )

    # The determinism contract: lineage and metrics never change results.
    fingerprints = {name: result_fingerprint(res) for name, _, res in timings}
    assert len(set(fingerprints.values())) == 1, (
        f"lineage/metrics changed deterministic results: {fingerprints}"
    )

    # The efficiency contract: stamping causes is hot-path-cheap.
    assert t_on <= t_off * MAX_LINEAGE_OVERHEAD, (
        f"lineage-on is {t_on / t_off:.3f}x lineage-off "
        f"(allowed {MAX_LINEAGE_OVERHEAD}x); the cause plumbing regressed"
    )
