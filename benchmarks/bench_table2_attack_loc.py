"""Table II — lines of code of the implemented attacks.

The paper's Table II makes the same brevity argument for attacks: with the
global-attacker abstraction, a network partition is 86 lines, the ADD+
static attack 86, and the rushing-adaptive attack 117 (JavaScript).  This
bench regenerates the table for our attack implementations — including the
two extensions beyond the paper's three — and asserts each stays within
the same order of magnitude.
"""

from __future__ import annotations

from repro.analysis import attack_loc_table, render_table
from repro.attacks import get_attack

from _common import run_once, save_artifact

#: The paper's Table II (attack -> LoC), for the side-by-side.
PAPER_TABLE2 = {
    "partition": 86,
    "add-static": 86,
    "add-adaptive": 117,
}


def test_table2_attack_loc(benchmark) -> None:
    entries = run_once(benchmark, attack_loc_table)

    rows = [
        (
            entry.name,
            str(get_attack(entry.name).capabilities),
            entry.total,
            PAPER_TABLE2.get(entry.name, "-"),
        )
        for entry in entries
    ]
    save_artifact(
        "table2_attack_loc",
        render_table(
            "Table II: implemented attacks (lines of code)",
            ["attack", "capabilities", "LoC", "paper (JS)"],
            rows,
            note="fail-stop, equivocation, and targeted-delay are extensions "
            "beyond the paper's three attacks. LoC excludes blanks, comments, "
            "docstrings.",
        ),
    )

    names = {entry.name for entry in entries}
    assert {"partition", "add-static", "add-adaptive"} <= names, (
        "the paper's three attacks must all be present"
    )
    for entry in entries:
        assert entry.total <= 150, (
            f"{entry.name}: {entry.total} LoC — attacks should stay ~100 lines "
            "on the global-attacker framework (paper's claim)"
        )
