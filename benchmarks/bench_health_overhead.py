"""Health-monitor overhead — what streaming anomaly detection costs.

The run-health monitor hangs five rolling-window detectors off the
controller dispatch loop.  Per dispatched event it costs one float compare
(the window-boundary check); per delivered message, one dict increment;
detector evaluation runs only at window closes (a handful per run).  It
draws nothing from the RNG and schedules nothing, so it must be both
fingerprint-invariant and near-free.

This bench runs the same PBFT workload the lineage bench uses (n=16,
lambda=1000, N(250, 50), 20 decisions) under three configurations:

* ``health-off``    — the default, no monitor attached;
* ``health-on``     — the default 500 ms window;
* ``health-narrow`` — a 50 ms window (10x the window closes, stressing
  the detector-evaluation path rather than the per-event path).

The acceptance bar (ISSUE, PR 10): health-on stays within a few percent
of health-off, and every configuration is fingerprint-identical.
"""

from __future__ import annotations

import os
import time

from repro import (
    NetworkConfig,
    SimulationConfig,
    result_fingerprint,
    run_simulation,
)
from repro.analysis import render_table

from _common import run_once, save_artifact

REPETITIONS = 5

#: Maximum tolerated health-on / health-off slowdown.  The monitor's true
#: cost is ~1-2%; the guard is looser because best-of-N on shared CI hosts
#: still jitters.  Override with REPRO_HEALTH_MAX_OVERHEAD.
MAX_HEALTH_OVERHEAD = float(os.environ.get("REPRO_HEALTH_MAX_OVERHEAD", "1.05"))


def _config() -> SimulationConfig:
    return SimulationConfig(
        protocol="pbft",
        n=16,
        lam=1000.0,
        network=NetworkConfig(mean=250.0, std=50.0),
        num_decisions=20,
        seed=1,
    )


def _time_variants(variants) -> list[tuple[float, object]]:
    """Best-of-``REPETITIONS`` wall-clock per configuration, interleaved.

    Round-robin rather than block-per-variant: host-load drift over the
    measurement then hits every configuration in each round equally
    instead of biasing whichever variant ran last.
    """
    best = [float("inf")] * len(variants)
    results: list[object] = [None] * len(variants)
    for _ in range(REPETITIONS):
        for i, (_, make_kwargs) in enumerate(variants):
            kwargs = make_kwargs()
            t0 = time.perf_counter()
            results[i] = run_simulation(_config(), **kwargs)
            best[i] = min(best[i], time.perf_counter() - t0)
    return list(zip(best, results))


def test_health_overhead(benchmark) -> None:
    variants = [
        ("health-off", lambda: {}),
        ("health-on", lambda: {"health": True}),
        ("health-narrow", lambda: {"health": 50.0}),
    ]

    def experiment():
        timed = _time_variants(variants)
        return [(name, *entry) for (name, _), entry in zip(variants, timed)]

    timings = run_once(benchmark, experiment)

    t_off = timings[0][1]
    t_on = timings[1][1]
    events = timings[0][2].events_processed
    rows = [
        (
            name,
            f"{seconds * 1e3:.1f}",
            f"{events / seconds:,.0f}",
            "—" if name == "health-off" else f"{(seconds / t_off - 1) * 100:+.1f}%",
        )
        for name, seconds, _ in timings
    ]

    save_artifact(
        "health_overhead",
        render_table(
            f"Run-health overhead: PBFT (n=16, lambda=1000, N(250,50), "
            f"20 decisions, {events} events), best of {REPETITIONS}",
            ["configuration", "wall-clock (ms)", "events/s", "overhead"],
            rows,
            note="overhead is relative to health-off on the same host; all "
            "three configurations are fingerprint-identical.",
        ),
    )

    # The determinism contract: monitoring never changes results, and the
    # benign benchmark workload is anomaly-free.
    fingerprints = {name: result_fingerprint(res) for name, _, res in timings}
    assert len(set(fingerprints.values())) == 1, (
        f"health monitoring changed deterministic results: {fingerprints}"
    )
    monitored = timings[1][2]
    assert monitored.health is not None
    assert monitored.health.anomaly_count == 0

    # The efficiency contract: the detectors are hot-path-cheap.
    assert t_on <= t_off * MAX_HEALTH_OVERHEAD, (
        f"health-on is {t_on / t_off:.3f}x health-off "
        f"(allowed {MAX_HEALTH_OVERHEAD}x); the monitor's per-event path regressed"
    )
