"""Fig. 3 — performance of all eight protocols across network environments.

Paper setup (§IV-A): lambda = 1000 ms; four delay environments ranging from
fast/stable to slow/unstable; Fig. 3a reports latency, Fig. 3b message
count (mean +- std over repetitions; per-decision for the pipelined
protocols).

Paper claims reproduced as assertions:
* HotStuff+NS has the lowest latency in every environment except the
  slowest/most unstable one, N(1000, 1000), where PBFT edges it out;
* HotStuff+NS has the lowest message usage everywhere (linear vs quadratic
  communication).
"""

from __future__ import annotations

from repro.analysis import ExperimentCell, render_series, run_cell

from _common import PAPER_PROTOCOLS, run_once, save_artifact

#: Fast/stable .. slow/unstable (mean, std) pairs, ms.
ENVIRONMENTS = [(250.0, 50.0), (500.0, 100.0), (1000.0, 300.0), (1000.0, 1000.0)]
LAMBDA = 1000.0


def test_fig3_latency_and_messages(benchmark) -> None:
    protocols = PAPER_PROTOCOLS

    def experiment():
        table = {}
        for protocol in protocols:
            for mean, std in ENVIRONMENTS:
                cell = ExperimentCell(
                    protocol=protocol, lam=LAMBDA, mean=mean, std=std,
                    max_time=7_200_000.0,
                )
                table[(protocol, mean, std)] = run_cell(cell)
        return table

    table = run_once(benchmark, experiment)

    xs = [f"N({int(m)},{int(s)})" for m, s in ENVIRONMENTS]
    latency_rows = {
        protocol: [
            table[(protocol, m, s)].latency_per_decision.format(1 / 1000, "s")
            for m, s in ENVIRONMENTS
        ]
        for protocol in protocols
    }
    message_rows = {
        protocol: [
            table[(protocol, m, s)].messages_per_decision.format(1, "")
            for m, s in ENVIRONMENTS
        ]
        for protocol in protocols
    }
    save_artifact(
        "fig3a_latency",
        render_series(
            "Fig 3a: latency per decision across network environments (lambda=1000)",
            "protocol", xs, latency_rows,
            note="paper: HotStuff+NS fastest except at N(1000,1000) where PBFT "
            "is slightly faster; synchronous protocols pay multiples of lambda.",
        ),
    )
    save_artifact(
        "fig3b_messages",
        render_series(
            "Fig 3b: messages per decision across network environments (lambda=1000)",
            "protocol", xs, message_rows,
            note="paper: HotStuff+NS lowest everywhere (linear communication).",
        ),
    )

    def latency(protocol: str, env: tuple[float, float]) -> float:
        return table[(protocol, env[0], env[1])].latency_per_decision.mean

    def messages(protocol: str, env: tuple[float, float]) -> float:
        return table[(protocol, env[0], env[1])].messages_per_decision.mean

    # LibraBFT shares the chained core, so in timeout-free regimes the two
    # are identical; "fastest" is asserted strictly against everything else
    # and as a tie against LibraBFT.
    others = [p for p in protocols if p not in ("hotstuff-ns", "librabft")]
    for env in ENVIRONMENTS[:2]:
        assert all(latency("hotstuff-ns", env) < latency(p, env) for p in others), (
            f"HotStuff+NS should be fastest at {env}"
        )
        assert latency("hotstuff-ns", env) <= latency("librabft", env) * 1.01
    # Slow environment: HotStuff+NS still beats PBFT (its chained pipeline
    # amortizes the extra hops) even where its pacemaker starts to hurt.
    assert latency("hotstuff-ns", ENVIRONMENTS[2]) < latency("pbft", ENVIRONMENTS[2])
    # The unstable environment: PBFT overtakes HotStuff+NS on latency.
    unstable = ENVIRONMENTS[3]
    assert latency("pbft", unstable) < latency("hotstuff-ns", unstable), (
        "paper: PBFT slightly faster than HotStuff+NS at N(1000,1000)"
    )
    for env in ENVIRONMENTS:
        assert all(messages("hotstuff-ns", env) < messages(p, env) for p in others), (
            f"HotStuff+NS should use fewest messages at {env}"
        )
