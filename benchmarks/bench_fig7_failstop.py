"""Fig. 7 — time usage across different numbers of fail-stop nodes.

Paper setup (§IV-C2): lambda = 1000, network N(1000, 300), the number of
fail-stopped nodes swept from 0 to 5 (of n = 16).

Paper claims:
* partially-synchronous protocols are less resilient to fail-stop nodes
  (they rely on quorums of live replicas to proceed);
* HotStuff+NS's latency "degraded drastically".

In our reproduction the default HotStuff+NS synchronizer (per-node naive
back-off, the paper's) degrades past the experiment horizon at five
fail-stops — reported as ``>horizon``; the self-stabilizing view-indexed
variant terminates at ~106 s/decision and is shown as an extra row (see
``bench_ablation_pacemakers.py`` for the head-to-head).
"""

from __future__ import annotations

from repro.analysis import ExperimentCell, render_series, run_cell
from repro.core.config import AttackConfig

from _common import run_once, save_artifact

PROTOCOLS = ["add-v1", "add-v2", "algorand", "async-ba", "pbft", "hotstuff-ns", "librabft"]
FAILSTOP_COUNTS = [0, 1, 2, 3, 4, 5]
MEAN, STD = 1000.0, 300.0
HORIZON_MS = 10_800_000.0


def _cell(protocol: str, count: int, **params) -> ExperimentCell:
    return ExperimentCell(
        protocol=protocol,
        lam=1000.0,
        mean=MEAN,
        std=STD,
        attack=AttackConfig(name="failstop", params={"count": count}),
        max_time=HORIZON_MS,
        protocol_params=params,
    )


def _fmt(summary) -> str:
    if summary.terminated_fraction < 1.0:
        return ">horizon"
    return summary.latency_per_decision.format(1 / 1000, "s")


def test_fig7_failstop(benchmark) -> None:
    def experiment():
        table = {
            (protocol, count): run_cell(_cell(protocol, count), repetitions=3)
            for protocol in PROTOCOLS
            for count in FAILSTOP_COUNTS
        }
        # Ablation row: the repaired (self-stabilizing) synchronizer.
        for count in FAILSTOP_COUNTS:
            table[("hotstuff-ns/view-indexed", count)] = run_cell(
                _cell("hotstuff-ns", count, synchronizer="view-indexed"),
                repetitions=3,
            )
        return table

    table = run_once(benchmark, experiment)

    series = {
        name: [_fmt(table[(name, count)]) for count in FAILSTOP_COUNTS]
        for name in PROTOCOLS + ["hotstuff-ns/view-indexed"]
    }
    save_artifact(
        "fig7_failstop",
        render_series(
            "Fig 7: latency per decision vs fail-stop nodes (lambda=1000, N(1000,300))",
            "#fail-stop", FAILSTOP_COUNTS, series,
            note="paper: partially-synchronous protocols degrade more; "
            "HotStuff+NS degrades drastically. '>horizon' = no termination "
            "within 3 simulated hours.",
        ),
    )

    def mean_of(name, count):
        return table[(name, count)].latency_per_decision.mean

    # Leader-schedule sensitivity: round-robin ADD+v1 pays ~3*lambda per
    # crashed scheduled leader; VRF-elected ADD+v2 stays flat.
    assert mean_of("add-v1", 5) > mean_of("add-v1", 0) * 3
    assert mean_of("add-v2", 5) < mean_of("add-v2", 0) * 2
    # Partially-synchronous protocols degrade with crash count.
    assert mean_of("pbft", 5) > mean_of("pbft", 0) * 2
    # HotStuff+NS degrades drastically: worse than every other protocol at 5.
    hs5 = table[("hotstuff-ns", 5)]
    if hs5.terminated_fraction == 1.0:
        assert hs5.latency_per_decision.mean > 2 * max(
            mean_of(p, 5) for p in PROTOCOLS if p != "hotstuff-ns"
        )
    # The repaired synchronizer terminates even at 5 fail-stops, slowly.
    repaired = table[("hotstuff-ns/view-indexed", 5)]
    assert repaired.terminated_fraction == 1.0
    assert repaired.latency_per_decision.mean > mean_of("librabft", 5)
