"""Core hot-path microbench — kernel wall-clock on the Fig. 2 config.

Unlike the experiment benches (which reproduce paper artifacts), this bench
watches the *simulator kernel itself*: PBFT to one decision on the Fig. 2
workload (lambda = 1000, N(250, 50), no attacker, no faults, no tracing),
the configuration every sweep in the paper spends most of its time in.  It
pins two cases:

* ``fig2-n64``  — one n = 64 run (the paper's mid-scale point);
* ``smoke-n16x3`` — three n = 16 runs over seeds 1..3 (small enough for a
  CI perf-smoke gate).

``BENCH_hotpath.json`` next to this file is the committed reference: the
numbers measured before and after the PR-4 kernel optimization pass
(interleaved A/B on the same host, best/median of 7 warm repetitions).  The
tests assert three things against it:

1. **Determinism** — ``events_processed`` matches the committed count
   exactly.  The optimization contract is refactor-only with respect to RNG
   consumption and event ordering, so any drift here is a real bug, not
   noise (see also ``tests/core/test_golden_determinism.py``).
2. **Speedup stands** — the committed pre/post medians show >= 1.5x.
3. **No regression** — the live median stays under
   ``REPRO_BENCH_MAX_REGRESSION`` (default 2.0) times the committed
   post-optimization median.  Absolute times are host-dependent; loosen the
   factor via the environment variable on slow machines.

Regenerate the committed reference after an intentional kernel change::

    PYTHONPATH=src python benchmarks/bench_core_hotpath.py --update
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro import NetworkConfig, SimulationConfig, run_simulation
from repro.analysis import render_table

from _common import run_once, save_artifact

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_hotpath.json"

#: Pre-optimization numbers, measured at commit 9c9f9f8 (the last commit
#: before the kernel optimization pass) interleaved with the optimized tree
#: on the same host.  Kept in the script so ``--update`` never overwrites
#: the historical reference with post-optimization numbers.
PRE_OPTIMIZATION = {
    "fig2-n64": {"best_ms": 413.3, "median_ms": 456.9},
    "smoke-n16x3": {"best_ms": 97.5, "median_ms": 111.2},
}
PRE_OPTIMIZATION_COMMIT = "9c9f9f8"

REPS = int(os.environ.get("REPRO_BENCH_HOTPATH_REPS", "7"))
MAX_REGRESSION = float(os.environ.get("REPRO_BENCH_MAX_REGRESSION", "2.0"))


def _config(n: int, seed: int = 1) -> SimulationConfig:
    """The Fig. 2 workload: PBFT, lambda=1000, N(250, 50), one decision."""
    return SimulationConfig(
        protocol="pbft",
        n=n,
        lam=1000.0,
        network=NetworkConfig(mean=250.0, std=50.0),
        num_decisions=1,
        seed=seed,
    )


def _run_fig2_n64() -> int:
    return run_simulation(_config(64)).events_processed


def _run_smoke_n16x3() -> int:
    return sum(
        run_simulation(_config(16, seed=seed)).events_processed
        for seed in (1, 2, 3)
    )


CASES = {
    "fig2-n64": _run_fig2_n64,
    "smoke-n16x3": _run_smoke_n16x3,
}


def measure(case: str, reps: int = REPS) -> dict:
    """Best/median wall-clock of ``reps`` warm repetitions of ``case``."""
    fn = CASES[case]
    events = fn()  # warmup: import costs, allocator, branch caches
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        got = fn()
        times.append(time.perf_counter() - t0)
        assert got == events, f"{case}: event count varied between repetitions"
    times.sort()
    return {
        "events": events,
        "best_ms": round(times[0] * 1000, 1),
        "median_ms": round(times[len(times) // 2] * 1000, 1),
    }


def load_baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text(encoding="utf-8"))


def _check_case(case: str, live: dict, baseline: dict) -> list[str]:
    """Assert the three committed-reference properties for one case."""
    ref = baseline["cases"][case]
    assert live["events"] == ref["events"], (
        f"{case}: events_processed {live['events']} != committed {ref['events']}; "
        "the kernel's RNG consumption or event ordering changed — this is a "
        "determinism break, not a performance regression"
    )
    speedup = ref["pre"]["median_ms"] / ref["post"]["median_ms"]
    assert speedup >= 1.5, (
        f"{case}: committed reference shows only {speedup:.2f}x; the "
        "optimization claim no longer holds — re-measure with --update"
    )
    limit = MAX_REGRESSION * ref["post"]["median_ms"]
    assert live["median_ms"] <= limit, (
        f"{case}: live median {live['median_ms']:.1f} ms exceeds "
        f"{MAX_REGRESSION:.1f}x the committed post-optimization median "
        f"({ref['post']['median_ms']:.1f} ms); kernel hot path regressed "
        "(or this host is very slow — set REPRO_BENCH_MAX_REGRESSION)"
    )
    return [
        (
            case,
            str(live["events"]),
            f"{ref['pre']['median_ms']:.1f}",
            f"{ref['post']['median_ms']:.1f}",
            f"{live['median_ms']:.1f}",
            f"{speedup:.1f}x",
        )
    ]


def test_hotpath_smoke_regression(benchmark) -> None:
    """The CI perf-smoke gate: small config, fail on >2x regression."""
    baseline = load_baseline()
    live = run_once(benchmark, lambda: measure("smoke-n16x3"))
    rows = _check_case("smoke-n16x3", live, baseline)
    save_artifact(
        "core_hotpath_smoke",
        render_table(
            "Core hot path (perf smoke): PBFT n=16 x seeds 1..3",
            ["case", "events", "pre (ms)", "post (ms)", "live (ms)", "speedup"],
            rows,
            note=f"committed reference measured at {baseline['pre_optimization_commit']}; "
            f"gate: live median <= {MAX_REGRESSION:.1f}x committed post median.",
        ),
    )


def test_hotpath_fig2_speedup(benchmark) -> None:
    """The headline case: >= 1.5x on the Fig. 2 n=64 configuration."""
    baseline = load_baseline()
    live = run_once(benchmark, lambda: measure("fig2-n64"))
    rows = _check_case("fig2-n64", live, baseline)
    save_artifact(
        "core_hotpath_fig2",
        render_table(
            "Core hot path: PBFT n=64, lambda=1000, N(250,50), 1 decision",
            ["case", "events", "pre (ms)", "post (ms)", "live (ms)", "speedup"],
            rows,
            note=f"committed reference measured at {baseline['pre_optimization_commit']}; "
            "pre = before the PR-4 kernel optimization pass, post = after.",
        ),
    )


def _update() -> None:
    """Re-measure the current tree and rewrite ``BENCH_hotpath.json``."""
    cases = {}
    for case in CASES:
        live = measure(case)
        cases[case] = {
            "config": (
                "pbft, lam=1000, normal(250, 50), 1 decision, "
                + ("n=64, seed=1" if case == "fig2-n64" else "n=16, seeds=[1,2,3]")
            ),
            "events": live["events"],
            "pre": PRE_OPTIMIZATION[case],
            "post": {"best_ms": live["best_ms"], "median_ms": live["median_ms"]},
        }
        cases[case]["speedup_median"] = round(
            cases[case]["pre"]["median_ms"] / cases[case]["post"]["median_ms"], 2
        )
        print(f"{case}: {live} -> speedup {cases[case]['speedup_median']}x")
    payload = {
        "description": (
            "Committed kernel hot-path reference for bench_core_hotpath.py. "
            "pre = before the kernel optimization pass (measured at the "
            "commit below), post = after; best/median of warm repetitions, "
            "interleaved A/B on one host. events is a determinism guard: it "
            "must never drift."
        ),
        "pre_optimization_commit": PRE_OPTIMIZATION_COMMIT,
        "reps": REPS,
        "cases": cases,
    }
    BASELINE_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {BASELINE_PATH}")


if __name__ == "__main__":
    import sys

    if "--update" in sys.argv:
        _update()
    else:
        baseline = load_baseline()
        for case in CASES:
            live = measure(case)
            _check_case(case, live, baseline)
            print(f"{case}: {live} (committed post: {baseline['cases'][case]['post']})")
        print("ok")
