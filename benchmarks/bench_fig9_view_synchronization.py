"""Fig. 9 — each node's view during a HotStuff+NS execution.

Paper setup (§IV-D): lambda = 150, network N(250, 50).  The paper's chart
shows the nodes separating into groups holding different views about five
seconds in, staying desynchronized for ~75 seconds, then finally merging —
the view-synchronization problem made visible.

This bench runs HotStuff+NS with trace recording, extracts each node's
view timeline, renders the ASCII analogue of the paper's chart, and
asserts the phenomenon: multiple simultaneous view groups whose
desynchronized period dwarfs anything LibraBFT exhibits under identical
conditions.
"""

from __future__ import annotations

from repro import SimulationConfig, run_simulation
from repro.analysis import (
    desync_statistics,
    extract_view_timelines,
    network_for,
    render_view_chart,
)

from _common import run_once, save_artifact

LAMBDA, MEAN, STD = 150.0, 250.0, 50.0
N = 16
SEEDS = range(8)


def _config(protocol: str, seed: int) -> SimulationConfig:
    return SimulationConfig(
        protocol=protocol,
        n=N,
        lam=LAMBDA,
        network=network_for(protocol, MEAN, STD, LAMBDA),
        num_decisions=10,
        seed=seed,
        record_trace=True,
        max_time=7_200_000.0,
        allow_horizon=True,
    )


def test_fig9_view_synchronization(benchmark) -> None:
    def experiment():
        runs = []
        for seed in SEEDS:
            result = run_simulation(_config("hotstuff-ns", seed))
            timelines = extract_view_timelines(result.trace, N)
            stats = desync_statistics(timelines, horizon=result.latency)
            runs.append((seed, result, timelines, stats))
        libra = run_simulation(_config("librabft", SEEDS[0]))
        libra_stats = desync_statistics(
            extract_view_timelines(libra.trace, N), horizon=libra.latency
        )
        return runs, libra_stats

    runs, libra_stats = run_once(benchmark, experiment)

    # Chart the most desynchronized run (Fig. 9 shows a worst case).
    seed, result, timelines, stats = max(runs, key=lambda r: r[3].longest_desync)
    chart = render_view_chart(timelines, horizon=result.latency, width=96)
    summary = "\n".join(
        f"seed {s}: latency={r.latency / 1000:.1f}s, "
        f"max simultaneous view groups={st.max_groups}, "
        f"longest desync={st.longest_desync / 1000:.1f}s "
        f"({100 * st.desync_time / max(st.horizon, 1):.0f}% of run desynchronized)"
        for s, r, _t, st in runs
    )
    save_artifact(
        "fig9_view_synchronization",
        "Fig 9: per-node views, HotStuff+NS (lambda=150, N(250,50)), "
        f"worst seed {seed}\n\n{chart}\n\n{summary}\n\n"
        f"LibraBFT reference (same conditions, seed {SEEDS[0]}): "
        f"max groups={libra_stats.max_groups}, "
        f"longest desync={libra_stats.longest_desync / 1000:.1f}s\n\n"
        "Note: the paper observes groups persisting ~75s in an extreme run; "
        "group structure and HotStuff-vs-LibraBFT contrast are the "
        "reproduced shape.",
    )

    assert stats.max_groups >= 3, "nodes must split into multiple view groups"
    assert stats.longest_desync > 500.0, "desync must persist visibly"
    assert stats.longest_desync > libra_stats.longest_desync, (
        "HotStuff+NS must desynchronize worse than LibraBFT"
    )
