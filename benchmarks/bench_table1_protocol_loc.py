"""Table I — lines of code of the implemented BFT protocols.

The paper's Table I supports the flexibility claim: on top of the
simulator's shared infrastructure, each protocol is only a few hundred
lines (265-606 in their JavaScript).  This bench regenerates the table for
our implementations (blank/comment/docstring-free physical lines) and
asserts the same order of magnitude — protocol logic stays small because
networking, attacks, metrics, and scheduling live in the framework.
"""

from __future__ import annotations

from repro.analysis import protocol_loc_table, render_table
from repro.protocols import available_protocols, get_protocol

from _common import run_once, save_artifact

#: The paper's Table I (protocol -> LoC), for the side-by-side.
PAPER_TABLE1 = {
    "add-v1": 304,
    "add-v2": 307,
    "add-v3": 376,
    "algorand": 387,
    "async-ba": 265,
    "pbft": 606,
    "hotstuff-ns": 502,
    "librabft": 568,
}


def test_table1_protocol_loc(benchmark) -> None:
    entries = run_once(benchmark, protocol_loc_table)

    rows = [
        (
            entry.name,
            get_protocol(entry.name).network_model,
            entry.own,
            entry.shared,
            entry.total,
            PAPER_TABLE1.get(entry.name, "-"),
        )
        for entry in entries
    ]
    save_artifact(
        "table1_protocol_loc",
        render_table(
            "Table I: implemented BFT protocols (lines of code)",
            ["protocol", "network model", "own", "shared", "total", "paper (JS)"],
            rows,
            note="own = variant-specific module; shared = family base "
            "(ADD+ common / chained-HotStuff core) counted once per variant. "
            "LoC excludes blanks, comments, docstrings. tendermint is an "
            "extension beyond the paper's eight.",
        ),
    )

    assert {entry.name for entry in entries} >= set(PAPER_TABLE1)
    assert {entry.name for entry in entries} <= set(available_protocols())
    for entry in entries:
        assert entry.total >= 40, f"{entry.name}: implausibly small"
        assert entry.total <= 700, (
            f"{entry.name}: {entry.total} LoC — protocol logic should stay "
            "a few hundred lines on top of the framework (paper's claim)"
        )
