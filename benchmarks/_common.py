"""Shared helpers for the paper-reproduction benchmarks.

Every bench renders its artifact as fixed-width text, prints it (visible
with ``pytest -s``), and saves it under ``benchmarks/out/`` so results
persist across runs and can be diffed against EXPERIMENTS.md.

Parallelism: every bench that runs its cells through the
:mod:`repro.analysis.experiments` harness honours ``REPRO_BENCH_JOBS``
(``0`` = one worker per CPU).  Because runs are deterministic, the numbers
in the artifacts are identical at any job count — only wall-clock time
changes — so paper-scale statistics (``REPRO_BENCH_REPS=100``) become
practical on a multi-core machine:

    REPRO_BENCH_REPS=100 REPRO_BENCH_JOBS=0 python -m pytest benchmarks/
"""

from __future__ import annotations

import pathlib

from repro.analysis.experiments import bench_jobs, bench_repetitions

__all__ = [
    "OUT_DIR", "PAPER_PROTOCOLS", "bench_jobs", "bench_repetitions",
    "run_once", "save_artifact",
]

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: The paper's Table I protocol set.  Benches that regenerate paper
#: artifacts iterate this fixed list, so extension protocols added to the
#: registry later never silently change the reproduced tables.
PAPER_PROTOCOLS = [
    "add-v1", "add-v2", "add-v3", "algorand",
    "async-ba", "hotstuff-ns", "librabft", "pbft",
]


def save_artifact(name: str, text: str) -> None:
    """Print ``text`` and persist it as ``benchmarks/out/<name>.txt``."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


def run_once(benchmark, fn):
    """Time ``fn`` exactly once under pytest-benchmark.

    Experiment benches measure simulated systems, not the harness, so one
    round is the honest measurement (repetition happens inside via seeds).
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
