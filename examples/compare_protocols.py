#!/usr/bin/env python3
"""Compare all eight BFT protocols across network environments.

Run:
    python examples/compare_protocols.py [repetitions]

A miniature of the paper's Fig. 3 evaluation: every implemented protocol
across two network environments, reporting per-decision latency and message
usage (mean +- std over seeded repetitions).  Uses the same experiment
harness as the benchmarks, including the paper's conventions (pipelined
protocols measured over ten decisions; synchronous protocols run on a
bounded network).
"""

import sys

from repro import available_protocols
from repro.analysis import ExperimentCell, render_table, run_cell

ENVIRONMENTS = [
    ("fast/stable  N(250,50)", 250.0, 50.0),
    ("slow/unstable N(1000,300)", 1000.0, 300.0),
]


def main() -> None:
    repetitions = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    rows = []
    for protocol in available_protocols():
        cells = []
        for _label, mean, std in ENVIRONMENTS:
            cell = ExperimentCell(
                protocol=protocol, lam=1000.0, mean=mean, std=std,
                max_time=7_200_000.0,
            )
            cells.append(run_cell(cell, repetitions=repetitions))
        rows.append(
            (
                protocol,
                cells[0].latency_per_decision.format(1 / 1000, "s"),
                f"{cells[0].messages_per_decision.mean:.0f}",
                cells[1].latency_per_decision.format(1 / 1000, "s"),
                f"{cells[1].messages_per_decision.mean:.0f}",
            )
        )
    print(
        render_table(
            f"Protocol comparison ({repetitions} runs per cell, lambda=1000ms)",
            ["protocol", "latency (fast)", "msgs (fast)", "latency (slow)", "msgs (slow)"],
            rows,
            note="latency is per decision; pipelined protocols (HotStuff+NS, "
            "LibraBFT) are averaged over ten decisions as in the paper.",
        )
    )


if __name__ == "__main__":
    main()
