#!/usr/bin/env python3
"""Visualize view synchronization during a HotStuff+NS run (Fig. 9).

Run:
    python examples/view_sync_visualization.py [lambda_ms]

Records a full trace of HotStuff+NS under an underestimated timeout
(default lambda = 150 ms against N(250, 50) delays), extracts each node's
view timeline, and renders the ASCII analogue of the paper's Fig. 9 — each
glyph is the node's current view, so vertical misalignment *is* the
view-synchronization problem.
"""

import sys

from repro import NetworkConfig, SimulationConfig, run_simulation
from repro.analysis import desync_statistics, extract_view_timelines, render_view_chart

N = 16


def main() -> None:
    lam = float(sys.argv[1]) if len(sys.argv) > 1 else 150.0
    config = SimulationConfig(
        protocol="hotstuff-ns",
        n=N,
        lam=lam,
        network=NetworkConfig(mean=250.0, std=50.0),
        num_decisions=10,
        seed=2,
        record_trace=True,
        max_time=7_200_000.0,
    )
    result = run_simulation(config)
    timelines = extract_view_timelines(result.trace, N)
    stats = desync_statistics(timelines, horizon=result.latency)

    print(f"HotStuff+NS, lambda={lam:.0f}ms, delays N(250,50), 10 decisions")
    print(f"total latency: {result.latency / 1000:.1f}s "
          f"({result.latency_per_decision:.0f} ms/decision)")
    print(f"max simultaneous view groups: {stats.max_groups}")
    print(f"longest desynchronized stretch: {stats.longest_desync / 1000:.1f}s")
    print(f"fraction of run desynchronized: "
          f"{100 * stats.desync_time / max(result.latency, 1):.0f}%")
    print()
    print(render_view_chart(timelines, horizon=result.latency, width=100))
    print()
    print("Try a well-estimated timeout for contrast: "
          "python examples/view_sync_visualization.py 1000")


if __name__ == "__main__":
    main()
