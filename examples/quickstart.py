#!/usr/bin/env python3
"""Quickstart: simulate one PBFT consensus and read the results.

Run:
    python examples/quickstart.py

This is the smallest complete use of the simulator: configure a network,
pick a protocol, run, and inspect the two metrics the paper is built
around — time usage and message usage (§II-C).
"""

from repro import NetworkConfig, SimulationConfig, run_simulation


def main() -> None:
    # 16 nodes running PBFT; message delays drawn from N(250ms, 50ms); the
    # protocol's timeout parameter (lambda) set to 1 second.
    config = SimulationConfig(
        protocol="pbft",
        n=16,
        lam=1000.0,
        network=NetworkConfig(distribution="normal", mean=250.0, std=50.0),
        num_decisions=1,
        seed=42,
    )

    result = run_simulation(config)

    print(result.summary())
    print()
    print(f"decided value        : {result.decided_values[0]}")
    print(f"time usage           : {result.latency:.1f} ms")
    print(f"message usage        : {result.messages} messages")
    print(f"faulty nodes         : {sorted(result.faulty) or 'none'}")
    print(f"events processed     : {result.events_processed}")
    print(f"wall-clock           : {result.wall_clock_seconds * 1000:.1f} ms")

    # Every run is deterministic in (config, seed): re-running reproduces
    # the result exactly, which is what makes experiments comparable.
    again = run_simulation(config)
    assert again.latency == result.latency
    print("\nre-run with the same seed reproduced the result exactly.")


if __name__ == "__main__":
    main()
