#!/usr/bin/env python3
"""Run the paper's attack scenarios and see their effect.

Run:
    python examples/attack_scenarios.py

Exercises the global-attacker module end to end:

1. a network partition against PBFT / LibraBFT / HotStuff+NS (Fig. 6);
2. fail-stop nodes against PBFT (Fig. 7);
3. the static and rushing-adaptive attacks against the ADD+ family
   (Fig. 8), showing how the v2 -> v3 prepare round defeats the adaptive
   attacker.
"""

from repro import AttackConfig, SimulationConfig, run_simulation
from repro.analysis import network_for, render_table


def run(protocol, attack=None, lam=1000.0, mean=250.0, std=50.0, decisions=1, seed=7):
    config = SimulationConfig(
        protocol=protocol,
        n=16,
        lam=lam,
        network=network_for(protocol, mean, std, lam),
        attack=attack or AttackConfig(),
        num_decisions=decisions,
        seed=seed,
        max_time=7_200_000.0,
    )
    return run_simulation(config)


def partition_scenario() -> None:
    heal = 30_000.0
    attack = AttackConfig(name="partition", params={"end": heal})
    rows = []
    for protocol in ("pbft", "librabft", "hotstuff-ns"):
        decisions = 10 if protocol in ("hotstuff-ns", "librabft") else 1
        result = run(protocol, attack, decisions=decisions)
        rows.append(
            (protocol, f"{result.latency / 1000:.1f}s",
             f"{(result.latency - heal) / 1000:.1f}s")
        )
    print(render_table(
        "Network partition (two subnets, heals at 30s)",
        ["protocol", "total", "after heal"], rows,
        note="HotStuff+NS pays for the back-off accumulated during the outage.",
    ))


def failstop_scenario() -> None:
    rows = []
    for count in (0, 2, 5):
        attack = AttackConfig(name="failstop", params={"count": count})
        result = run("pbft", attack, mean=1000.0, std=300.0)
        rows.append((count, f"{result.latency / 1000:.2f}s", result.messages))
    print()
    print(render_table(
        "PBFT under fail-stop nodes (N(1000,300))",
        ["crashed", "latency", "messages"], rows,
        note="crashed scheduled leaders force timeout-driven view changes.",
    ))


def add_attack_scenario() -> None:
    rows = []
    static = AttackConfig(name="add-static", params={"count": 5})
    adaptive = AttackConfig(name="add-adaptive", params={"budget": 5})
    for protocol in ("add-v1", "add-v2", "add-v3"):
        benign = run(protocol)
        static_result = run(protocol, static)
        row = [protocol, f"{benign.latency / 1000:.0f}s", f"{static_result.latency / 1000:.0f}s"]
        if protocol == "add-v1":
            row.append("-")
        else:
            adaptive_result = run(protocol, adaptive)
            row.append(f"{adaptive_result.latency / 1000:.0f}s")
        rows.append(tuple(row))
    print()
    print(render_table(
        "ADD+ variants under attack (f=5, lambda=1000ms)",
        ["variant", "benign", "static", "adaptive"], rows,
        note="static wastes v1's scheduled leaders; rushing-adaptive burns "
        "v2's budget one leader at a time; v3's prepare round binds the "
        "proposal to the credential reveal, so corruption comes too late.",
    ))


if __name__ == "__main__":
    partition_scenario()
    failstop_scenario()
    add_attack_scenario()
