#!/usr/bin/env python3
"""Cross-validate the simulator against the packet-level baseline (§III-D).

Run:
    python examples/validate_against_baseline.py

The paper gains confidence in its simulator by checking that its PBFT
simulation produces the same event sequences as BFTsim.  This example
reproduces the method with the library's two engines:

1. run PBFT on the packet-level baseline (the BFTSim stand-in) with trace
   recording — that trace is the *ground truth*;
2. replay the ground-truth delivery schedule through the fast
   message-level engine;
3. cross-check that every node decided the same values in both engines.
"""

from repro import NetworkConfig, SimulationConfig
from repro.baseline import run_baseline_simulation
from repro.validator import compare_decisions, replay_simulation


def main() -> None:
    config = SimulationConfig(
        protocol="pbft",
        n=8,
        lam=1000.0,
        network=NetworkConfig(mean=250.0, std=50.0),
        num_decisions=3,
        seed=11,
        record_trace=True,
    )

    print("running ground truth on the packet-level baseline engine ...")
    ground_truth = run_baseline_simulation(config)
    print(f"  {ground_truth.summary()}")

    print("replaying the recorded delivery schedule on the fast engine ...")
    replayed = replay_simulation(config, ground_truth.trace)
    print(f"  {replayed.summary()}")

    report = compare_decisions(ground_truth.trace, replayed.trace)
    print()
    print(report.summary())
    if report.matches:
        print("both engines agree on every (node, slot, value) decision.")
    else:
        for mismatch in report.mismatches:
            print(f"  MISMATCH: {mismatch}")


if __name__ == "__main__":
    main()
