#!/usr/bin/env python3
"""Implement and simulate a custom BFT protocol and a custom attack.

Run:
    python examples/custom_protocol.py

The paper's headline flexibility claim (§III-A3, §III-A5): a new protocol
is three callbacks, a new attack is two.  This example implements both from
scratch against the public API:

* **EchoConsensus** — a toy one-shot protocol: the fixed leader broadcasts
  a value, everyone echoes, and a node decides once it has seen a Byzantine
  quorum of matching echoes.
* **EchoMuffler** — a network-level attacker that delays every echo from
  even-numbered nodes, demonstrating the capability system from the outside.
"""

from repro import (
    AttackConfig,
    Message,
    NetworkConfig,
    SimulationConfig,
    register_attack,
    register_protocol,
    run_simulation,
)
from repro.attacks import Attacker, Capability
from repro.protocols import BFTProtocol, PARTIALLY_SYNCHRONOUS, VoteCounter


@register_protocol("echo-consensus")
class EchoConsensus(BFTProtocol):
    """Leader broadcasts; nodes echo; a quorum of echoes decides."""

    network_model = PARTIALLY_SYNCHRONOUS
    responsive = True

    def __init__(self, node_id, env):
        super().__init__(node_id, env)
        self.echoes = VoteCounter()
        self.echoed = False
        self.done = False

    def on_start(self):
        if self.id == 0:  # fixed leader
            self.broadcast(type="VALUE", value=self.proposal_value(0))

    def on_message(self, message: Message):
        payload = message.payload
        if payload.get("type") == "VALUE" and message.source == 0 and not self.echoed:
            self.echoed = True
            self.broadcast(type="ECHO", value=payload["value"])
        elif payload.get("type") == "ECHO":
            count = self.echoes.add(payload["value"], message.source)
            if count >= self.quorum() and not self.done:
                self.done = True
                self.decide(0, payload["value"])


@register_attack("echo-muffler")
class EchoMuffler(Attacker):
    """Slows every ECHO sent by an even-numbered node by a fixed delay."""

    capabilities = Capability.OBSERVE | Capability.NETWORK

    def attack(self, message: Message):
        if message.type == "ECHO" and message.source % 2 == 0:
            message.delay = (message.delay or 0.0) + float(
                self.params.get("extra", 500.0)
            )
            return [message]
        return None


def main() -> None:
    base = SimulationConfig(
        protocol="echo-consensus",
        n=7,
        lam=1000.0,
        network=NetworkConfig(mean=100.0, std=20.0),
        seed=3,
    )
    clean = run_simulation(base)
    print(f"benign run    : {clean.summary()}")

    attacked = run_simulation(
        base.replace(attack={"name": "echo-muffler", "params": {"extra": 500.0}})
    )
    print(f"under attack  : {attacked.summary()}")
    print()
    print(f"the muffler added {attacked.latency - clean.latency:.0f} ms of latency "
          "but could not break agreement — delaying is within its NETWORK "
          "capability, forging echoes is not.")


if __name__ == "__main__":
    main()
