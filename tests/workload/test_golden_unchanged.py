"""The workload layer is strictly opt-in: benign fingerprints are untouched.

The golden battery in ``tests/core/test_golden_determinism.py`` already
pins the 9 seed digests; these tests make the opt-in contract explicit
from the workload side — a config without a workload produces a result
with no workload metrics, no ``workload`` fingerprint field, and the
exact pre-workload golden digest, while attaching a workload changes the
digest through a dedicated fingerprint field.
"""

from __future__ import annotations

import pytest

from repro import WorkloadConfig, result_fingerprint, run_simulation
from repro.core.results import deterministic_dict

from tests.core.test_golden_determinism import GOLDEN, golden_config


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_no_workload_digests_match_seed_golden(protocol):
    """All 9 seed digests stay byte-identical when no workload is
    configured — the workload layer must not consume RNG, schedule events,
    or add fingerprint fields unless asked for."""
    result = run_simulation(golden_config(protocol))
    assert result.workload is None
    assert "workload" not in deterministic_dict(result)
    assert result_fingerprint(result) == GOLDEN[protocol]


def test_workload_adds_a_fingerprint_field():
    config = golden_config("pbft").replace(
        lam=1000.0,
        network={"mean": 250.0, "std": 50.0},
        num_decisions=1,
        workload=WorkloadConfig(rate=20.0, clients=4, duration=1000.0, batch=8),
    )
    result = run_simulation(config)
    data = deterministic_dict(result)
    assert data["workload"]["decided"] == data["workload"]["submitted"] > 0
    assert "requests" not in data["workload"]
