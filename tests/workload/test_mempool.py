"""Unit tests for the arrival processes and the mempool cut policy."""

from __future__ import annotations

import pytest

from repro import WorkloadConfig
from repro.core.rng import RandomSource
from repro.workload import Mempool, Request, generate_requests


def _request(index: int, time: float, client: int = 0) -> Request:
    return Request(
        id=f"req{client}.{index}", client=client, submit_time=time, index=index
    )


# -- arrivals ----------------------------------------------------------------


def test_poisson_arrivals_are_deterministic_and_ordered():
    workload = WorkloadConfig(rate=50.0, clients=5, duration=2000.0)
    first = generate_requests(workload, RandomSource(7))
    second = generate_requests(workload, RandomSource(7))
    assert first == second
    times = [r.submit_time for r in first]
    assert times == sorted(times)
    assert all(0.0 <= t < workload.duration for t in times)
    assert [r.index for r in first] == list(range(len(first)))


def test_poisson_arrivals_use_dedicated_substreams():
    """Adding clients must not perturb existing clients' arrival times —
    each client draws on its own ``workload.{client}`` substream."""
    small = WorkloadConfig(rate=10.0, clients=2, duration=2000.0)
    large = WorkloadConfig(rate=20.0, clients=4, duration=2000.0)
    by_client_small = {
        client: [r.submit_time for r in generate_requests(small, RandomSource(7))
                 if r.client == client]
        for client in range(2)
    }
    by_client_large = {
        client: [r.submit_time for r in generate_requests(large, RandomSource(7))
                 if r.client == client]
        for client in range(2)
    }
    # Per-client rate (rate / clients) is identical, so clients 0 and 1
    # must see exactly the same arrivals in both configurations.
    assert by_client_small == by_client_large


def test_poisson_seed_changes_arrivals():
    workload = WorkloadConfig(rate=50.0, clients=2, duration=2000.0)
    a = generate_requests(workload, RandomSource(1))
    b = generate_requests(workload, RandomSource(2))
    assert [r.submit_time for r in a] != [r.submit_time for r in b]


def test_trace_arrivals_round_robin():
    workload = WorkloadConfig(
        arrival="trace", clients=2, trace_times=[5.0, 10.0, 15.0, 20.0]
    )
    requests = generate_requests(workload, RandomSource(1))
    assert [r.submit_time for r in requests] == [5.0, 10.0, 15.0, 20.0]
    assert [r.client for r in requests] == [0, 1, 0, 1]
    assert [r.id for r in requests] == ["req0.0", "req1.0", "req0.1", "req1.1"]


def test_trace_arrivals_draw_no_rng():
    """Trace arrivals are deterministic by construction: the substream
    registry must stay empty so the workload cannot perturb anything."""
    source = RandomSource(7)
    workload = WorkloadConfig(arrival="trace", trace_times=[1.0, 2.0])
    generate_requests(workload, source)
    probe = RandomSource(7).python("workload.0").random()
    assert source.python("workload.0").random() == probe


# -- mempool -----------------------------------------------------------------


def test_cut_not_ready_below_all_triggers():
    pool = Mempool(batch=4, batch_timeout=100.0)
    pool.push(_request(0, 10.0))
    pool.push(_request(1, 20.0))
    assert not pool.ready(50.0)
    assert pool.cut(50.0) == []
    assert len(pool) == 2


def test_cut_on_size_trigger():
    pool = Mempool(batch=2, batch_timeout=1000.0)
    pool.push(_request(1, 20.0))
    pool.push(_request(0, 10.0))
    batch = pool.cut(21.0)
    assert [r.index for r in batch] == [0, 1]  # oldest first despite push order
    assert len(pool) == 0


def test_cut_on_timeout_trigger():
    pool = Mempool(batch=100, batch_timeout=50.0)
    pool.push(_request(0, 10.0))
    assert not pool.ready(59.0)
    assert [r.index for r in pool.cut(60.0)] == [0]


def test_cut_on_drain_trigger():
    pool = Mempool(batch=100, batch_timeout=1000.0)
    pool.push(_request(0, 10.0))
    assert not pool.ready(11.0)
    pool.mark_drained()
    assert [r.index for r in pool.cut(11.0)] == [0]
    assert pool.cut(11.0) == []  # empty pool is never ready


def test_cut_caps_at_batch_size():
    pool = Mempool(batch=3, batch_timeout=10.0)
    for i in range(7):
        pool.push(_request(i, float(i)))
    first = pool.cut(100.0)
    second = pool.cut(100.0)
    assert [r.index for r in first] == [0, 1, 2]
    assert [r.index for r in second] == [3, 4, 5]
    assert len(pool) == 1


def test_requeued_request_returns_to_original_position():
    pool = Mempool(batch=2, batch_timeout=1000.0)
    early = _request(0, 10.0)
    pool.push(early)
    pool.push(_request(1, 20.0))
    batch = pool.cut(21.0)
    assert batch[0] is early
    pool.push(_request(2, 30.0))
    pool.push(early)  # requeue after a lost view-change race
    assert [r.index for r in pool.cut(31.0)] == [0, 2]


def test_max_depth_tracks_high_water_mark():
    pool = Mempool(batch=2, batch_timeout=10.0)
    for i in range(5):
        pool.push(_request(i, float(i)))
    pool.cut(100.0)
    assert pool.max_depth == 5


@pytest.mark.parametrize("batch", [1, 2, 16])
def test_cut_contents_sorted_by_submit_time(batch):
    pool = Mempool(batch=batch, batch_timeout=0.0)
    for i, t in enumerate([30.0, 10.0, 20.0, 10.0]):
        pool.push(_request(i, t))
    seen: list[Request] = []
    while len(pool):
        seen.extend(pool.cut(1000.0))
    keys = [(r.submit_time, r.index) for r in seen]
    assert keys == sorted(keys)
