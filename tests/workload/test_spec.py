"""Workload config surface: spec grammar, validation, serialization.

The serialization tests double as the opt-in contract: a config without a
workload must serialize byte-identically to what pre-workload versions
produced (no ``workload`` key at all), and a config with one must
round-trip through JSON without drift.
"""

from __future__ import annotations

import pytest

from repro import SimulationConfig, WorkloadConfig, parse_workload_spec
from repro.core.errors import ConfigurationError

from tests.conftest import quick_config


# -- spec grammar ------------------------------------------------------------


def test_parse_full_spec():
    config = parse_workload_spec("rate:500,clients:100,batch:64")
    assert config.rate == 500.0
    assert config.clients == 100
    assert config.batch == 64
    assert config.arrival == "poisson"


def test_parse_all_keys():
    config = parse_workload_spec(
        "rate:20, clients:10, batch:16, timeout:500, duration:3000"
    )
    assert config.batch_timeout == 500.0
    assert config.duration == 3000.0


def test_parse_defaults_fill_in():
    config = parse_workload_spec("rate:200")
    assert config.clients == WorkloadConfig().clients
    assert config.batch == WorkloadConfig().batch


@pytest.mark.parametrize(
    "spec",
    ["", "   ", "rate", "rate=500", "tempo:99", "rate:fast", "rate:0", "clients:0"],
)
def test_parse_rejects_bad_specs(spec):
    with pytest.raises(ConfigurationError):
        parse_workload_spec(spec)


# -- validation --------------------------------------------------------------


def test_validate_rejects_unknown_arrival():
    with pytest.raises(ConfigurationError, match="arrival"):
        WorkloadConfig(arrival="uniform").validate()


def test_validate_trace_requires_times():
    with pytest.raises(ConfigurationError, match="trace_times"):
        WorkloadConfig(arrival="trace").validate()
    with pytest.raises(ConfigurationError, match=">= 0"):
        WorkloadConfig(arrival="trace", trace_times=[10.0, -1.0]).validate()
    WorkloadConfig(arrival="trace", trace_times=[10.0, 20.0]).validate()


def test_simulation_config_validates_workload():
    with pytest.raises(ConfigurationError, match="batch"):
        quick_config(workload=WorkloadConfig(batch=0))


# -- serialization -----------------------------------------------------------


def test_no_workload_serializes_without_key():
    data = quick_config().to_dict()
    assert "workload" not in data


def test_workload_round_trips_through_dict():
    config = quick_config(
        workload=WorkloadConfig(rate=20.0, clients=10, duration=3000.0, batch=16)
    )
    data = config.to_dict()
    assert "trace_times" not in data["workload"]
    restored = SimulationConfig.from_dict(data)
    assert restored == config
    assert restored.to_dict() == data


def test_trace_workload_round_trips():
    config = quick_config(
        workload=WorkloadConfig(arrival="trace", trace_times=[5.0, 10.0, 15.0])
    )
    restored = SimulationConfig.from_dict(config.to_dict())
    assert restored.workload == config.workload


def test_from_dict_rejects_unknown_workload_keys():
    data = quick_config(workload=WorkloadConfig()).to_dict()
    data["workload"]["tempo"] = 1
    with pytest.raises(ConfigurationError, match="tempo"):
        SimulationConfig.from_dict(data)


def test_replace_merges_workload_fields():
    config = quick_config(
        workload=WorkloadConfig(rate=20.0, clients=10, batch=16)
    )
    bumped = config.replace(workload={"rate": 80.0})
    assert bumped.workload.rate == 80.0
    assert bumped.workload.clients == 10
    assert bumped.workload.batch == 16
    # The original is untouched and a workload can be removed outright.
    assert config.workload.rate == 20.0
    assert config.replace(workload=None).workload is None


def test_describe_mentions_process():
    assert "poisson" in WorkloadConfig().describe()
    assert "trace" in WorkloadConfig(
        arrival="trace", trace_times=[1.0]
    ).describe()
