"""Request-conservation battery: end-to-end workload invariants.

Each hypothesis example draws a full workload setting — protocol, system
size, offered arrival rate, batch size, and seed — runs the simulation to
completion, and checks the invariants the open-loop layer must keep no
matter how batches race through view changes:

* **Conservation (exactly once)** — every submitted request is decided
  exactly once: no request is lost, none is decided twice, and the run
  only terminates once the workload drained.
* **Causality** — per-request latency (decide − submit) is >= 0; a
  request's decided-at stamp can never precede its arrival.
* **Batch discipline** — decided batches are disjoint (each request in
  exactly one), within the configured size cap, and internally ordered by
  ``(submit time, arrival index)`` — the mempool's deterministic order.
* **Accounting** — the ThroughputMetrics roll-up (counts, per-client
  split, percentile bounds) agrees with the per-request records.

Runs are fingerprint-deterministic: a separate test replays one drawn-at
-random-looking config twice and through a JSON round-trip.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import SimulationConfig, WorkloadConfig, result_fingerprint, run_simulation

from tests.conftest import quick_config

PROTOCOLS = ["pbft", "tendermint", "hotstuff-ns", "librabft"]


def _workload_config(
    protocol: str, n: int, seed: int, rate: float, batch: int
) -> SimulationConfig:
    # Default-ish lambda/network keep view churn realistic; a short arrival
    # window keeps each example fast while still spanning several slots.
    return quick_config(
        protocol=protocol,
        n=n,
        seed=seed,
        lam=1000.0,
        mean=250.0,
        std=50.0,
        workload=WorkloadConfig(
            rate=rate,
            clients=5,
            duration=1500.0,
            batch=batch,
            batch_timeout=400.0,
        ),
    )


@settings(max_examples=20, deadline=None)
@given(
    protocol=st.sampled_from(PROTOCOLS),
    n=st.sampled_from([4, 7]),
    seed=st.integers(min_value=0, max_value=10_000),
    rate=st.sampled_from([10.0, 40.0, 120.0]),
    batch=st.sampled_from([1, 4, 16]),
)
def test_every_request_decided_exactly_once(protocol, n, seed, rate, batch):
    config = _workload_config(protocol, n, seed, rate, batch)
    result = run_simulation(config)
    assert result.terminated, "open-loop runs must drain and terminate"
    wl = result.workload
    assert wl is not None

    # Conservation: all submitted, all decided, each exactly once.
    records = wl.requests
    assert wl.submitted == wl.decided == len(records)
    assert len({record.id for record in records}) == len(records)
    for record in records:
        assert record.decided, f"{record.id} was lost"
        assert record.latency is not None and record.latency >= 0.0, (
            f"{record.id} decided before it was submitted"
        )
        assert record.slot is not None and record.batch is not None

    # Batch discipline: disjoint, size-capped, ordered by submission.
    by_batch: dict[str, list] = {}
    for record in records:
        by_batch.setdefault(record.batch, []).append(record)
    assert wl.batches == len(by_batch)
    for tag, members in by_batch.items():
        assert len(members) <= batch, f"{tag} exceeds the batch cap"
        slots = {record.slot for record in members}
        assert len(slots) == 1, f"{tag} spans slots {slots}"
        times = [record.submitted_at for record in members]
        assert times == sorted(times), f"{tag} is not submission-ordered"
        stamps = {record.decided_at for record in members}
        assert len(stamps) == 1, f"{tag} decided at several times"
    assert wl.max_batch == max(len(m) for m in by_batch.values())

    # Accounting: the roll-up agrees with the records.
    latencies = sorted(record.latency for record in records)
    assert wl.latency_max_ms == latencies[-1]
    assert latencies[0] <= wl.latency_p50_ms <= wl.latency_p99_ms <= latencies[-1]
    per_client_counts = {client: 0 for client in range(5)}
    for record in records:
        per_client_counts[record.client] += 1
    assert {c: s[0] for c, s in wl.per_client.items()} == per_client_counts


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_workload_runs_are_fingerprint_deterministic(protocol):
    config = _workload_config(protocol, n=4, seed=3, rate=40.0, batch=16)
    first = run_simulation(config)
    second = run_simulation(config)
    assert result_fingerprint(first) == result_fingerprint(second)
    # The fingerprint covers the workload roll-up...
    assert first.workload is not None
    restored = SimulationConfig.from_dict(config.to_dict())
    assert result_fingerprint(run_simulation(restored)) == result_fingerprint(first)
    # ...and a workload-free run of the same base differs structurally.
    bare = run_simulation(config.replace(workload=None))
    assert bare.workload is None


def test_trace_workload_end_to_end():
    """A deterministic trace drives the same machinery: every listed time
    becomes one request, decided exactly once."""
    times = [100.0 * k for k in range(1, 13)]
    config = quick_config(
        protocol="pbft",
        lam=1000.0,
        mean=250.0,
        std=50.0,
        workload=WorkloadConfig(
            arrival="trace", clients=3, batch=4, batch_timeout=300.0,
            trace_times=times,
        ),
    )
    result = run_simulation(config)
    assert result.terminated
    wl = result.workload
    assert wl.submitted == wl.decided == len(times)
    assert sorted(r.submitted_at for r in wl.requests) == times
    assert all(r.latency >= 0 for r in wl.requests)
