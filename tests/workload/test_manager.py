"""Unit tests for the workload manager's batch ledger and metrics."""

from __future__ import annotations

from repro import WorkloadConfig
from repro.core.rng import RandomSource
from repro.workload import WorkloadManager


def _manager(times: list[float], clients: int = 1, batch: int = 4,
             batch_timeout: float = 50.0) -> WorkloadManager:
    workload = WorkloadConfig(
        arrival="trace", clients=clients, batch=batch,
        batch_timeout=batch_timeout, trace_times=times,
    )
    return WorkloadManager(workload, RandomSource(1))


def _submit_all(manager: WorkloadManager) -> None:
    for request in manager.requests:
        manager.submit(request.index)


def test_happy_path_single_batch():
    manager = _manager([10.0, 20.0, 30.0])
    _submit_all(manager)
    tag = manager.cut_batch(proposer=0, slot=0, view=None, now=30.0)
    assert tag is not None and tag.startswith("batch[b0](slot=0")
    manager.on_decided(0, tag, now=120.0)
    assert manager.complete()
    assert manager.slots_with_requests() == {0}
    metrics = manager.build(end_ms=150.0)
    assert metrics.submitted == metrics.decided == 3
    assert metrics.batches == 1 and metrics.max_batch == 3
    assert metrics.requeues == 0
    assert all(r.decided_at == 120.0 and r.slot == 0 for r in metrics.requests)
    assert metrics.latency_max_ms == 110.0  # the t=10 request
    assert metrics.committed_tx_s == 3 / 0.150


def test_cut_refuses_empty_and_unready_pool():
    manager = _manager([10.0], batch=4, batch_timeout=100.0)
    assert manager.cut_batch(0, 0, None, now=0.0) is None  # nothing submitted
    manager.submit(0)
    # Drain fired (single-request run), so the tail cut is immediate.
    assert manager.cut_batch(0, 0, None, now=10.0) is not None


def test_losing_batch_requeues_and_wins_later():
    manager = _manager([10.0, 20.0], batch=2, batch_timeout=50.0)
    _submit_all(manager)
    lost = manager.cut_batch(proposer=0, slot=0, view=0, now=20.0)
    # The slot decides a synthetic value (the batch lost a view change).
    manager.on_decided(0, "value(slot=0, proposer=1)", now=80.0)
    assert not manager.complete()
    won = manager.cut_batch(proposer=1, slot=1, view=0, now=80.0)
    assert won is not None and won != lost
    manager.on_decided(1, won, now=140.0)
    assert manager.complete()
    metrics = manager.build(end_ms=150.0)
    assert metrics.requeues == 2  # both requests rode the losing batch
    assert all(r.requeues == 1 and r.slot == 1 for r in metrics.requests)
    assert manager.slots_with_requests() == {1}


def test_on_decided_is_idempotent_per_slot():
    manager = _manager([10.0])
    _submit_all(manager)
    tag = manager.cut_batch(0, 0, None, now=10.0)
    manager.on_decided(0, tag, now=50.0)
    manager.on_decided(0, tag, now=90.0)  # a later node's decision report
    [record] = manager.build(end_ms=100.0).requests
    assert record.decided_at == 50.0  # first decision wins


def test_cut_refuses_already_decided_slot():
    manager = _manager([10.0, 20.0], batch=1)
    _submit_all(manager)
    tag = manager.cut_batch(0, 0, None, now=20.0)
    manager.on_decided(0, tag, now=60.0)
    # A straggling view change for slot 0 must not strand request 1.
    assert manager.cut_batch(1, 0, 3, now=70.0) is None
    assert manager.cut_batch(1, 1, None, now=70.0) is not None


def test_batch_tags_are_unique_across_slots_and_views():
    manager = _manager([float(t) for t in range(1, 9)], batch=2)
    _submit_all(manager)
    tags = [manager.cut_batch(p, slot, view, now=10.0)
            for p, (slot, view) in enumerate([(0, None), (0, 1), (1, None), (1, 2)])]
    assert len(set(tags)) == 4


def test_metrics_per_client_and_percentiles():
    manager = _manager([0.0, 0.0, 0.0, 0.0], clients=2, batch=4)
    _submit_all(manager)
    tag = manager.cut_batch(0, 0, None, now=0.0)
    manager.on_decided(0, tag, now=40.0)
    metrics = manager.build(end_ms=40.0)
    assert set(metrics.per_client) == {0, 1}
    assert metrics.per_client[0] == [2, 2, 40.0]  # submitted, decided, mean
    assert metrics.latency_p50_ms == metrics.latency_p99_ms == 40.0


def test_undecided_requests_mark_saturation():
    manager = _manager([10.0, 20.0], batch=1)
    _submit_all(manager)
    tag = manager.cut_batch(0, 0, None, now=20.0)
    manager.on_decided(0, tag, now=60.0)
    metrics = manager.build(end_ms=100.0)
    assert metrics.decided == 1 < metrics.submitted
    assert metrics.saturated
    undecided = [r for r in metrics.requests if not r.decided]
    assert len(undecided) == 1 and undecided[0].latency is None


def test_backlog_at_arrival_end_marks_saturation():
    # All decided eventually, but both requests were still pending when
    # arrivals stopped (trace end = 20 ms) — the drain lagged the load.
    manager = _manager([10.0, 20.0], batch=2)
    _submit_all(manager)
    tag = manager.cut_batch(0, 0, None, now=20.0)
    manager.on_decided(0, tag, now=500.0)
    metrics = manager.build(end_ms=500.0)
    assert metrics.decided == metrics.submitted == 2
    assert metrics.backlog_at_arrival_end == 2
    assert metrics.saturated


def test_workload_dict_excludes_request_detail():
    manager = _manager([10.0])
    _submit_all(manager)
    manager.on_decided(0, manager.cut_batch(0, 0, None, 10.0), now=50.0)
    data = manager.build(end_ms=100.0).to_dict()
    assert "requests" not in data
    assert data["per_client"] == {"0": [1, 1, 40.0]}
    assert data["decided"] == 1
