"""Test package."""
