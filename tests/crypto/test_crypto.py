"""Tests for the simulated crypto primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto import (
    CommonCoin,
    GENESIS_QC,
    QuorumCertificate,
    SignatureScheme,
    VRFOracle,
    VRFOutput,
    VRF_RANGE,
    canonical,
    make_qc,
    make_tc,
)
from repro.crypto.vrf import VRFSecretKey


class TestSignatures:
    def test_sign_verify_roundtrip(self):
        scheme = SignatureScheme(seed=1)
        signature = scheme.sign(3, {"type": "VOTE", "view": 2})
        assert scheme.verify(signature, {"type": "VOTE", "view": 2})

    def test_wrong_statement_fails(self):
        scheme = SignatureScheme(seed=1)
        signature = scheme.sign(3, {"view": 2})
        assert not scheme.verify(signature, {"view": 3})

    def test_wrong_signer_fails(self):
        scheme = SignatureScheme(seed=1)
        signature = scheme.sign(3, "stmt")
        forged = type(signature)(signer=4, tag=signature.tag)
        assert not scheme.verify(forged, "stmt")

    def test_seed_separates_runs(self):
        a = SignatureScheme(seed=1).sign(0, "x")
        b = SignatureScheme(seed=2).sign(0, "x")
        assert a.tag != b.tag

    def test_digest_deterministic(self):
        scheme = SignatureScheme()
        assert scheme.digest({"a": 1, "b": 2}) == scheme.digest({"b": 2, "a": 1})

    def test_canonical_handles_unserializable(self):
        assert "object" in canonical(object)

    def test_canonical_handles_circular_structures(self):
        loop: list = []
        loop.append(loop)
        assert canonical(loop) == repr(loop)


class TestVRF:
    def test_evaluate_verify_roundtrip(self):
        oracle = VRFOracle(seed=5)
        key = oracle.keygen(2)
        output = oracle.evaluate(key, "leader/7")
        assert oracle.verify(output)

    def test_tampered_value_fails(self):
        oracle = VRFOracle(seed=5)
        output = oracle.evaluate(oracle.keygen(2), "leader/7")
        tampered = VRFOutput(
            node=output.node, input=output.input,
            value=(output.value + 1) % VRF_RANGE, proof=output.proof,
        )
        assert not oracle.verify(tampered)

    def test_claimed_node_checked(self):
        oracle = VRFOracle(seed=5)
        output = oracle.evaluate(oracle.keygen(2), "x")
        stolen = VRFOutput(node=3, input="x", value=output.value, proof=output.proof)
        assert not oracle.verify(stolen)

    def test_evaluation_requires_secret_key(self):
        oracle = VRFOracle(seed=5)
        with pytest.raises(TypeError):
            oracle.evaluate(2, "input")  # type: ignore[arg-type]

    def test_outputs_unpredictable_across_inputs(self):
        oracle = VRFOracle(seed=5)
        key = oracle.keygen(0)
        values = {oracle.evaluate(key, f"round/{i}").value for i in range(50)}
        assert len(values) == 50

    def test_payload_roundtrip(self):
        oracle = VRFOracle(seed=1)
        output = oracle.evaluate(oracle.keygen(4), "p")
        assert VRFOutput.from_payload(output.to_payload()) == output

    def test_keygen_deterministic(self):
        assert VRFOracle(seed=1).keygen(3) == VRFOracle(seed=1).keygen(3)
        assert VRFOracle(seed=1).keygen(3) != VRFOracle(seed=2).keygen(3)


class TestQuorumCertificates:
    def test_validity_threshold(self):
        qc = make_qc(3, "digest", {0, 1, 2})
        assert qc.valid(3)
        assert not qc.valid(4)

    def test_signers_deduplicated_by_frozenset(self):
        qc = make_qc(1, "d", frozenset({0, 0, 1}))
        assert len(qc.signers) == 2

    def test_payload_roundtrip(self):
        qc = make_qc(9, "blockhash", {5, 3, 8})
        assert QuorumCertificate.from_payload(qc.to_payload()) == qc

    def test_from_payload_none(self):
        assert QuorumCertificate.from_payload(None) is None

    def test_tc_has_no_ref(self):
        tc = make_tc(4, {0, 1, 2})
        assert tc.kind == "tc"
        assert tc.ref is None

    def test_genesis_qc(self):
        assert GENESIS_QC.view == 0
        assert GENESIS_QC.ref == "genesis"


class TestCommonCoin:
    def test_flip_is_a_bit(self):
        coin = CommonCoin(seed=0)
        assert all(coin.flip(r) in (0, 1) for r in range(100))

    def test_shared_across_instances(self):
        a, b = CommonCoin(seed=7), CommonCoin(seed=7)
        assert [a.flip(r) for r in range(20)] == [b.flip(r) for r in range(20)]

    def test_varies_with_seed(self):
        a, b = CommonCoin(seed=1), CommonCoin(seed=2)
        assert [a.flip(r) for r in range(32)] != [b.flip(r) for r in range(32)]

    def test_roughly_fair(self):
        coin = CommonCoin(seed=3)
        heads = sum(coin.flip(r) for r in range(2_000))
        assert 800 < heads < 1_200

    def test_value_in_modulus(self):
        coin = CommonCoin(seed=3)
        assert all(0 <= coin.value(r, 16) < 16 for r in range(100))

    def test_value_bad_modulus(self):
        with pytest.raises(ValueError):
            CommonCoin().value(0, 0)


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
def test_property_vrf_verify_accepts_own_output(seed, input_):
    oracle = VRFOracle(seed=seed)
    output = oracle.evaluate(oracle.keygen(1), input_)
    assert oracle.verify(output)
    assert 0 <= output.value < VRF_RANGE
