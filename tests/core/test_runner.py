"""Tests for the high-level runners: determinism, repetition, sweeps."""

from __future__ import annotations

import pytest

from repro import run_simulation, repeat_simulation
from repro.core.runner import seed_window, sweep

from tests.conftest import quick_config


class TestDeterminism:
    def test_identical_configs_identical_results(self):
        a = run_simulation(quick_config(seed=5, record_trace=True))
        b = run_simulation(quick_config(seed=5, record_trace=True))
        assert a.latency == b.latency
        assert a.messages == b.messages
        assert a.events_processed == b.events_processed
        assert a.trace.to_jsonl() == b.trace.to_jsonl()

    def test_different_seeds_differ(self):
        a = run_simulation(quick_config(seed=1))
        b = run_simulation(quick_config(seed=2))
        assert a.latency != b.latency

    @pytest.mark.parametrize(
        "protocol", ["pbft", "hotstuff-ns", "librabft", "async-ba"]
    )
    def test_determinism_across_protocols(self, protocol):
        config = quick_config(protocol=protocol, seed=3)
        assert run_simulation(config).latency == run_simulation(config).latency


class TestRepeat:
    def test_consecutive_seeds(self):
        results = repeat_simulation(quick_config(seed=10), repetitions=3)
        assert [r.config.seed for r in results] == [10, 11, 12]

    def test_seed_offset(self):
        results = repeat_simulation(quick_config(seed=10), repetitions=2, seed_offset=5)
        assert [r.config.seed for r in results] == [15, 16]

    def test_callback_invoked_per_run(self):
        seen = []
        repeat_simulation(
            quick_config(), repetitions=3, callback=lambda i, r: seen.append(i)
        )
        assert seen == [0, 1, 2]

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            repeat_simulation(quick_config(), repetitions=0)

    def test_negative_repetitions_rejected(self):
        with pytest.raises(ValueError, match="repetitions must be >= 1"):
            repeat_simulation(quick_config(), repetitions=-3)

    def test_negative_seed_offset_rejected(self):
        """A negative offset shifts the window below the base seed and
        silently collides with other windows — now a ValueError."""
        with pytest.raises(ValueError, match="seed_offset must be >= 0"):
            repeat_simulation(quick_config(seed=10), repetitions=2, seed_offset=-1)

    def test_seed_window_contract(self):
        """Disjoint windows for work-splitting: offsets 0, k, 2k...
        partition the seed space with no overlap and no gaps."""
        base = quick_config(seed=100)
        first = seed_window(base, repetitions=3, seed_offset=0)
        second = seed_window(base, repetitions=3, seed_offset=3)
        seeds = [c.seed for c in first + second]
        assert seeds == [100, 101, 102, 103, 104, 105]
        assert len(set(seeds)) == len(seeds)

    def test_seed_window_validation(self):
        with pytest.raises(ValueError):
            seed_window(quick_config(), repetitions=0)
        with pytest.raises(ValueError):
            seed_window(quick_config(), repetitions=1, seed_offset=-5)

    def test_split_windows_match_one_big_window(self):
        """Splitting N reps into disjoint offset windows reproduces the
        single-call results exactly."""
        base = quick_config(seed=30)
        whole = repeat_simulation(base, repetitions=4)
        halves = repeat_simulation(base, 2, seed_offset=0) + repeat_simulation(
            base, 2, seed_offset=2
        )
        assert [r.latency for r in whole] == [r.latency for r in halves]
        assert [r.config.seed for r in whole] == [r.config.seed for r in halves]

    def test_repeat_matches_individual_runs(self):
        base = quick_config(seed=20)
        batch = repeat_simulation(base, repetitions=2)
        solo = run_simulation(base.replace(seed=21))
        assert batch[1].latency == solo.latency


class TestSweep:
    def test_sweep_applies_variations(self):
        results = sweep(
            quick_config(),
            variations=[{"n": 4}, {"n": 7}],
            repetitions=2,
        )
        assert len(results) == 2
        assert all(len(group) == 2 for group in results)
        assert results[0][0].config.n == 4
        assert results[1][0].config.n == 7
