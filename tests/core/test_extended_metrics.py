"""Tests for the extended metrics: byte accounting and round complexity."""

from __future__ import annotations

import pytest

from repro import run_simulation, AttackConfig
from repro.core.message import MESSAGE_OVERHEAD_BYTES, Message, estimate_message_bytes

from tests.conftest import quick_config


class TestByteEstimation:
    def test_overhead_plus_payload(self):
        message = Message(0, 1, {"type": "X"})
        size = estimate_message_bytes(message)
        assert size > MESSAGE_OVERHEAD_BYTES

    def test_larger_payloads_cost_more(self):
        small = Message(0, 1, {"type": "X"})
        big = Message(0, 1, {"type": "X", "blob": "a" * 500})
        assert estimate_message_bytes(big) > estimate_message_bytes(small) + 400

    def test_deterministic(self):
        message = Message(0, 1, {"b": 2, "a": 1})
        same = Message(0, 1, {"a": 1, "b": 2})
        assert estimate_message_bytes(message) == estimate_message_bytes(same)

    def test_run_accumulates_bytes(self):
        result = run_simulation(quick_config(n=4))
        assert result.bytes_sent > result.messages * MESSAGE_OVERHEAD_BYTES

    def test_bytes_reproducible(self):
        a = run_simulation(quick_config(seed=6))
        b = run_simulation(quick_config(seed=6))
        assert a.bytes_sent == b.bytes_sent


class TestRoundComplexity:
    def test_happy_path_pbft_stays_in_view_zero(self):
        result = run_simulation(quick_config(n=4))
        assert result.max_view == 0

    def test_view_change_reflected(self):
        result = run_simulation(
            quick_config(
                n=4, attack=AttackConfig(name="failstop", params={"nodes": [0]})
            )
        )
        assert result.max_view >= 1

    def test_tracked_without_tracing(self):
        """Round complexity must be available even with record_trace off."""
        config = quick_config(
            n=4,
            attack=AttackConfig(name="failstop", params={"nodes": [0]}),
            record_trace=False,
        )
        result = run_simulation(config)
        assert len(result.trace) == 0
        assert result.max_view >= 1

    def test_add_iterations_counted(self):
        from tests.conftest import sync_config

        result = run_simulation(
            sync_config(
                "add-v1",
                n=7,
                lam=200.0,
                attack=AttackConfig(name="add-static", params={"count": 2}),
                max_time=600_000.0,
            )
        )
        assert result.max_view >= 2  # two wasted iterations before deciding

    def test_hotstuff_views_grow_with_decisions(self):
        few = run_simulation(
            quick_config(protocol="hotstuff-ns", n=4, num_decisions=2)
        )
        many = run_simulation(
            quick_config(protocol="hotstuff-ns", n=4, num_decisions=8)
        )
        assert many.max_view > few.max_view
