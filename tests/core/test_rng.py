"""Tests for seeded randomness and substream derivation."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.rng import RandomSource, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "network") == derive_seed(7, "network")

    def test_varies_with_name(self):
        assert derive_seed(7, "network") != derive_seed(7, "protocol")

    def test_varies_with_root(self):
        assert derive_seed(7, "network") != derive_seed(8, "network")

    def test_fits_63_bits(self):
        assert 0 <= derive_seed(0, "x") < 1 << 63

    def test_stable_across_calls_and_platforms(self):
        # SHA-256 based: this value must never change between versions,
        # or published experiment results stop being reproducible.
        assert derive_seed(0, "network.delay") == derive_seed(0, "network.delay")


class TestRandomSource:
    def test_same_name_same_stream(self):
        source = RandomSource(seed=1)
        a = source.python("coin")
        b = RandomSource(seed=1).python("coin")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        source = RandomSource(seed=1)
        a = source.python("a")
        b = source.python("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_numpy_streams_reproducible(self):
        a = RandomSource(seed=3).numpy("delay")
        b = RandomSource(seed=3).numpy("delay")
        assert list(a.normal(size=5)) == list(b.normal(size=5))

    def test_adding_streams_does_not_perturb_existing(self):
        """The reproducibility contract: new consumers never shift the
        draws of existing ones."""
        lone = RandomSource(seed=9).numpy("network")
        source = RandomSource(seed=9)
        source.numpy("brand.new.stream")  # extra consumer registered first
        shared = source.numpy("network")
        assert list(lone.normal(size=8)) == list(shared.normal(size=8))

    def test_issued_streams_listed(self):
        source = RandomSource(seed=0)
        source.python("b")
        source.python("a")
        assert list(source.issued_streams()) == ["a", "b"]


@given(st.integers(min_value=0, max_value=2**32), st.text(min_size=1, max_size=30))
def test_property_child_seed_in_range(root, name):
    assert 0 <= derive_seed(root, name) < 1 << 63
