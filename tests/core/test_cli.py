"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_protocols_and_attacks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("pbft", "hotstuff-ns", "add-v3", "partition", "failstop"):
            assert name in out


class TestRun:
    def test_run_summary(self, capsys):
        code = main(["run", "--protocol", "pbft", "-n", "4",
                     "--mean", "50", "--std", "10", "--lam", "500"])
        assert code == 0
        assert "pbft: terminated" in capsys.readouterr().out

    def test_run_json(self, capsys):
        code = main(["run", "--protocol", "pbft", "-n", "4",
                     "--mean", "50", "--std", "10", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["terminated"] is True
        assert data["messages"] > 0
        assert data["bytes_sent"] > 0
        assert "0" in data["decided_values"]

    def test_pipelined_default_decisions(self, capsys):
        main(["run", "--protocol", "hotstuff-ns", "-n", "4",
              "--mean", "50", "--std", "10", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert len(data["decided_values"]) >= 10

    def test_run_with_attack(self, capsys):
        code = main([
            "run", "--protocol", "pbft", "-n", "7", "--mean", "50", "--std", "10",
            "--attack", "failstop", "--attack-params", '{"nodes": [6]}', "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["faulty"] == [6]

    def test_run_config_file(self, tmp_path, capsys):
        from repro import SimulationConfig, NetworkConfig

        config = SimulationConfig(
            protocol="pbft", n=4, lam=500.0,
            network=NetworkConfig(mean=50.0, std=10.0),
        )
        path = tmp_path / "config.json"
        path.write_text(json.dumps(config.to_dict()))
        assert main(["run", "--config", str(path)]) == 0
        assert "terminated" in capsys.readouterr().out

    def test_unterminated_run_exit_code(self, capsys):
        code = main(["run", "--protocol", "pbft", "-n", "4",
                     "--mean", "50", "--std", "10", "--max-time", "1"])
        assert code == 2

    def test_unknown_protocol_is_an_error(self, capsys):
        code = main(["run", "--protocol", "nonsense"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestSweep:
    def test_sweep_lambda(self, capsys):
        code = main([
            "sweep", "--protocol", "pbft", "-n", "4", "--mean", "50", "--std", "10",
            "--param", "lam", "--values", "400,800", "--reps", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "400" in out and "800" in out
        assert "100%" in out

    def test_sweep_n(self, capsys):
        code = main([
            "sweep", "--protocol", "pbft", "--mean", "50", "--std", "10",
            "--param", "n", "--values", "4,7", "--reps", "1",
        ])
        assert code == 0

    def test_unsupported_parameter(self, capsys):
        code = main([
            "sweep", "--protocol", "pbft", "--param", "colour", "--values", "1",
        ])
        assert code == 1

    def test_sweep_parallel_jobs(self, capsys):
        """--jobs 2 must produce the same table a serial sweep does."""
        argv_tail = [
            "--protocol", "pbft", "-n", "4", "--mean", "50", "--std", "10",
            "--param", "lam", "--values", "400,800", "--reps", "4",
        ]
        assert main(["sweep", *argv_tail, "--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["sweep", *argv_tail, "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out
        assert "failed" in parallel_out  # failure column present
        assert " 0" in parallel_out

    def test_sweep_with_timeout_flag(self, capsys):
        code = main([
            "sweep", "--protocol", "pbft", "-n", "4", "--mean", "50",
            "--std", "10", "--param", "n", "--values", "4", "--reps", "2",
            "--jobs", "2", "--timeout", "120", "--retries", "0",
        ])
        assert code == 0


class TestTelemetry:
    RUN = ["run", "--protocol", "pbft", "-n", "4",
           "--mean", "50", "--std", "10", "--lam", "500"]

    def test_trace_out_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main([*self.RUN, "--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"-> {path}" in out
        lines = [json.loads(l) for l in path.read_text().splitlines() if l]
        assert lines and all("time" in e and "kind" in e for e in lines)

    def test_trace_filter(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        code = main([*self.RUN, "--trace-out", str(path),
                     "--trace-filter", "kind=decide"])
        assert code == 0
        kinds = {json.loads(l)["kind"] for l in path.read_text().splitlines() if l}
        assert kinds == {"decide"}

    def test_trace_filter_requires_trace_out(self, capsys):
        assert main([*self.RUN, "--trace-filter", "kind=decide"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_profile_prints_table(self, capsys):
        assert main([*self.RUN, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "hot-path profile" in out
        assert "protocol.on_message" in out

    def test_profile_json_output(self, capsys):
        assert main([*self.RUN, "--profile", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["profile"]["runs"] == 1
        assert "queue.pop" in data["profile"]["sections"]

    def test_profile_out_file(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        assert main([*self.RUN, "--profile-out", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["events"] > 0

    def test_sweep_profile_prints_fleet_table(self, capsys):
        code = main([
            "sweep", "--protocol", "pbft", "-n", "4", "--mean", "50",
            "--std", "10", "--param", "lam", "--values", "400,800",
            "--reps", "2", "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hot-path profile" in out
        assert "4 runs" in out

    def test_log_level_emits_structured_logs(self, tmp_path, capsys):
        import logging as _logging

        from repro.observability.logging import LOGGER_NAME, configure_logging

        try:
            assert main(["--log-level", "debug", *self.RUN]) == 0
            err = capsys.readouterr().err
            assert "run starting" in err
            assert "run finished" in err
        finally:
            root = _logging.getLogger(LOGGER_NAME)
            root.removeHandler(configure_logging(level="warning"))
            root.setLevel(_logging.WARNING)


class TestInspect:
    def _write_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(["run", "--protocol", "pbft", "-n", "4", "--mean", "50",
                     "--std", "10", "--lam", "500",
                     "--trace-out", str(path)]) == 0
        return path

    def test_inspect_renders_report(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        capsys.readouterr()
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "message usage by kind" in out
        assert "stall forensics:" in out

    def test_inspect_totals_match_run(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["run", "--protocol", "pbft", "-n", "4", "--mean", "50",
                     "--std", "10", "--lam", "500",
                     "--trace-out", str(path), "--json"]) == 0
        run_data = json.loads(capsys.readouterr().out)
        assert main(["inspect", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["sent"] == run_data["messages"]
        assert report["bytes_sent"] == run_data["bytes_sent"]

    def test_inspect_with_profile_json(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        profile = tmp_path / "profile.json"
        assert main(["run", "--protocol", "pbft", "-n", "4", "--mean", "50",
                     "--std", "10", "--lam", "500", "--trace-out", str(trace),
                     "--profile-out", str(profile)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(trace), "--profile-json", str(profile)]) == 0
        assert "hot-path profile" in capsys.readouterr().out

    def test_inspect_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_profile_out_schema(self, tmp_path, capsys):
        """The --profile-out JSON is the documented RunProfile schema that
        'inspect --profile-json' consumes."""
        profile = tmp_path / "profile.json"
        assert main(["run", "--protocol", "pbft", "-n", "4", "--mean", "50",
                     "--std", "10", "--lam", "500",
                     "--profile-out", str(profile)]) == 0
        data = json.loads(profile.read_text())
        for key in ("wall_seconds", "events", "sim_time_ms", "runs",
                    "events_per_second", "sections"):
            assert key in data
        assert data["events"] > 0
        assert data["runs"] == 1
        for section in data["sections"].values():
            assert set(section) == {"calls", "seconds"}

    def test_inspect_analysis_flags(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        capsys.readouterr()
        assert main(["inspect", str(path), "--critical-path", "--quorum",
                     "--phases"]) == 0
        out = capsys.readouterr().out
        assert "critical paths" in out
        assert "quorum" in out
        assert "time in phase" in out

    def test_inspect_analysis_json_schema(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        capsys.readouterr()
        assert main(["inspect", str(path), "--critical-path", "--quorum",
                     "--phases", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["critical_paths"], "expected one path per decision"
        for entry in data["critical_paths"]:
            assert entry["complete"] is True
            assert entry["steps"][-1]["kind"] == "decide"
        assert data["quorums"]
        assert data["phases"]["phase_totals_ms"]

    def test_inspect_empty_trace_exits_cleanly(self, tmp_path, capsys):
        """A 0-event trace is a valid artifact (a filtered run can record
        nothing); inspect reports that plainly and exits 0."""
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["inspect", str(path)]) == 0
        captured = capsys.readouterr()
        assert "no trace events" in captured.out
        assert captured.err == ""

    def test_inspect_empty_trace_with_analysis_flags(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["inspect", str(path), "--critical-path", "--quorum",
                     "--phases", "--json"]) == 0
        assert "no trace events" in capsys.readouterr().out


class TestMetricsCommand:
    def _write_metrics(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["run", "--protocol", "pbft", "-n", "4", "--mean", "50",
                     "--std", "10", "--lam", "500",
                     "--metrics-out", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_run_metrics_summary(self, capsys):
        assert main(["run", "--protocol", "pbft", "-n", "4", "--mean", "50",
                     "--std", "10", "--lam", "500", "--metrics"]) == 0
        assert "metrics:" in capsys.readouterr().out

    def test_run_metrics_json(self, capsys):
        assert main(["run", "--protocol", "pbft", "-n", "4", "--mean", "50",
                     "--std", "10", "--lam", "500", "--metrics",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["metrics"]["counters"]["messages_sent"] == data["messages"]

    def test_metrics_table(self, tmp_path, capsys):
        path = self._write_metrics(tmp_path, capsys)
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "final metric values" in out
        assert "messages_sent" in out

    def test_metrics_prometheus(self, tmp_path, capsys):
        path = self._write_metrics(tmp_path, capsys)
        assert main(["metrics", str(path), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_messages_sent counter" in out
        assert "# TYPE repro_delivery_latency_ms histogram" in out

    def test_metrics_merges_files(self, tmp_path, capsys):
        path = self._write_metrics(tmp_path, capsys)
        assert main(["metrics", str(path), "--format", "json"]) == 0
        one = json.loads(capsys.readouterr().out)
        assert main(["metrics", str(path), str(path), "--format", "json"]) == 0
        two = json.loads(capsys.readouterr().out)
        assert two["runs"] == 2 * one["runs"]
        assert (two["counters"]["messages_sent"]
                == 2 * one["counters"]["messages_sent"])

    def test_metrics_csv_and_jsonl(self, tmp_path, capsys):
        path = self._write_metrics(tmp_path, capsys)
        assert main(["metrics", str(path), "--format", "csv"]) == 0
        csv_out = capsys.readouterr().out
        assert csv_out.startswith("time,metric,value")
        assert main(["metrics", str(path), "--format", "jsonl"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        sample = json.loads(lines[0])
        assert set(sample) == {"time", "metric", "value"}

    def test_metrics_interval_flag(self, capsys):
        assert main(["run", "--protocol", "pbft", "-n", "4", "--mean", "50",
                     "--std", "10", "--lam", "500",
                     "--metrics-interval", "25", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["metrics"]["interval_ms"] == 25.0


class TestValidate:
    def test_validate_matches(self, capsys):
        code = main([
            "validate", "--protocol", "pbft", "-n", "4",
            "--mean", "50", "--std", "10", "--decisions", "1",
        ])
        assert code == 0
        assert "MATCH" in capsys.readouterr().out


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestScenarioOption:
    ARGS = ["--protocol", "pbft", "-n", "4", "--mean", "50", "--std", "10",
            "--lam", "500", "--stall-timeout", "20000"]

    def test_run_with_grammar_scenario(self, capsys):
        code = main(["run", *self.ARGS,
                     "--scenario", "targeted-delay=factor:2.0", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["terminated"] is True

    def test_run_with_preset_scenario(self, capsys):
        code = main(["run", *self.ARGS, "--scenario", "adaptive-chaser",
                     "--json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["terminated"] is True

    def test_run_with_scenario_file(self, capsys, tmp_path):
        from repro.scenarios import parse_scenario_spec

        path = tmp_path / "spec.json"
        path.write_text(parse_scenario_spec("targeted-delay=factor:2.0").to_json())
        assert main(["run", *self.ARGS, "--scenario", str(path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["terminated"] is True

    def test_invalid_scenario_is_a_config_error(self, capsys):
        code = main(["run", *self.ARGS, "--scenario", "failstop=count:3"])
        assert code == 1
        assert "demands 3 corruptions" in capsys.readouterr().err

    def test_scenario_and_attack_flags_conflict(self, capsys):
        code = main(["run", *self.ARGS, "--attack", "failstop",
                     "--scenario", "targeted-delay=factor:2.0"])
        assert code == 1
        assert "on top of attack" in capsys.readouterr().err

    def test_list_shows_scenario_presets(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "scenario presets:" in out
        for name in ("adaptive-chaser", "worst-case-pbft-n32",
                     "relay-chokehold-tree"):
            assert name in out
        assert "scenario" in out  # the composite attacker itself


class TestMineCommand:
    ARGS = ["--protocol", "pbft", "-n", "4", "--mean", "50", "--std", "10",
            "--lam", "500", "--stall-timeout", "5000", "--seed", "3"]

    def test_mine_smoke_writes_artifact(self, capsys, tmp_path):
        out = tmp_path / "artifact.json"
        code = main(["mine", *self.ARGS, "--generations", "1",
                     "--population", "2", "--search-seed", "4",
                     "--out", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "mine[median-latency]" in text
        assert "baseline median latency/decision" in text
        artifact = json.loads(out.read_text())
        assert artifact["kind"] == "repro-mining-artifact"
        assert artifact["winner"] is not None
        assert len(artifact["lineage"]) == 2

    def test_mine_json_output(self, capsys):
        code = main(["mine", *self.ARGS, "--generations", "1",
                     "--population", "2", "--search-seed", "4", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["winner"]["score"] > 0

    def test_mine_refine_requires_scenario(self, capsys):
        code = main(["mine", *self.ARGS, "--generations", "1",
                     "--population", "2", "--refine"])
        assert code == 1
        assert "refine mode" in capsys.readouterr().err


class TestHealthOptions:
    ARGS = ["run", "--protocol", "pbft", "-n", "4",
            "--mean", "50", "--std", "10", "--lam", "500"]

    def test_run_health_summary_line(self, capsys):
        assert main([*self.ARGS, "--health"]) == 0
        assert "health: healthy" in capsys.readouterr().out

    def test_run_health_json(self, capsys):
        assert main([*self.ARGS, "--health", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["health"]["anomaly_count"] == 0
        assert data["health"]["windows"] > 0

    def test_health_window_implies_health(self, capsys):
        assert main([*self.ARGS, "--health-window", "100", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["health"]["window_ms"] == 100.0

    def test_run_without_flag_reports_no_health(self, capsys):
        assert main([*self.ARGS, "--json"]) == 0
        assert "health" not in json.loads(capsys.readouterr().out)

    def test_sweep_health_columns(self, capsys):
        code = main(["sweep", "--protocol", "pbft", "-n", "4", "--mean", "50",
                     "--std", "10", "--param", "lam", "--values", "400,800",
                     "--reps", "2", "--health"])
        assert code == 0
        out = capsys.readouterr().out
        assert "anomalies" in out and "min fairness" in out

    def test_inspect_health_text_and_json(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl.gz")
        assert main([*self.ARGS, "--health", "--trace-out", trace]) == 0
        capsys.readouterr()
        assert main(["inspect", trace, "--health"]) == 0
        assert "health:" in capsys.readouterr().out
        assert main(["inspect", trace, "--health", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["health"]["anomaly_count"] == 0
        assert data["health"]["samples"] > 0

    def test_inspect_without_flag_omits_health(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        assert main([*self.ARGS, "--health", "--trace-out", trace]) == 0
        capsys.readouterr()
        assert main(["inspect", trace, "--json"]) == 0
        assert "health" not in json.loads(capsys.readouterr().out)


class TestWatchCommand:
    def _store_with_run(self, tmp_path, *, health=True) -> str:
        store = str(tmp_path / "watch.sqlite")
        args = ["run", "--protocol", "pbft", "-n", "4", "--mean", "50",
                "--std", "10", "--lam", "500", "--store", store]
        if health:
            args.append("--health")
        assert main(args) == 0
        return store

    def test_watch_once_tails_the_latest_experiment(self, tmp_path, capsys):
        store = self._store_with_run(tmp_path)
        capsys.readouterr()
        assert main(["watch", store, "--once"]) == 0
        out = capsys.readouterr().out
        assert "experiment 1" in out
        assert "run 0" in out and "ok" in out
        assert "healthy" in out

    def test_watch_unmonitored_run_shows_no_health(self, tmp_path, capsys):
        store = self._store_with_run(tmp_path, health=False)
        capsys.readouterr()
        assert main(["watch", store, "--once"]) == 0
        out = capsys.readouterr().out
        assert "run 0" in out and "healthy" not in out

    def test_watch_explicit_experiment_id(self, tmp_path, capsys):
        store = self._store_with_run(tmp_path)
        capsys.readouterr()
        assert main(["watch", store, "--experiment", "1", "--once"]) == 0
        assert "experiment 1" in capsys.readouterr().out

    def test_watch_missing_store_fails_cleanly(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "nope.sqlite"), "--once"]) != 0

    def test_watch_empty_store_fails_cleanly(self, tmp_path, capsys):
        from repro.store import ExperimentStore

        store = str(tmp_path / "empty.sqlite")
        ExperimentStore(store).close()
        assert main(["watch", store, "--once"]) != 0
