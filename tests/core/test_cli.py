"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_protocols_and_attacks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("pbft", "hotstuff-ns", "add-v3", "partition", "failstop"):
            assert name in out


class TestRun:
    def test_run_summary(self, capsys):
        code = main(["run", "--protocol", "pbft", "-n", "4",
                     "--mean", "50", "--std", "10", "--lam", "500"])
        assert code == 0
        assert "pbft: terminated" in capsys.readouterr().out

    def test_run_json(self, capsys):
        code = main(["run", "--protocol", "pbft", "-n", "4",
                     "--mean", "50", "--std", "10", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["terminated"] is True
        assert data["messages"] > 0
        assert data["bytes_sent"] > 0
        assert "0" in data["decided_values"]

    def test_pipelined_default_decisions(self, capsys):
        main(["run", "--protocol", "hotstuff-ns", "-n", "4",
              "--mean", "50", "--std", "10", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert len(data["decided_values"]) >= 10

    def test_run_with_attack(self, capsys):
        code = main([
            "run", "--protocol", "pbft", "-n", "7", "--mean", "50", "--std", "10",
            "--attack", "failstop", "--attack-params", '{"nodes": [6]}', "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["faulty"] == [6]

    def test_run_config_file(self, tmp_path, capsys):
        from repro import SimulationConfig, NetworkConfig

        config = SimulationConfig(
            protocol="pbft", n=4, lam=500.0,
            network=NetworkConfig(mean=50.0, std=10.0),
        )
        path = tmp_path / "config.json"
        path.write_text(json.dumps(config.to_dict()))
        assert main(["run", "--config", str(path)]) == 0
        assert "terminated" in capsys.readouterr().out

    def test_unterminated_run_exit_code(self, capsys):
        code = main(["run", "--protocol", "pbft", "-n", "4",
                     "--mean", "50", "--std", "10", "--max-time", "1"])
        assert code == 2

    def test_unknown_protocol_is_an_error(self, capsys):
        code = main(["run", "--protocol", "nonsense"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestSweep:
    def test_sweep_lambda(self, capsys):
        code = main([
            "sweep", "--protocol", "pbft", "-n", "4", "--mean", "50", "--std", "10",
            "--param", "lam", "--values", "400,800", "--reps", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "400" in out and "800" in out
        assert "100%" in out

    def test_sweep_n(self, capsys):
        code = main([
            "sweep", "--protocol", "pbft", "--mean", "50", "--std", "10",
            "--param", "n", "--values", "4,7", "--reps", "1",
        ])
        assert code == 0

    def test_unsupported_parameter(self, capsys):
        code = main([
            "sweep", "--protocol", "pbft", "--param", "colour", "--values", "1",
        ])
        assert code == 1

    def test_sweep_parallel_jobs(self, capsys):
        """--jobs 2 must produce the same table a serial sweep does."""
        argv_tail = [
            "--protocol", "pbft", "-n", "4", "--mean", "50", "--std", "10",
            "--param", "lam", "--values", "400,800", "--reps", "4",
        ]
        assert main(["sweep", *argv_tail, "--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["sweep", *argv_tail, "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out
        assert "failed" in parallel_out  # failure column present
        assert " 0" in parallel_out

    def test_sweep_with_timeout_flag(self, capsys):
        code = main([
            "sweep", "--protocol", "pbft", "-n", "4", "--mean", "50",
            "--std", "10", "--param", "n", "--values", "4", "--reps", "2",
            "--jobs", "2", "--timeout", "120", "--retries", "0",
        ])
        assert code == 0


class TestValidate:
    def test_validate_matches(self, capsys):
        code = main([
            "validate", "--protocol", "pbft", "-n", "4",
            "--mean", "50", "--std", "10", "--decisions", "1",
        ])
        assert code == 0
        assert "MATCH" in capsys.readouterr().out


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
