"""Property-based tests for :class:`repro.core.events.EventQueue`.

The queue's contract is the bedrock of the determinism guarantee: events
pop in ``(time, insertion order)`` total order, so equal-time events are
FIFO and every run is a pure function of its configuration.  These tests
drive the queue through hundreds of randomly generated interleavings of
push / pop / cancel (seeded generator, so the suite itself is
deterministic) and compare against a reference model.

Uses ``hypothesis`` when installed for extra adversarial inputs; the
hand-rolled generator below runs everywhere.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import SchedulingError
from repro.core.events import Event, EventQueue


def reference_order(entries: list[tuple[float, int]]) -> list[int]:
    """Expected pop order: stable sort of (time, insertion seq)."""
    return [seq for _time, seq in sorted(entries, key=lambda e: (e[0], e[1]))]


def drain_handles(queue: EventQueue, pushed: dict[int, int]) -> list[int]:
    """Pop everything; map each popped event back to its insertion seq via
    its unique identity stored in ``pushed`` (id(event) -> seq)."""
    out = []
    while queue:
        out.append(pushed[id(queue.pop())])
    return out


@pytest.mark.parametrize("seed", range(50))
def test_random_interleavings_preserve_total_order(seed):
    """Arbitrary push/pop interleavings: the concatenation of everything
    popped equals the (time, seq) order of everything pushed."""
    rng = random.Random(seed)
    queue = EventQueue()
    pushed: dict[int, int] = {}
    live: list[tuple[float, int]] = []  # (time, seq) still in the queue
    popped: list[int] = []
    seq = 0
    for _step in range(rng.randrange(5, 120)):
        if live and rng.random() < 0.35:
            event = queue.pop()
            popped.append(pushed[id(event)])
            expected = min(live, key=lambda e: (e[0], e[1]))
            assert pushed[id(event)] == expected[1]
            live.remove(expected)
        else:
            # Coarse times force plenty of exact ties.
            time_ = float(rng.randrange(0, 8))
            event = Event(time=time_)
            queue.push(event)
            pushed[id(event)] = seq
            live.append((time_, seq))
            seq += 1
    popped.extend(drain_handles(queue, pushed))
    # Every popped prefix respected the total order at the moment of the
    # pop (asserted inline); the full sequence must contain every event.
    assert sorted(popped) == list(range(seq))
    assert len(queue) == 0


@pytest.mark.parametrize("seed", range(30))
def test_fifo_among_equal_times(seed):
    """All events at one timestamp pop in exact insertion order."""
    rng = random.Random(1000 + seed)
    queue = EventQueue()
    pushed: dict[int, int] = {}
    entries: list[tuple[float, int]] = []
    for seq in range(rng.randrange(2, 60)):
        time_ = float(rng.choice([0.0, 1.5, 1.5, 3.0]))  # heavy ties
        event = Event(time=time_)
        queue.push(event)
        pushed[id(event)] = seq
        entries.append((time_, seq))
    assert drain_handles(queue, pushed) == reference_order(entries)


@pytest.mark.parametrize("seed", range(30))
def test_cancellation_never_perturbs_survivors(seed):
    """Cancelling an arbitrary subset leaves the survivors' order intact."""
    rng = random.Random(2000 + seed)
    queue = EventQueue()
    pushed: dict[int, int] = {}
    entries: list[tuple[float, int]] = []
    handles: list[int] = []
    for seq in range(rng.randrange(2, 60)):
        time_ = float(rng.randrange(0, 5))
        event = Event(time=time_)
        handles.append(queue.push(event))
        pushed[id(event)] = seq
        entries.append((time_, seq))
    cancelled = {
        seq for seq in range(len(entries)) if rng.random() < 0.4
    }
    for seq in cancelled:
        queue.cancel(handles[seq])
        queue.cancel(handles[seq])  # double-cancel is a no-op
    survivors = [e for e in entries if e[1] not in cancelled]
    assert drain_handles(queue, pushed) == reference_order(survivors)
    assert len(queue) == 0


def test_cancel_after_pop_is_noop():
    """Regression: cancelling a handle whose event already popped is a no-op.

    Protocol code commonly pops a timer event and only later runs the
    cleanup that cancels the (now stale) handle; the queue must tolerate
    that instead of raising, and must not disturb any live entry."""
    queue = EventQueue()
    first, second = Event(time=1.0), Event(time=2.0)
    stale = queue.push(first)
    live = queue.push(second)
    assert queue.pop() is first
    queue.cancel(stale)  # already popped: must not raise
    queue.cancel(stale)  # idempotent
    assert queue.pop() is second
    queue.cancel(live)  # popped last: still a no-op on an empty queue
    queue.cancel(10_000)  # never-issued handle: equally ignored
    assert len(queue) == 0


@pytest.mark.parametrize("seed", range(20))
def test_stale_cancels_never_perturb_survivors(seed):
    """Random interleavings of push / pop / cancel where cancels may target
    already-popped (stale) or already-cancelled handles: stale cancels are
    no-ops and the survivors' pop order stays the reference order."""
    rng = random.Random(3000 + seed)
    queue = EventQueue()
    pushed: dict[int, int] = {}
    handles: dict[int, int] = {}  # seq -> handle
    live: list[tuple[float, int]] = []
    gone: list[int] = []  # seqs popped or cancelled (stale targets)
    seq = 0
    for _step in range(rng.randrange(10, 150)):
        choice = rng.random()
        if live and choice < 0.25:  # pop the minimum
            event = queue.pop()
            expected = min(live, key=lambda e: (e[0], e[1]))
            assert pushed[id(event)] == expected[1]
            live.remove(expected)
            gone.append(expected[1])
        elif live and choice < 0.40:  # cancel a live entry
            time_, victim = live.pop(rng.randrange(len(live)))
            queue.cancel(handles[victim])
            gone.append(victim)
        elif gone and choice < 0.55:  # stale cancel: popped or cancelled
            queue.cancel(handles[rng.choice(gone)])
        else:
            time_ = float(rng.randrange(0, 6))
            event = Event(time=time_)
            handles[seq] = queue.push(event)
            pushed[id(event)] = seq
            live.append((time_, seq))
            seq += 1
    assert drain_handles(queue, pushed) == reference_order(live)
    assert len(queue) == 0


def test_peek_time_matches_next_pop():
    rng = random.Random(99)
    queue = EventQueue()
    for _ in range(40):
        queue.push(Event(time=float(rng.randrange(0, 10))))
    while queue:
        peeked = queue.peek_time()
        assert queue.pop().time == peeked
    assert queue.peek_time() is None
    with pytest.raises(SchedulingError):
        queue.pop()


# -- hypothesis reinforcement (skipped cleanly when not installed) ----------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            st.booleans(),
        ),
        max_size=80,
    )
)
def test_hypothesis_pop_order_is_stable_sort(ops):
    """For arbitrary float times (including ties), pop order is exactly a
    stable sort by time, and cancelled entries never surface."""
    queue = EventQueue()
    pushed: dict[int, int] = {}
    survivors: list[tuple[float, int]] = []
    for seq, (time_, cancel) in enumerate(ops):
        event = Event(time=time_)
        handle = queue.push(event)
        pushed[id(event)] = seq
        if cancel:
            queue.cancel(handle)
        else:
            survivors.append((time_, seq))
    assert len(queue) == len(survivors)
    assert drain_handles(queue, pushed) == reference_order(survivors)
