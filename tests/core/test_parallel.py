"""Tests for the parallel experiment engine.

Covers the determinism contract (serial and parallel batches are
field-identical apart from ``wall_clock_seconds``), deterministic result
ordering, failure isolation (simulation errors, killed workers, hung
workers), retry accounting, progress reporting, and the picklable result
contract.

The crash-test protocols below register under underscore-prefixed names;
the golden determinism suite skips those by convention.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro import (
    ParallelRunner,
    ProgressUpdate,
    RunFailure,
    repeat_simulation,
    result_fingerprint,
    run_simulation,
)
from repro.core.errors import ConfigurationError, ExperimentFailureError
from repro.core.runner import sweep
from repro.protocols.base import BFTProtocol
from repro.protocols.registry import register_protocol

from tests.conftest import quick_config


def _register_crash_protocols() -> None:
    """Idempotently register the misbehaving protocols used below.

    They are inherited by fork-started workers, so a worker process runs
    them exactly as the parent would.
    """
    try:
        @register_protocol("_test-raise")
        class RaisingProtocol(BFTProtocol):
            """Raises inside a protocol hook — a deterministic failure."""

            def on_start(self) -> None:
                raise RuntimeError("injected failure in on_start")

        @register_protocol("_test-kill")
        class KilledProtocol(BFTProtocol):
            """Kills its own worker process mid-run — a crash failure."""

            def on_start(self) -> None:
                os._exit(42)

        @register_protocol("_test-hang")
        class HangingProtocol(BFTProtocol):
            """Blocks forever — a timeout failure."""

            def on_start(self) -> None:
                time.sleep(600)
    except ConfigurationError:
        pass  # already registered by a previous import of this module


_register_crash_protocols()


def fingerprints(entries) -> list[str]:
    return [result_fingerprint(r) for r in entries]


class TestUnlistedRegistration:
    def test_crash_doubles_resolvable_but_unlisted(self):
        """Underscore-named protocols must stay out of every enumeration
        (protocol matrices, CLI listing, golden table) while remaining
        usable from explicit configurations."""
        from repro import available_protocols, get_protocol

        listed = available_protocols()
        assert "_test-raise" not in listed
        assert "_test-kill" not in listed
        assert "_test-hang" not in listed
        assert get_protocol("_test-raise").protocol_name == "_test-raise"


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("protocol", ["pbft", "hotstuff-ns", "algorand"])
    def test_repeat_jobs4_equals_jobs1(self, protocol):
        """The acceptance contract: jobs=1 and jobs=4 produce
        field-identical result lists for the same config."""
        config = quick_config(protocol=protocol, seed=11)
        serial = repeat_simulation(config, 8, jobs=1)
        parallel = repeat_simulation(config, 8, jobs=4)
        assert len(parallel) == 8
        assert fingerprints(serial) == fingerprints(parallel)
        for s, p in zip(serial, parallel):
            assert s.config == p.config
            assert s.latency == p.latency
            assert s.messages == p.messages
            assert s.counts == p.counts
            assert s.decisions == p.decisions
            assert s.decided_values == p.decided_values
            assert s.faulty == p.faulty
            assert s.events_processed == p.events_processed
            assert s.max_view == p.max_view
            assert s.terminated == p.terminated

    def test_traces_identical_too(self):
        config = quick_config(seed=3, record_trace=True)
        serial = repeat_simulation(config, 3, jobs=1)
        parallel = repeat_simulation(config, 3, jobs=3)
        for s, p in zip(serial, parallel):
            assert s.trace.to_jsonl() == p.trace.to_jsonl()

    def test_results_in_seed_order_regardless_of_completion(self):
        """Mix slow (large) and fast (small) configs: output order must be
        input order, not completion order."""
        configs = [
            quick_config(n=16, seed=50),  # slowest first
            quick_config(n=4, seed=51),
            quick_config(n=7, seed=52),
            quick_config(n=4, seed=53),
        ]
        out = ParallelRunner(jobs=4).map(configs)
        assert [r.config.n for r in out] == [16, 4, 7, 4]
        assert [r.config.seed for r in out] == [50, 51, 52, 53]
        assert fingerprints(out) == [
            result_fingerprint(run_simulation(c)) for c in configs
        ]

    def test_sweep_jobs_equals_serial(self):
        variations = [{"n": 4}, {"n": 7}]
        serial = sweep(quick_config(seed=9), variations, repetitions=2, jobs=1)
        parallel = sweep(quick_config(seed=9), variations, repetitions=2, jobs=4)
        assert [[f for f in fingerprints(g)] for g in serial] == [
            [f for f in fingerprints(g)] for g in parallel
        ]
        assert parallel[0][0].config.n == 4
        assert parallel[1][0].config.n == 7

    def test_empty_map(self):
        assert ParallelRunner(jobs=2).map([]) == []


class TestFailureIsolation:
    def test_simulation_error_becomes_run_failure(self):
        """A config that raises in a protocol hook yields a RunFailure and
        does not abort the remaining runs (the acceptance criterion)."""
        configs = [
            quick_config(seed=1),
            quick_config(protocol="_test-raise", seed=2),
            quick_config(seed=3),
        ]
        out = ParallelRunner(jobs=2).map(configs)
        assert out[0].terminated and out[2].terminated
        failure = out[1]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "error"
        assert failure.error_type == "RuntimeError"
        assert "injected failure in on_start" in failure.message
        assert "on_start" in failure.traceback
        assert failure.run_index == 1
        assert failure.config.seed == 2
        assert failure.attempts == 1, "deterministic errors are not retried"

    def test_killed_worker_is_retried_then_recorded(self):
        configs = [quick_config(protocol="_test-kill", seed=1), quick_config(seed=2)]
        out = ParallelRunner(jobs=2, retries=2).map(configs)
        failure = out[0]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "crash"
        assert failure.attempts == 3, "initial attempt + 2 retries"
        assert out[1].terminated, "the healthy run must survive the crashes"

    def test_hung_worker_times_out(self):
        configs = [quick_config(protocol="_test-hang", seed=1), quick_config(seed=2)]
        started = time.monotonic()
        out = ParallelRunner(jobs=2, timeout=0.5, retries=0).map(configs)
        elapsed = time.monotonic() - started
        failure = out[0]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "timeout"
        assert out[1].terminated
        assert elapsed < 30, "the hung worker must be killed, not awaited"

    def test_on_error_raise_after_batch(self):
        with pytest.raises(ExperimentFailureError) as excinfo:
            repeat_simulation(quick_config(protocol="_test-raise"), 2, jobs=2)
        assert len(excinfo.value.failures) == 2
        assert all(f.kind == "error" for f in excinfo.value.failures)

    def test_serial_on_error_record_matches_parallel(self):
        config = quick_config(protocol="_test-raise", seed=5)
        serial = repeat_simulation(config, 2, jobs=1, on_error="record")
        parallel = repeat_simulation(config, 2, jobs=2, on_error="record")
        for s, p in zip(serial, parallel):
            assert isinstance(s, RunFailure) and isinstance(p, RunFailure)
            assert (s.kind, s.error_type, s.message, s.run_index) == (
                p.kind, p.error_type, p.message, p.run_index
            )

    def test_serial_on_error_raise_propagates(self):
        with pytest.raises(RuntimeError):
            repeat_simulation(quick_config(protocol="_test-raise"), 1, jobs=1)


class TestProgressAndOptions:
    def test_progress_callback_counts(self):
        updates: list[ProgressUpdate] = []
        out = repeat_simulation(
            quick_config(seed=1), 4, jobs=2, progress=updates.append
        )
        assert len(updates) == 4
        final = updates[-1]
        assert (final.total, final.completed, final.failed) == (4, 4, 0)
        assert final.done == 4
        assert final.sim_time_ms == pytest.approx(sum(r.latency for r in out))
        assert final.elapsed_seconds > 0
        assert "4/4 done" in final.summary()

    def test_progress_counts_failures(self):
        updates: list[ProgressUpdate] = []
        ParallelRunner(jobs=2, progress=updates.append).map(
            [quick_config(seed=1), quick_config(protocol="_test-raise", seed=2)]
        )
        final = updates[-1]
        assert final.completed == 1 and final.failed == 1
        assert "(1 failed)" in final.summary()

    def test_callback_invoked_in_order_with_jobs(self):
        seen: list[int] = []
        repeat_simulation(
            quick_config(), 4, callback=lambda i, r: seen.append(i), jobs=2
        )
        assert seen == [0, 1, 2, 3]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 0},
            {"jobs": -1},
            {"timeout": 0},
            {"timeout": -1.0},
            {"retries": -1},
            {"on_error": "ignore"},
        ],
    )
    def test_invalid_batch_options_rejected(self, kwargs):
        with pytest.raises(ValueError):
            repeat_simulation(quick_config(), 1, **kwargs)

    @pytest.mark.parametrize(
        "kwargs", [{"jobs": 0}, {"timeout": -2}, {"retries": -1}]
    )
    def test_runner_rejects_invalid_options(self, kwargs):
        with pytest.raises(ValueError):
            ParallelRunner(**kwargs)

    def test_timeout_with_single_job_uses_engine(self):
        """jobs=1 plus a timeout still protects against hangs."""
        out = repeat_simulation(
            quick_config(protocol="_test-hang"), 1,
            jobs=1, timeout=0.5, retries=0, on_error="record",
        )
        assert isinstance(out[0], RunFailure)
        assert out[0].kind == "timeout"


class TestPicklableContract:
    def test_result_round_trips_through_pickle(self):
        result = run_simulation(quick_config(seed=4, record_trace=True))
        clone = pickle.loads(pickle.dumps(result))
        assert result_fingerprint(clone, include_trace=True) == result_fingerprint(
            result, include_trace=True
        )
        assert clone.trace.to_jsonl() == result.trace.to_jsonl()

    def test_failure_round_trips_through_pickle(self):
        failure = RunFailure(
            config=quick_config(),
            kind="crash",
            error_type="crash",
            message="worker died",
            run_index=3,
            attempts=2,
        )
        clone = pickle.loads(pickle.dumps(failure))
        assert clone == failure
        assert "FAILED (crash)" in clone.summary()

    def test_fingerprint_ignores_wall_clock(self):
        result = run_simulation(quick_config(seed=8))
        slower = pickle.loads(pickle.dumps(result))
        slower.wall_clock_seconds = result.wall_clock_seconds + 1.0
        assert result_fingerprint(slower) == result_fingerprint(result)
