"""Tests for the controller: dispatch, termination, failure modes."""

from __future__ import annotations

import pytest

from repro import Controller, SimulationConfig, run_simulation
from repro.core.errors import ConfigurationError, LivenessTimeoutError

from tests.conftest import quick_config


class TestConstruction:
    def test_resolves_default_f(self):
        controller = Controller(quick_config(n=16))
        assert controller.f == 5  # pbft: floor((16-1)/3)

    def test_explicit_f_respected(self):
        controller = Controller(quick_config(n=16, f=2))
        assert controller.f == 2

    def test_excessive_f_rejected(self):
        with pytest.raises(ConfigurationError):
            Controller(quick_config(n=16, f=6))  # pbft tolerates at most 5

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            Controller(quick_config(protocol="no-such-protocol"))

    def test_nodes_created(self):
        controller = Controller(quick_config(n=7))
        assert len(controller.nodes) == 7
        assert [node.id for node in controller.nodes] == list(range(7))


class TestRun:
    def test_happy_path_terminates(self):
        result = Controller(quick_config()).run()
        assert result.terminated
        assert result.latency > 0
        assert result.decided_values.keys() == {0}

    def test_all_honest_nodes_decide_before_termination(self):
        result = run_simulation(quick_config(n=7))
        deciders = {d.node for d in result.decisions}
        assert deciders == set(range(7))

    def test_horizon_raises_without_allow(self):
        # An impossible deadline: the first message cannot even arrive.
        config = quick_config(max_time=0.5)
        with pytest.raises(LivenessTimeoutError):
            Controller(config).run()

    def test_horizon_allowed_returns_unterminated(self):
        config = quick_config(max_time=0.5, allow_horizon=True)
        result = Controller(config).run()
        assert not result.terminated
        assert result.latency == 0.5

    def test_max_events_guard(self):
        config = quick_config(max_events=10, allow_horizon=True)
        result = Controller(config).run()
        assert not result.terminated
        assert result.events_processed == 10

    def test_wall_clock_measured(self):
        result = Controller(quick_config()).run()
        assert result.wall_clock_seconds > 0

    def test_trace_disabled_by_default(self):
        result = Controller(quick_config()).run()
        assert len(result.trace) == 0

    def test_trace_enabled_records(self):
        result = Controller(quick_config(record_trace=True)).run()
        assert len(result.trace.events(kind="decide")) > 0
        assert len(result.trace.events(kind="send")) > 0
        assert len(result.trace.events(kind="deliver")) > 0


class TestEnvironmentFacade:
    def test_protocol_params_exposed(self):
        config = quick_config(protocol_params={"key": 42})
        controller = Controller(config)
        assert controller.protocol_param("key") == 42
        assert controller.protocol_param("missing", "default") == "default"

    def test_seed_exposed(self):
        assert Controller(quick_config(seed=123)).seed == 123

    def test_shared_rng_cached(self):
        controller = Controller(quick_config())
        assert controller.shared_rng("x") is controller.shared_rng("x")

    def test_negative_timer_rejected(self):
        controller = Controller(quick_config())
        with pytest.raises(ConfigurationError):
            controller.register_timer(0, -1.0, "bad", None)

    def test_timer_cancellation(self):
        controller = Controller(quick_config())
        before = len(controller.queue)
        handle = controller.register_timer(0, 10.0, "t", None)
        controller.cancel_timer(handle)
        assert len(controller.queue) == before


class TestHaltedNodes:
    def test_result_summary_mentions_protocol(self):
        result = Controller(quick_config()).run()
        assert "pbft" in result.summary()

    def test_message_usage_excludes_loopback(self):
        """A broadcast from one of n nodes transmits n-1 messages."""
        result = Controller(quick_config(n=4, record_trace=True)).run()
        sends = result.trace.events(kind="send")
        # No send event may target its own source (loopbacks bypass the wire).
        assert all(e.fields["dest"] != e.node for e in sends)
        assert result.messages == len(sends)


class TestStopReasons:
    """LivenessTimeoutError must say *why* the run stopped — the error is
    the only diagnostic a caller gets when the watchdog is disabled."""

    def test_horizon_reason_in_error(self):
        config = quick_config(max_time=0.5)
        with pytest.raises(LivenessTimeoutError, match=r"horizon max_time=0\.5"):
            Controller(config).run()

    def test_max_events_reason_in_error(self):
        config = quick_config(max_events=10)
        with pytest.raises(LivenessTimeoutError, match="max_events=10 reached"):
            Controller(config).run()

    def test_error_reports_per_node_decision_counts(self):
        config = quick_config(max_time=0.5)
        with pytest.raises(LivenessTimeoutError, match="decisions"):
            Controller(config).run()
