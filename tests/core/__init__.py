"""Test package."""
