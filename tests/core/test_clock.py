"""Tests for the simulation clock."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.clock import SimulationClock
from repro.core.errors import SchedulingError


def test_starts_at_zero():
    assert SimulationClock().now == 0.0


def test_custom_start():
    assert SimulationClock(start=42.5).now == 42.5


def test_advances_forward():
    clock = SimulationClock()
    clock.advance_to(10.0)
    assert clock.now == 10.0
    clock.advance_to(10.0)  # standing still is allowed
    assert clock.now == 10.0


def test_refuses_to_go_backwards():
    clock = SimulationClock()
    clock.advance_to(5.0)
    with pytest.raises(SchedulingError):
        clock.advance_to(4.999)


def test_repr_mentions_time():
    clock = SimulationClock(start=1.5)
    assert "1.5" in repr(clock)


@given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=50))
def test_property_monotone_under_sorted_advances(times):
    clock = SimulationClock()
    for t in sorted(times):
        clock.advance_to(t)
    assert clock.now == max(times)
