"""Golden determinism regression tests.

Every registered protocol runs one small fixed-seed configuration; the
digest of the run's deterministic fields (decisions, decided values, event
counts, final view, message counts, latency) must match a checked-in golden
value.  Any change to these digests means a behavioural change to the
simulator: either an intended protocol/engine change (regenerate the table
below and say so in the commit) or — the case this suite exists to catch —
accidental nondeterminism introduced by a refactor, the parallel engine, or
an environment difference.

Regenerate with::

    PYTHONPATH=src python -c "
    from tests.core.test_golden_determinism import golden_config, GOLDEN
    from repro import run_simulation, result_fingerprint
    for mode in ('full', 'tree', 'gossip'):
        for name in sorted(GOLDEN):
            print(mode, name,
                  result_fingerprint(run_simulation(golden_config(name, mode))))"
"""

from __future__ import annotations

import pytest

from repro import (
    NetworkConfig,
    SimulationConfig,
    available_protocols,
    get_protocol,
    result_fingerprint,
    run_simulation,
)
from repro.protocols.base import SYNCHRONOUS

#: protocol name -> fingerprint of the golden run's deterministic fields.
#: These digests predate the dissemination overlays (PR-6) and must stay
#: byte-identical under the default ``dissemination="full"`` — the overlay
#: machinery is opt-in and the full path is the seed's broadcast expansion.
GOLDEN: dict[str, str] = {
    "add-v1": "51608836f1d6e406fb8ba50e3fb338b9f5ca35410d846c90a24f61af05676d88",
    "add-v2": "7bf6db419e615b7e367217aeafca93a459d58e0a889afae53b9b8f32a4503eef",
    "add-v3": "aea4e0207552dce3909bae96a1e9eee6dbef7ce2503a946ca4e1fe1fee934626",
    "algorand": "47ea4567dc6a25b17f480aa46436ac1be1cbd54c817268b66ca4a19f0855c975",
    "async-ba": "4827a45a415c100cec232f1c70fb521187372e74ac50e8471369fcc3dde6d58c",
    "hotstuff-ns": "d5fc15769f311255969b93722d25d3029d7b13a34c8acaa2151a4f6ae4b0373e",
    "librabft": "b0fce4d7aacff125727f0f23f9aaf8650b9aba82cd329d2422435c36a57097b7",
    "pbft": "827e13153b68927427b47477ea381a4393846a1d647980bf33892442b244b866",
    "tendermint": "a7bd87e89c70b3f8c2e7c3187270d40e90d4aaf0569f3991731a39662960155b",
}

#: Same configuration, ``dissemination="tree"``.  Tree relays reshape delay
#: draws (one batch from the ``network.dissemination`` substream instead of
#: per-recipient draws from the transit stream), so these digests differ
#: from GOLDEN by design; what they pin down is that the overlay itself is
#: deterministic.
TREE_GOLDEN: dict[str, str] = {
    "add-v1": "38cef6859e8c58599477ddd5bc955cc663958d2f11f327d5c7f015f25e582349",
    "add-v2": "2239149f9109630813e433b73b96109b93d8927c710064c05b6d31cbbc6aba40",
    "add-v3": "a4eb9e42f7c653a2a86990ed0157a50f02a38317047e57147876efca813adcaf",
    "algorand": "bf8d4fff4c7c6099b70fb00efb255625247ef04d4a5778d51abe5429b199f2c2",
    "async-ba": "440025d0b236240704a0abde3004b08c08de4019b25917d2a78ad58641eded05",
    "hotstuff-ns": "643fea9420d519c6be6f284d806efaff6b979ac8dca89d03fef1de75aa4770f2",
    "librabft": "cde31d67bf509009982c81a873802bf590e2a0d0991d83ad2c9602f67cba5501",
    "pbft": "60eaead7d3cd0022d40c5fb38a86bce441a95f1df7b76e2b37aa4746c5ac2b4f",
    "tendermint": "86ef1cc6f0f27597f9e5f16c44c4fbdcfbe28a6f7c34cba8c9a61aa487fe60c1",
}

#: Same configuration, ``dissemination="gossip"`` (auto fanout).  The gossip
#: overlay additionally consumes the ``network.gossip`` substream for its
#: per-broadcast permutation.
GOSSIP_GOLDEN: dict[str, str] = {
    "add-v1": "dff7d7457e528a20f434fae4937c0a1cd4bde9a504f021b11745755d48842c96",
    "add-v2": "5cee020462913f85b516d0638aae1a996c4ba4b6625f616fe55a6bc6d5e34b82",
    "add-v3": "c7a1f49d0496768452772e387db10e2305b86b2fbc2341b24368b1e3a1e6963e",
    "algorand": "f484f1761bb717c08efb3738c5f7f9f5eae37ddc4973a5e7ee02c7ec4cea542b",
    "async-ba": "34de8e150f3246d8817e5b115a29ba092ad651a4fb32e2e7885dd030d71d6263",
    "hotstuff-ns": "02e851abf664bcf86ccb427f1618f45b5b4a99f74f6dc90f22f92d385db3e822",
    "librabft": "17733648e0aad205b30f50768e2415840183de6ac010f4c1750c0a24e17657bf",
    "pbft": "af9a7c455da34ecdc3c3152ea8f5d795b77c705a38783b6dcbb41e6f714f0334",
    "tendermint": "05a61f6c332355d2a662aeaaf9aa8368ea5422858dba882ad5fa7adfc571249e",
}

_MODE_GOLDEN: dict[str, dict[str, str]] = {
    "full": GOLDEN,
    "tree": TREE_GOLDEN,
    "gossip": GOSSIP_GOLDEN,
}


def golden_config(protocol: str, dissemination: str = "full") -> SimulationConfig:
    """The fixed configuration behind each golden digest."""
    lam = 500.0
    max_delay = (
        0.99 * lam
        if get_protocol(protocol).network_model == SYNCHRONOUS
        else None
    )
    return SimulationConfig(
        protocol=protocol,
        n=4,
        lam=lam,
        network=NetworkConfig(
            mean=50.0, std=10.0, max_delay=max_delay, dissemination=dissemination
        ),
        num_decisions=1,
        seed=2022,
    )


def test_every_builtin_protocol_has_a_golden_digest():
    """New protocols must be added to the golden table.  Underscore-named
    crash-test doubles registered by other test modules are unlisted by the
    registry itself, so they never appear here."""
    assert sorted(GOLDEN) == available_protocols()


@pytest.mark.parametrize("mode", sorted(_MODE_GOLDEN))
def test_mode_golden_covers_every_protocol(mode):
    assert sorted(_MODE_GOLDEN[mode]) == available_protocols()


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
@pytest.mark.parametrize("mode", sorted(_MODE_GOLDEN))
def test_golden_digest(protocol, mode):
    result = run_simulation(golden_config(protocol, mode))
    assert result.terminated, f"{protocol}/{mode} golden run must terminate"
    assert result_fingerprint(result) == _MODE_GOLDEN[mode][protocol], (
        f"{protocol}/{mode}: deterministic output changed; if intentional, "
        "regenerate the golden table (see module docstring)"
    )


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_golden_digest_stable_across_reruns(protocol):
    config = golden_config(protocol)
    first = result_fingerprint(run_simulation(config))
    second = result_fingerprint(run_simulation(config))
    assert first == second


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_explicit_full_dissemination_matches_seed_golden(protocol):
    """``dissemination="full", fanout=0`` is the default: spelling it out
    must not perturb the fingerprint (the config serializer strips default
    dissemination fields so pre-overlay fingerprints stay comparable)."""
    config = golden_config(protocol, "full")
    assert config.network.dissemination == "full"
    assert config.network.fanout == 0
    result = run_simulation(config)
    assert result_fingerprint(result) == GOLDEN[protocol]
