"""Golden determinism regression tests.

Every registered protocol runs one small fixed-seed configuration; the
digest of the run's deterministic fields (decisions, decided values, event
counts, final view, message counts, latency) must match a checked-in golden
value.  Any change to these digests means a behavioural change to the
simulator: either an intended protocol/engine change (regenerate the table
below and say so in the commit) or — the case this suite exists to catch —
accidental nondeterminism introduced by a refactor, the parallel engine, or
an environment difference.

Regenerate with::

    PYTHONPATH=src python -c "
    from tests.core.test_golden_determinism import golden_config, GOLDEN
    from repro import run_simulation, result_fingerprint
    for name in sorted(GOLDEN):
        print(name, result_fingerprint(run_simulation(golden_config(name))))"
"""

from __future__ import annotations

import pytest

from repro import (
    NetworkConfig,
    SimulationConfig,
    available_protocols,
    get_protocol,
    result_fingerprint,
    run_simulation,
)
from repro.protocols.base import SYNCHRONOUS

#: protocol name -> fingerprint of the golden run's deterministic fields.
GOLDEN: dict[str, str] = {
    "add-v1": "51608836f1d6e406fb8ba50e3fb338b9f5ca35410d846c90a24f61af05676d88",
    "add-v2": "7bf6db419e615b7e367217aeafca93a459d58e0a889afae53b9b8f32a4503eef",
    "add-v3": "aea4e0207552dce3909bae96a1e9eee6dbef7ce2503a946ca4e1fe1fee934626",
    "algorand": "47ea4567dc6a25b17f480aa46436ac1be1cbd54c817268b66ca4a19f0855c975",
    "async-ba": "4827a45a415c100cec232f1c70fb521187372e74ac50e8471369fcc3dde6d58c",
    "hotstuff-ns": "d5fc15769f311255969b93722d25d3029d7b13a34c8acaa2151a4f6ae4b0373e",
    "librabft": "b0fce4d7aacff125727f0f23f9aaf8650b9aba82cd329d2422435c36a57097b7",
    "pbft": "827e13153b68927427b47477ea381a4393846a1d647980bf33892442b244b866",
    "tendermint": "a7bd87e89c70b3f8c2e7c3187270d40e90d4aaf0569f3991731a39662960155b",
}


def golden_config(protocol: str) -> SimulationConfig:
    """The fixed configuration behind each golden digest."""
    lam = 500.0
    max_delay = (
        0.99 * lam
        if get_protocol(protocol).network_model == SYNCHRONOUS
        else None
    )
    return SimulationConfig(
        protocol=protocol,
        n=4,
        lam=lam,
        network=NetworkConfig(mean=50.0, std=10.0, max_delay=max_delay),
        num_decisions=1,
        seed=2022,
    )


def test_every_builtin_protocol_has_a_golden_digest():
    """New protocols must be added to the golden table.  Underscore-named
    crash-test doubles registered by other test modules are unlisted by the
    registry itself, so they never appear here."""
    assert sorted(GOLDEN) == available_protocols()


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_golden_digest(protocol):
    result = run_simulation(golden_config(protocol))
    assert result.terminated, f"{protocol} golden run must terminate"
    assert result_fingerprint(result) == GOLDEN[protocol], (
        f"{protocol}: deterministic output changed; if intentional, "
        "regenerate the GOLDEN table (see module docstring)"
    )


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_golden_digest_stable_across_reruns(protocol):
    config = golden_config(protocol)
    first = result_fingerprint(run_simulation(config))
    second = result_fingerprint(run_simulation(config))
    assert first == second
