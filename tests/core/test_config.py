"""Tests for configuration validation and serialization."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import AttackConfig, NetworkConfig, SimulationConfig
from repro.core.errors import ConfigurationError


class TestValidation:
    def test_minimal_valid(self):
        config = SimulationConfig(protocol="pbft")
        assert config.n == 16
        assert config.f is None

    def test_empty_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(protocol="")

    @pytest.mark.parametrize("n", [0, -1])
    def test_bad_n_rejected(self, n):
        with pytest.raises(ConfigurationError):
            SimulationConfig(protocol="pbft", n=n)

    @pytest.mark.parametrize("f", [-1, 16, 20])
    def test_bad_f_rejected(self, f):
        with pytest.raises(ConfigurationError):
            SimulationConfig(protocol="pbft", n=16, f=f)

    def test_bad_lambda_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(protocol="pbft", lam=0.0)

    def test_bad_decisions_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(protocol="pbft", num_decisions=0)

    def test_network_validation_propagates(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(protocol="pbft", network=NetworkConfig(mean=-5.0))

    def test_min_delay_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(min_delay=0.0).validate()

    def test_max_delay_below_min_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(min_delay=10.0, max_delay=5.0).validate()

    def test_pre_gst_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(gst=100.0, pre_gst_factor=0.5).validate()


class TestSerialization:
    def test_dict_roundtrip(self):
        config = SimulationConfig(
            protocol="hotstuff-ns",
            n=8,
            f=2,
            lam=750.0,
            network=NetworkConfig(mean=100.0, std=20.0, max_delay=500.0),
            attack=AttackConfig(name="failstop", params={"count": 2}),
            num_decisions=10,
            seed=99,
            protocol_params={"synchronizer": "view-indexed"},
        )
        assert SimulationConfig.from_dict(config.to_dict()) == config

    def test_json_roundtrip(self):
        config = SimulationConfig(protocol="pbft", seed=5)
        assert SimulationConfig.from_json(config.to_json()) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig.from_dict({"protocol": "pbft", "bogus": 1})

    def test_replace_shallow(self):
        config = SimulationConfig(protocol="pbft", seed=1)
        changed = config.replace(seed=2)
        assert changed.seed == 2
        assert config.seed == 1  # original untouched

    def test_replace_nested_network(self):
        config = SimulationConfig(protocol="pbft")
        changed = config.replace(network={"mean": 777.0})
        assert changed.network.mean == 777.0
        assert changed.network.std == config.network.std  # merged, not replaced

    def test_replace_nested_attack(self):
        config = SimulationConfig(protocol="pbft")
        changed = config.replace(attack={"name": "partition"})
        assert changed.attack.name == "partition"

    def test_replace_with_config_objects(self):
        config = SimulationConfig(protocol="pbft")
        changed = config.replace(network=NetworkConfig(mean=1.0, std=0.0))
        assert changed.network.mean == 1.0


@given(
    n=st.integers(min_value=1, max_value=100),
    lam=st.floats(min_value=1.0, max_value=1e5),
    seed=st.integers(min_value=0, max_value=2**31),
    decisions=st.integers(min_value=1, max_value=50),
)
def test_property_roundtrip(n, lam, seed, decisions):
    config = SimulationConfig(
        protocol="pbft", n=n, lam=lam, seed=seed, num_decisions=decisions
    )
    assert SimulationConfig.from_json(config.to_json()) == config
