"""Unit and property tests for the event queue."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import SchedulingError
from repro.core.events import EventQueue, TimeEvent


def timer(time: float, name: str = "t") -> TimeEvent:
    return TimeEvent(time=time, owner=0, name=name, data=None, timer_id=0)


class TestEventQueueBasics:
    def test_empty_queue_is_falsy(self):
        assert not EventQueue()
        assert len(EventQueue()) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SchedulingError):
            EventQueue().push(timer(-1.0))

    def test_pops_in_time_order(self):
        queue = EventQueue()
        for t in (5.0, 1.0, 3.0, 2.0, 4.0):
            queue.push(timer(t))
        assert [queue.pop().time for _ in range(5)] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        queue.push(timer(1.0, "first"))
        queue.push(timer(1.0, "second"))
        queue.push(timer(1.0, "third"))
        assert [queue.pop().name for _ in range(3)] == ["first", "second", "third"]

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(timer(7.0))
        queue.push(timer(3.0))
        assert queue.peek_time() == 3.0
        assert len(queue) == 2  # peek does not consume

    def test_len_tracks_pushes_and_pops(self):
        queue = EventQueue()
        handles = [queue.push(timer(float(i))) for i in range(4)]
        assert len(queue) == 4
        queue.pop()
        assert len(queue) == 3
        queue.cancel(handles[2])
        assert len(queue) == 2


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        queue.push(timer(1.0, "keep"))
        handle = queue.push(timer(2.0, "drop"))
        queue.push(timer(3.0, "keep2"))
        queue.cancel(handle)
        assert [queue.pop().name for _ in range(2)] == ["keep", "keep2"]
        assert not queue

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        handle = queue.push(timer(1.0))
        queue.cancel(handle)
        queue.cancel(handle)
        assert not queue

    def test_cancel_after_pop_is_noop(self):
        queue = EventQueue()
        handle = queue.push(timer(1.0))
        other = queue.push(timer(2.0))
        queue.pop()
        queue.cancel(handle)  # already popped
        assert len(queue) == 1
        assert queue.pop().time == 2.0

    def test_cancel_head_updates_peek(self):
        queue = EventQueue()
        head = queue.push(timer(1.0))
        queue.push(timer(5.0))
        queue.cancel(head)
        assert queue.peek_time() == 5.0


class TestDrain:
    def test_drain_yields_everything_in_order(self):
        queue = EventQueue()
        for t in (3.0, 1.0, 2.0):
            queue.push(timer(t))
        assert [e.time for e in queue.drain()] == [1.0, 2.0, 3.0]
        assert not queue


@given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=200))
def test_property_pops_sorted(times):
    queue = EventQueue()
    for t in times:
        queue.push(timer(t))
    popped = [queue.pop().time for _ in range(len(times))]
    assert popped == sorted(times)


@given(
    st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100),
    st.data(),
)
def test_property_cancel_subset(times, data):
    """Cancelling any subset leaves exactly the complement, still sorted."""
    queue = EventQueue()
    handles = [queue.push(timer(t, name=str(i))) for i, t in enumerate(times)]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(times) - 1), max_size=len(times))
    )
    for index in to_cancel:
        queue.cancel(handles[index])
    remaining = sorted(
        (times[i] for i in range(len(times)) if i not in to_cancel)
    )
    popped = [queue.pop().time for _ in range(len(queue))]
    assert popped == remaining
