"""Unit and property tests for the event queue."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import SchedulingError
from repro.core.events import EventQueue, TimeEvent


def timer(time: float, name: str = "t") -> TimeEvent:
    return TimeEvent(time=time, owner=0, name=name, data=None, timer_id=0)


class TestEventQueueBasics:
    def test_empty_queue_is_falsy(self):
        assert not EventQueue()
        assert len(EventQueue()) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SchedulingError):
            EventQueue().push(timer(-1.0))

    def test_pops_in_time_order(self):
        queue = EventQueue()
        for t in (5.0, 1.0, 3.0, 2.0, 4.0):
            queue.push(timer(t))
        assert [queue.pop().time for _ in range(5)] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        queue.push(timer(1.0, "first"))
        queue.push(timer(1.0, "second"))
        queue.push(timer(1.0, "third"))
        assert [queue.pop().name for _ in range(3)] == ["first", "second", "third"]

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(timer(7.0))
        queue.push(timer(3.0))
        assert queue.peek_time() == 3.0
        assert len(queue) == 2  # peek does not consume

    def test_len_tracks_pushes_and_pops(self):
        queue = EventQueue()
        handles = [queue.push(timer(float(i))) for i in range(4)]
        assert len(queue) == 4
        queue.pop()
        assert len(queue) == 3
        queue.cancel(handles[2])
        assert len(queue) == 2


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        queue.push(timer(1.0, "keep"))
        handle = queue.push(timer(2.0, "drop"))
        queue.push(timer(3.0, "keep2"))
        queue.cancel(handle)
        assert [queue.pop().name for _ in range(2)] == ["keep", "keep2"]
        assert not queue

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        handle = queue.push(timer(1.0))
        queue.cancel(handle)
        queue.cancel(handle)
        assert not queue

    def test_cancel_after_pop_is_noop(self):
        queue = EventQueue()
        handle = queue.push(timer(1.0))
        other = queue.push(timer(2.0))
        queue.pop()
        queue.cancel(handle)  # already popped
        assert len(queue) == 1
        assert queue.pop().time == 2.0

    def test_cancel_head_updates_peek(self):
        queue = EventQueue()
        head = queue.push(timer(1.0))
        queue.push(timer(5.0))
        queue.cancel(head)
        assert queue.peek_time() == 5.0


class TestDrain:
    def test_drain_yields_everything_in_order(self):
        queue = EventQueue()
        for t in (3.0, 1.0, 2.0):
            queue.push(timer(t))
        assert [e.time for e in queue.drain()] == [1.0, 2.0, 3.0]
        assert not queue


@given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=200))
def test_property_pops_sorted(times):
    queue = EventQueue()
    for t in times:
        queue.push(timer(t))
    popped = [queue.pop().time for _ in range(len(times))]
    assert popped == sorted(times)


@given(
    st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100),
    st.data(),
)
def test_property_cancel_subset(times, data):
    """Cancelling any subset leaves exactly the complement, still sorted."""
    queue = EventQueue()
    handles = [queue.push(timer(t, name=str(i))) for i, t in enumerate(times)]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(times) - 1), max_size=len(times))
    )
    for index in to_cancel:
        queue.cancel(handles[index])
    remaining = sorted(
        (times[i] for i in range(len(times)) if i not in to_cancel)
    )
    popped = [queue.pop().time for _ in range(len(queue))]
    assert popped == remaining


class TestSharedDeliveries:
    """push_deliveries / pop_entry: one shared event, per-entry time+dest."""

    def _shared(self):
        from repro.core.events import MessageEvent
        from repro.core.message import BROADCAST, Message

        message = Message(source=0, dest=BROADCAST, payload={"type": "B"})
        return MessageEvent(time=1.0, message=message)

    def test_entries_fire_at_their_own_times_and_dests(self):
        queue = EventQueue()
        event = self._shared()
        queue.push_deliveries(event, [3.0, 1.0, 2.0], [7, 5, 6])
        popped = [queue.pop_entry() for _ in range(3)]
        assert [(e[0], e[3]) for e in popped] == [(1.0, 5), (2.0, 6), (3.0, 7)]
        assert all(e[2] is event for e in popped)

    def test_interleaves_with_ordinary_events(self):
        queue = EventQueue()
        queue.push(timer(1.5, "mid"))
        queue.push_deliveries(self._shared(), [1.0, 2.0], [3, 4])
        first, second, third = (queue.pop_entry() for _ in range(3))
        assert first[3] == 3
        assert second[2].name == "mid" and second[3] is None
        assert third[3] == 4

    def test_handle_sequence_shared_with_push(self):
        """Tie-breaking across push and push_deliveries is insertion order."""
        queue = EventQueue()
        queue.push(timer(1.0, "a"))
        queue.push_deliveries(self._shared(), [1.0], [9])
        queue.push(timer(1.0, "b"))
        kinds = []
        for _ in range(3):
            entry = queue.pop_entry()
            kinds.append(entry[2].name if entry[3] is None else "delivery")
        assert kinds == ["a", "delivery", "b"]

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(SchedulingError):
            queue.push_deliveries(self._shared(), [1.0, -0.5], [0, 1])

    def test_pop_is_event_view_of_pop_entry(self):
        queue = EventQueue()
        event = self._shared()
        queue.push_deliveries(event, [1.0], [4])
        assert queue.pop() is event


class TestTombstoneCompaction:
    """Heavy cancellation churn must not let the heap grow unboundedly:
    at n=1000 a protocol run cancels hundreds of thousands of timers."""

    def test_heap_stays_bounded_under_100k_cancels(self):
        queue = EventQueue()
        cancels = 0
        for i in range(120_000):
            handle = queue.push(timer(float(i % 977)))
            if i % 10 != 0:  # cancel 90% immediately
                queue.cancel(handle)
                cancels += 1
        assert cancels > 100_000
        live = len(queue)
        # Without compaction the heap would hold all 120k entries.
        assert len(queue._heap) < 2 * live + EventQueue.COMPACT_MIN_TOMBSTONES + 1

    def test_pop_order_correct_after_compaction(self):
        queue = EventQueue()
        handles = {}
        for i in range(5_000):
            handles[i] = queue.push(timer(float((i * 37) % 1009), name=str(i)))
        for i in range(0, 5_000, 2):
            queue.cancel(handles[i])
        for i in range(1, 5_000, 4):
            queue.cancel(handles[i])
        expected = sorted(
            (float((i * 37) % 1009), i)
            for i in range(5_000)
            if i % 2 != 0 and i % 4 != 1
        )
        popped = [queue.pop() for _ in range(len(queue))]
        assert [(e.time, int(e.name)) for e in popped] == expected
        assert not queue

    def test_cancel_if_triggers_compaction(self):
        queue = EventQueue()
        for i in range(10_000):
            queue.push(timer(float(i), name="victim" if i % 4 else "keep"))
        removed = queue.cancel_if(lambda e: e.name == "victim")
        assert removed == 7_500
        # Dead entries outnumber live ones, so the sweep compacts the heap.
        assert len(queue._heap) == 2_500

    def test_compaction_keeps_shared_delivery_entries(self):
        from repro.core.events import MessageEvent
        from repro.core.message import BROADCAST, Message

        queue = EventQueue()
        event = MessageEvent(
            time=1.0, message=Message(source=0, dest=BROADCAST, payload={})
        )
        queue.push_deliveries(event, [10.0, 20.0], [1, 2])
        handles = [queue.push(timer(float(i))) for i in range(500)]
        for handle in handles:
            queue.cancel(handle)
        assert len(queue) == 2
        assert [queue.pop_entry()[3] for _ in range(2)] == [1, 2]
