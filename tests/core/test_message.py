"""Tests for the message value object."""

from __future__ import annotations

import pytest

from repro.core.message import BROADCAST, Message, payload_matches


def test_type_from_payload():
    assert Message(0, 1, {"type": "VOTE"}).type == "VOTE"


def test_type_defaults_to_question_mark():
    assert Message(0, 1, {}).type == "?"


def test_unique_ids():
    a = Message(0, 1, {})
    b = Message(0, 1, {})
    assert a.msg_id != b.msg_id


def test_deliver_at_requires_delay():
    message = Message(0, 1, {}, sent_at=10.0)
    with pytest.raises(ValueError):
        _ = message.deliver_at
    message.delay = 5.0
    assert message.deliver_at == 15.0


class TestCopyFor:
    def test_copy_changes_dest_and_id(self):
        original = Message(3, BROADCAST, {"type": "X"}, sent_at=2.0)
        copy = original.copy_for(7)
        assert copy.dest == 7
        assert copy.source == 3
        assert copy.sent_at == 2.0
        assert copy.msg_id != original.msg_id

    def test_copy_payload_is_independent(self):
        original = Message(0, BROADCAST, {"type": "X", "nested": {"a": 1}})
        copy = original.copy_for(1)
        copy.payload["nested"]["a"] = 99
        assert original.payload["nested"]["a"] == 1

    def test_copy_preserves_forged_flag(self):
        original = Message(0, BROADCAST, {}, forged=True)
        assert original.copy_for(1).forged is True


def test_describe_is_informative():
    text = Message(2, 5, {"type": "COMMIT"}, sent_at=1.0).describe()
    assert "COMMIT" in text and "2->5" in text


class TestPayloadMatches:
    def test_match(self):
        assert payload_matches({"type": "VOTE", "view": 3}, type="VOTE", view=3)

    def test_mismatch_value(self):
        assert not payload_matches({"type": "VOTE", "view": 3}, view=4)

    def test_missing_key(self):
        assert not payload_matches({"type": "VOTE"}, view=1)

    def test_empty_expected_matches_everything(self):
        assert payload_matches({"anything": 1})
