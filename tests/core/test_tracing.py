"""Tests for trace recording and serialization."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.tracing import Trace, TraceEvent


def test_disabled_trace_records_nothing():
    trace = Trace(enabled=False)
    trace.record(1.0, "send", 0, dest=1)
    assert len(trace) == 0


def test_record_and_index():
    trace = Trace()
    trace.record(1.0, "send", 0, dest=1)
    trace.record(2.0, "deliver", 1, source=0)
    assert len(trace) == 2
    assert trace[0].kind == "send"
    assert trace[1].fields["source"] == 0


def test_filter_by_kind_and_node():
    trace = Trace()
    trace.record(1.0, "view", 0, view=1)
    trace.record(2.0, "view", 1, view=1)
    trace.record(3.0, "decide", 0, slot=0, value="v")
    assert len(trace.events(kind="view")) == 2
    assert len(trace.events(node=0)) == 2
    assert len(trace.events(kind="view", node=1)) == 1


def test_where_predicate():
    trace = Trace()
    for t in range(5):
        trace.record(float(t), "tick", 0)
    assert len(trace.where(lambda e: e.time >= 3.0)) == 2


def test_event_matches():
    event = TraceEvent(time=1.0, kind="decide", node=2, fields={"slot": 0})
    assert event.matches(kind="decide", slot=0)
    assert not event.matches(slot=1)


def test_jsonl_roundtrip():
    trace = Trace()
    trace.record(1.5, "send", 0, dest=3, msg_type="VOTE", msg_id=7)
    trace.record(2.5, "decide", 3, slot=0, value="x")
    restored = Trace.from_jsonl(trace.to_jsonl())
    assert [e.to_dict() for e in restored] == [e.to_dict() for e in trace]


def test_from_jsonl_skips_blank_lines():
    trace = Trace()
    trace.record(1.0, "a", 0)
    text = trace.to_jsonl() + "\n\n"
    assert len(Trace.from_jsonl(text)) == 1


def test_format_truncates():
    trace = Trace()
    for t in range(10):
        trace.record(float(t), "tick", 0)
    text = trace.format(limit=3)
    assert "7 more events" in text


def test_format_truncation_is_explicit():
    """Silent truncation reads as "that was everything"; the tail line must
    spell out exactly how many events were cut."""
    trace = Trace()
    for t in range(60):
        trace.record(float(t), "tick", 0)
    text = trace.format()  # default limit=50
    assert text.splitlines()[-1] == "... (+10 more events)"
    assert len(text.splitlines()) == 51


def test_format_exact_limit_has_no_tail():
    trace = Trace()
    for t in range(3):
        trace.record(float(t), "tick", 0)
    assert "more events" not in trace.format(limit=3)


def test_format_unlimited():
    trace = Trace()
    trace.record(0.0, "tick", 0)
    assert "more events" not in trace.format(limit=None)


def test_event_from_dict_roundtrip():
    event = TraceEvent(time=2.0, kind="send", node=1, fields={"dest": 2})
    assert TraceEvent.from_dict(event.to_dict()) == event


def test_trace_len_and_iteration_via_sink():
    trace = Trace()
    trace.record(1.0, "a", 0)
    trace.record(2.0, "b", 1)
    assert len(trace) == 2
    assert [e.kind for e in trace] == ["a", "b"]


event_fields = st.dictionaries(
    st.sampled_from(["view", "slot", "value", "dest"]),
    st.one_of(st.integers(-10, 10), st.text(max_size=8)),
    max_size=3,
)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e6),
            st.sampled_from(["send", "deliver", "view", "decide"]),
            st.integers(min_value=-1, max_value=32),
            event_fields,
        ),
        max_size=40,
    )
)
def test_property_jsonl_roundtrip(entries):
    trace = Trace()
    for time, kind, node, fields in entries:
        trace.record(time, kind, node, **fields)
    restored = Trace.from_jsonl(trace.to_jsonl())
    assert [e.to_dict() for e in restored] == [e.to_dict() for e in trace]
