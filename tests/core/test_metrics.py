"""Tests for the metrics collector: counting, termination, safety."""

from __future__ import annotations

import pytest

from repro.core.errors import SafetyViolationError
from repro.core.metrics import MetricsCollector


def collector(n: int = 4, decisions: int = 1) -> MetricsCollector:
    return MetricsCollector(n=n, num_decisions=decisions)


class TestTraffic:
    def test_sent_split_by_honesty(self):
        m = collector()
        m.on_sent()
        m.on_sent(byzantine=True)
        m.on_sent()
        assert m.counts.sent == 2
        assert m.counts.byzantine == 1

    def test_dropped_and_delivered(self):
        m = collector()
        m.on_dropped()
        m.on_delivered()
        m.on_delivered()
        assert m.counts.dropped == 1
        assert m.counts.delivered == 2


class TestDecisions:
    def test_agreeing_decisions_accepted(self):
        m = collector()
        for node in range(4):
            m.on_decision(node, 0, "v", time=float(node))
        assert m.decided_value(0) == "v"
        assert m.terminated()

    def test_conflicting_decision_raises(self):
        m = collector()
        m.on_decision(0, 0, "a", time=1.0)
        with pytest.raises(SafetyViolationError):
            m.on_decision(1, 0, "b", time=2.0)

    def test_node_contradicting_itself_raises(self):
        m = collector()
        m.on_decision(0, 0, "a", time=1.0)
        with pytest.raises(SafetyViolationError):
            m.on_decision(0, 0, "b", time=2.0)

    def test_duplicate_decision_is_idempotent(self):
        m = collector()
        m.on_decision(0, 0, "a", time=1.0)
        m.on_decision(0, 0, "a", time=2.0)
        assert m.decisions_of(0) == 1

    def test_different_slots_may_differ(self):
        m = collector(decisions=2)
        m.on_decision(0, 0, "a", time=1.0)
        m.on_decision(0, 1, "b", time=2.0)
        assert m.decided_value(0) == "a"
        assert m.decided_value(1) == "b"

    def test_faulty_nodes_decisions_ignored(self):
        m = collector()
        m.mark_faulty(3)
        m.on_decision(3, 0, "evil", time=1.0)
        assert m.decisions == []
        # and a conflicting honest decision is fine afterwards
        m.on_decision(0, 0, "good", time=2.0)
        assert m.decided_value(0) == "good"

    def test_decided_slots_sorted(self):
        m = collector(decisions=3)
        m.on_decision(0, 2, "c", 1.0)
        m.on_decision(0, 0, "a", 2.0)
        assert m.decided_slots() == [0, 2]

    def test_decided_value_missing_slot_raises(self):
        with pytest.raises(KeyError):
            collector().decided_value(0)


class TestTermination:
    def test_not_terminated_until_all_honest_decide(self):
        m = collector()
        for node in range(3):
            m.on_decision(node, 0, "v", time=1.0)
        assert not m.terminated()
        m.on_decision(3, 0, "v", time=2.0)
        assert m.terminated()

    def test_faulty_nodes_excluded_from_termination(self):
        m = collector()
        m.mark_faulty(3)
        for node in range(3):
            m.on_decision(node, 0, "v", time=1.0)
        assert m.terminated()

    def test_multi_decision_termination(self):
        m = collector(decisions=2)
        for node in range(4):
            m.on_decision(node, 0, "a", time=1.0)
        assert not m.terminated()
        for node in range(4):
            m.on_decision(node, 1, "b", time=2.0)
        assert m.terminated()

    def test_all_faulty_never_terminates(self):
        m = collector(n=2)
        m.mark_faulty(0)
        m.mark_faulty(1)
        assert not m.terminated()


class TestDerivedMetrics:
    def test_latency_and_per_decision(self):
        m = collector(decisions=2)
        m.finish(3000.0)
        assert m.latency() == 3000.0
        assert m.latency_per_decision() == 1500.0

    def test_messages_per_decision(self):
        m = collector(decisions=4)
        for _ in range(20):
            m.on_sent()
        assert m.messages_per_decision() == 5.0

    def test_slot_completion_times(self):
        m = collector()
        for node, t in enumerate([1.0, 4.0, 2.0, 3.0]):
            m.on_decision(node, 0, "v", time=t)
        assert m.slot_completion_times() == {0: 4.0}

    def test_slot_completion_excludes_partial_slots(self):
        m = collector(decisions=2)
        for node in range(4):
            m.on_decision(node, 0, "a", time=1.0)
        m.on_decision(0, 1, "b", time=2.0)  # only one node decided slot 1
        assert list(m.slot_completion_times()) == [0]
