"""Streaming run-health monitor: detectors, determinism, online == offline.

Three layers of coverage:

* **detector units** — each detector driven directly through the monitor's
  hook/``close_window`` API with synthetic inputs, pinning fire/no-fire
  semantics and severity escalation;
* **determinism** — every golden digest is byte-identical with health
  monitoring enabled, and benign golden runs report zero anomalies;
* **online == offline** — :func:`replay_health` over a recorded trace
  rebuilds detector state identical to what the live run produced, both
  for fixed cases and as a hypothesis property over seeds and windows.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import Controller
from repro.core.results import deterministic_dict, result_fingerprint
from repro.core.runner import run_simulation
from repro.faults import parse_faults_spec
from repro.observability import MemorySink
from repro.observability.health import (
    HealthEvent,
    HealthMonitor,
    HealthReport,
    analyze_trace_health,
    render_health,
    replay_health,
)
from repro.workload import parse_workload_spec
from tests.conftest import quick_config
from tests.core.test_golden_determinism import GOLDEN, golden_config

#: Minimal engine sample for windows of a run without a workload.
SAMPLE = {"queue": 0}


def _monitor(n: int = 4, **kwargs) -> HealthMonitor:
    monitor = HealthMonitor(**kwargs)
    monitor.bind(n)
    return monitor


class TestViewStormDetector:
    def test_fires_on_view_churn_without_progress(self):
        m = _monitor()
        for view in range(5):
            m.on_view(0, view, 10.0 * view)
        m.close_window(500.0, SAMPLE)
        assert [e.detector for e in m.events] == ["view-storm"]
        event = m.events[0]
        assert event.nodes == (0,)
        assert event.evidence["views"] == [0, 1, 2, 3, 4]
        assert event.window_start == 0.0 and event.window_end == 500.0

    def test_gated_by_decisions_in_window(self):
        """Chained protocols rotate views per slot; churn WITH progress
        is normal operation, not a storm."""
        m = _monitor()
        for view in range(5):
            m.on_view(0, view, 10.0 * view)
        m.on_decide(1, 400.0)
        m.close_window(500.0, SAMPLE)
        assert m.events == []

    def test_fleetwide_entry_of_one_view_is_not_a_storm(self):
        """n nodes entering the SAME view is one view change, not n."""
        m = _monitor()
        for node in range(4):
            m.on_view(node, 1, 100.0)
        m.close_window(500.0, SAMPLE)
        assert m.events == []

    def test_critical_at_double_threshold(self):
        m = _monitor()
        for view in range(8):
            m.on_view(0, view, 10.0 * view)
        m.close_window(500.0, SAMPLE)
        assert m.events[0].severity == "critical"


class TestStragglerDetector:
    def test_flags_the_lagging_node(self):
        m = _monitor(n=4)
        for _ in range(3):
            for node in (0, 1, 2):
                m.on_decide(node, 100.0)
        m.close_window(500.0, SAMPLE)
        events = [e for e in m.events if e.detector == "straggler"]
        assert len(events) == 1
        assert events[0].nodes == (3,)
        assert events[0].severity == "warn"
        assert events[0].evidence["max_lag"] == 3

    def test_critical_at_double_lag(self):
        m = _monitor(n=4)
        for _ in range(4):
            for node in (0, 1, 2):
                m.on_decide(node, 100.0)
        m.close_window(500.0, SAMPLE)
        assert m.events[0].severity == "critical"

    def test_silent_while_fleet_is_in_sync(self):
        m = _monitor(n=4)
        for node in range(4):
            m.on_decide(node, 100.0)
        m.close_window(500.0, SAMPLE)
        assert m.events == []

    def test_silent_before_any_decision(self):
        m = _monitor(n=4)
        m.close_window(500.0, SAMPLE)
        assert m.events == []


class TestBacklogDetector:
    def test_fires_after_sustained_strict_growth(self):
        m = _monitor()
        for end, queue in ((500.0, 2), (1000.0, 4), (1500.0, 6), (2000.0, 9)):
            m.close_window(end, {"queue": queue})
        events = [e for e in m.events if e.detector == "backlog"]
        assert len(events) == 1
        assert events[0].evidence["depths"] == [2.0, 4.0, 6.0, 9.0]

    def test_mempool_counts_toward_depth(self):
        m = _monitor()
        for end, depth in ((500.0, 2), (1000.0, 4), (1500.0, 6), (2000.0, 5)):
            m.close_window(end, {"queue": depth, "mempool": depth})
        # Final combined depth 10 >= backlog_min with strict growth 4<8<12... no:
        # depths are 4, 8, 12, 10 -> growth broken in the last window.
        assert [e for e in m.events if e.detector == "backlog"] == []

    def test_silent_when_draining(self):
        m = _monitor()
        for end, queue in ((500.0, 9), (1000.0, 6), (1500.0, 12), (2000.0, 9)):
            m.close_window(end, {"queue": queue})
        assert [e for e in m.events if e.detector == "backlog"] == []

    def test_silent_below_minimum_depth(self):
        m = _monitor()
        for end, queue in ((500.0, 1), (1000.0, 2), (1500.0, 3), (2000.0, 4)):
            m.close_window(end, {"queue": queue})
        assert [e for e in m.events if e.detector == "backlog"] == []


class TestFaninDetector:
    def test_spike_against_ewma_baseline(self):
        m = _monitor()
        for _ in range(8):  # window 1 establishes the baseline
            m.on_deliver(0, 1, "VOTE", 10.0)
        m.close_window(500.0, SAMPLE)
        for _ in range(40):  # 5x the baseline of 8, above fanin_min
            m.on_deliver(0, 1, "VOTE", 600.0)
        m.close_window(1000.0, SAMPLE)
        events = [e for e in m.events if e.detector == "fanin-spike"]
        assert len(events) == 1
        assert events[0].evidence["msg_type"] == "VOTE"
        assert events[0].evidence["baseline"] == 8.0

    def test_warmup_guard_suppresses_small_counts(self):
        m = _monitor()
        for _ in range(2):
            m.on_deliver(0, 1, "VOTE", 10.0)
        m.close_window(500.0, SAMPLE)
        for _ in range(12):  # 6x baseline but under fanin_min
            m.on_deliver(0, 1, "VOTE", 600.0)
        m.close_window(1000.0, SAMPLE)
        assert [e for e in m.events if e.detector == "fanin-spike"] == []

    def test_first_window_never_spikes(self):
        m = _monitor()
        for _ in range(100):
            m.on_deliver(0, 1, "VOTE", 10.0)
        m.close_window(500.0, SAMPLE)
        assert m.events == []


class TestStarvationDetector:
    def test_low_jain_index_implicates_lagging_clients(self):
        m = _monitor()
        m.close_window(500.0, {
            "queue": 0, "mempool": 0, "fairness": 0.3, "max_wait": 0.0,
            "wait_client": None, "lagging": [2, 3], "decided": 10,
        })
        events = [e for e in m.events if e.detector == "starvation"]
        assert len(events) == 1
        assert events[0].clients == (2, 3)
        assert events[0].severity == "warn"
        assert m.report().min_fairness == 0.3

    def test_critical_below_half_threshold(self):
        m = _monitor()
        m.close_window(500.0, {"fairness": 0.2, "decided": 10, "queue": 0})
        assert m.events[0].severity == "critical"

    def test_silent_before_first_decision(self):
        """A perfectly idle window (nothing decided yet) is not unfair."""
        m = _monitor()
        m.close_window(500.0, {"fairness": 0.1, "decided": 0, "queue": 0})
        assert m.events == []

    def test_max_wait_implicates_the_oldest_client(self):
        m = _monitor()  # starvation_wait_ms defaults to 10 x 500ms
        m.close_window(500.0, {
            "queue": 0, "fairness": 1.0, "max_wait": 6000.0,
            "wait_client": 7, "lagging": [], "decided": 5,
        })
        events = [e for e in m.events if e.detector == "starvation"]
        assert len(events) == 1
        assert events[0].clients == (7,)
        assert events[0].evidence["max_wait_ms"] == 6000.0

    def test_absent_workload_never_starves(self):
        m = _monitor()
        m.close_window(500.0, SAMPLE)  # no fairness key: not a workload run
        assert m.events == []
        assert m.report().min_fairness is None


class TestReportShape:
    def test_report_round_trips_through_json(self):
        m = _monitor()
        for view in range(5):
            m.on_view(0, view, 10.0 * view)
        m.close_window(500.0, SAMPLE)
        report = m.report()
        encoded = json.dumps(report.to_dict(), sort_keys=True)
        assert HealthReport.from_dict(json.loads(encoded)).to_dict() == report.to_dict()

    def test_event_round_trip(self):
        event = HealthEvent(
            time=500.0, detector="straggler", severity="warn",
            window_start=0.0, window_end=500.0, nodes=(3,), clients=(),
            evidence={"max_lag": 3},
        )
        assert HealthEvent.from_dict(event.to_dict()) == event

    def test_starved_clients_census(self):
        m = _monitor()
        m.close_window(500.0, {"fairness": 0.3, "decided": 5, "lagging": [4, 1]})
        m.close_window(1000.0, {"fairness": 0.3, "decided": 9, "lagging": [1, 2]})
        assert m.report().starved_clients == (1, 2, 4)

    def test_summary_reads_healthy_or_anomalous(self):
        m = _monitor()
        m.close_window(500.0, SAMPLE)
        assert "healthy" in m.report().summary()
        m.close_window(1000.0, {"fairness": 0.1, "decided": 5})
        assert "starvation" in m.report().summary()

    def test_window_ms_must_be_positive(self):
        with pytest.raises(ValueError):
            HealthMonitor(window_ms=0.0)


class TestGoldenDeterminism:
    @pytest.mark.parametrize("protocol", sorted(GOLDEN))
    def test_golden_digest_unchanged_with_health_enabled(self, protocol):
        """Health monitoring is OBSERVE-only: all nine golden digests are
        byte-identical with it on, and the benign runs are all healthy."""
        result = run_simulation(golden_config(protocol), health=True)
        assert result_fingerprint(result) == GOLDEN[protocol]
        assert result.health is not None
        assert result.health.anomaly_count == 0

    def test_health_report_is_outside_the_fingerprint(self):
        result = run_simulation(golden_config("pbft"), health=True)
        assert "health" not in deterministic_dict(result)

    def test_workload_fingerprint_unchanged_by_health(self):
        config = quick_config(num_decisions=1).replace(
            workload=parse_workload_spec("rate:60,clients:6,batch:8,duration:2000"),
            allow_horizon=True,
        )
        plain = run_simulation(config)
        monitored = run_simulation(config, health=True)
        assert result_fingerprint(plain) == result_fingerprint(monitored)


def _traced_run(config, window_ms: float):
    """Run with a live monitor + memory sink; returns (monitor, events)."""
    sink = MemorySink()
    monitor = HealthMonitor(window_ms=window_ms)
    Controller(config, sink=sink, health=monitor).run()
    return monitor, [event.to_dict() for event in sink.events()]


class TestOnlineEqualsOffline:
    @pytest.mark.parametrize("protocol", ["pbft", "hotstuff-ns", "algorand"])
    def test_replay_rebuilds_identical_state(self, protocol):
        config = golden_config(protocol)
        monitor, events = _traced_run(config, window_ms=100.0)
        replayed = replay_health(events, n=config.n, window_ms=100.0)
        assert replayed.state_dict() == monitor.state_dict()
        assert replayed.report().to_dict() == monitor.report().to_dict()

    def test_replay_matches_on_an_anomalous_workload_run(self):
        config = quick_config(num_decisions=1).replace(
            workload=parse_workload_spec("rate:60,clients:6,batch:8,duration:2000"),
            faults=parse_faults_spec("delay=0.7x6"),
            allow_horizon=True,
        )
        monitor, events = _traced_run(config, window_ms=250.0)
        assert monitor.events  # the adversarial run actually anomalous
        replayed = replay_health(events, n=config.n, window_ms=250.0)
        assert replayed.state_dict() == monitor.state_dict()

    @settings(deadline=None, max_examples=20)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        window_ms=st.sampled_from([50.0, 120.0, 500.0, 1300.0]),
        protocol=st.sampled_from(["pbft", "hotstuff-ns"]),
    )
    def test_replay_identity_property(self, seed, window_ms, protocol):
        """Online == offline over arbitrary seeds and window widths."""
        config = golden_config(protocol).replace(seed=seed)
        monitor, events = _traced_run(config, window_ms=window_ms)
        replayed = replay_health(events, n=config.n, window_ms=window_ms)
        assert replayed.state_dict() == monitor.state_dict()


class TestStarvationIntegration:
    def test_delaying_adversary_trips_the_starvation_detector(self):
        """An environmental adversary that delays traffic under an open-loop
        workload must surface as starvation (and backlog) anomalies, while
        the same workload without the adversary stays clean."""
        base = quick_config(num_decisions=1).replace(
            workload=parse_workload_spec("rate:60,clients:6,batch:8,duration:2000"),
            allow_horizon=True,
        )
        calm = run_simulation(base, health=250.0)
        assert calm.health.anomaly_count == 0
        assert calm.health.min_fairness is not None

        attacked = base.replace(faults=parse_faults_spec("delay=0.7x6"))
        result = run_simulation(attacked, health=250.0)
        assert result.health.detectors.get("starvation", 0) > 0
        assert result.health.starved_clients  # specific clients implicated
        assert result.health.min_fairness < calm.health.min_fairness


class TestTraceAnalysis:
    def test_analysis_matches_the_live_report(self):
        config = quick_config(num_decisions=1).replace(
            workload=parse_workload_spec("rate:60,clients:6,batch:8,duration:2000"),
            faults=parse_faults_spec("delay=0.7x6"),
            allow_horizon=True,
        )
        sink = MemorySink()
        result = run_simulation(config, sink=sink, health=250.0)
        analysis = analyze_trace_health([e.to_dict() for e in sink.events()])
        assert analysis["anomaly_count"] == result.health.anomaly_count
        assert analysis["samples"] == result.health.windows
        assert analysis["min_fairness"] == pytest.approx(result.health.min_fairness)
        assert analysis["detectors"] == result.health.detectors

    def test_render_health_mentions_every_detector(self):
        analysis = {
            "samples": 4, "anomaly_count": 2,
            "detectors": {"backlog": 1, "starvation": 1},
            "severities": {"warn": 2}, "min_fairness": 0.4,
            "last_fairness": 0.4,
            "anomalies": [
                {"time": 500.0, "detector": "backlog", "severity": "warn",
                 "nodes": [], "clients": [], "evidence": {"queue": 9}},
                {"time": 750.0, "detector": "starvation", "severity": "warn",
                 "nodes": [], "clients": [2], "evidence": {"fairness": 0.4}},
            ],
        }
        text = render_health(analysis)
        assert "backlog" in text and "starvation" in text
        assert "min fairness 0.400" in text

    def test_render_health_on_an_unmonitored_trace(self):
        text = render_health(analyze_trace_health([]))
        assert "run with --health" in text
