"""Tests for structured simulated-time logging."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.core.config import SimulationConfig
from repro.core.runner import run_simulation
from repro.observability.logging import (
    LOGGER_NAME,
    SimLogger,
    configure_logging,
    get_logger,
)


class _FixedClock:
    def __init__(self, now: float) -> None:
        self.now = now


@pytest.fixture()
def log_stream():
    """Install a capture handler, hand back the stream, restore afterwards."""
    stream = io.StringIO()
    root = logging.getLogger(LOGGER_NAME)
    previous_level = root.level
    yield stream
    # configure_logging swaps its own handler; drop whatever is installed.
    configure_logging(level="warning", stream=io.StringIO())
    root.setLevel(previous_level)


class TestGetLogger:
    def test_namespacing(self):
        assert get_logger("controller").name == "repro.controller"
        assert get_logger("protocol", node=3).name == "repro.protocol.n3"
        assert get_logger("").name == "repro"

    def test_package_root_has_null_handler(self):
        root = logging.getLogger(LOGGER_NAME)
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


class TestSimLogger:
    def test_stamps_simulated_time(self, log_stream):
        configure_logging(level="info", stream=log_stream)
        log = SimLogger(get_logger("controller"), clock=_FixedClock(1234.5))
        log.info("view change", view=2)
        line = log_stream.getvalue().strip()
        assert "[t=1234.5ms]" in line
        assert "view change" in line
        assert "view=2" in line

    def test_sim_time_override(self, log_stream):
        configure_logging(level="info", stream=log_stream)
        log = SimLogger(get_logger("faults"), clock=_FixedClock(99.0))
        log.info("late event", sim_time=10.0)
        assert "[t=10.0ms]" in log_stream.getvalue()

    def test_node_tag(self, log_stream):
        configure_logging(level="info", stream=log_stream)
        log = SimLogger(get_logger("protocol", node=3), clock=_FixedClock(1.0), node=3)
        log.info("deciding")
        assert "[n3]" in log_stream.getvalue()

    def test_disabled_level_emits_nothing(self, log_stream):
        configure_logging(level="warning", stream=log_stream)
        log = SimLogger(get_logger("controller"), clock=_FixedClock(1.0))
        log.debug("hot-path detail", big=list(range(100)))
        log.info("informational")
        assert log_stream.getvalue() == ""

    def test_error_and_warning_levels(self, log_stream):
        configure_logging(level="warning", stream=log_stream)
        log = SimLogger(get_logger("controller"))
        log.warning("watchdog", reason="stall")
        log.error("broken")
        out = log_stream.getvalue()
        assert "warning" in out and "error" in out


class TestJsonLogging:
    def test_json_lines_are_parseable(self, log_stream):
        configure_logging(level="info", json_lines=True, stream=log_stream)
        log = SimLogger(get_logger("controller"), clock=_FixedClock(42.0), node=1)
        log.info("run finished", events=10)
        record = json.loads(log_stream.getvalue().strip())
        assert record["level"] == "info"
        assert record["logger"] == "repro.controller"
        assert record["message"] == "run finished"
        assert record["sim_time_ms"] == 42.0
        assert record["node"] == 1
        assert record["data"] == {"events": 10}

    def test_unserializable_field_falls_back_to_repr(self, log_stream):
        configure_logging(level="info", json_lines=True, stream=log_stream)
        log = SimLogger(get_logger("controller"))
        log.info("odd", payload=object())
        record = json.loads(log_stream.getvalue().strip())
        assert "object" in record["data"]["payload"]


class TestConfigureLogging:
    def test_reconfigure_replaces_handler(self, log_stream):
        first = configure_logging(level="info", stream=io.StringIO())
        second = configure_logging(level="info", stream=log_stream)
        root = logging.getLogger(LOGGER_NAME)
        assert first not in root.handlers
        assert second in root.handlers

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            configure_logging(level="loud")


class TestEngineLogging:
    def test_run_logs_lifecycle_at_debug(self, log_stream):
        configure_logging(level="debug", stream=log_stream)
        run_simulation(SimulationConfig(protocol="pbft", n=4, seed=1))
        out = log_stream.getvalue()
        assert "run starting" in out
        assert "run finished" in out

    def test_crash_recovery_is_logged(self, log_stream):
        from repro.faults import parse_faults_spec

        configure_logging(level="info", stream=log_stream)
        config = SimulationConfig(
            protocol="pbft", n=4, seed=1, lam=500.0,
            faults=parse_faults_spec("crash=3@100:400"),
            stall_timeout=60_000.0,
        )
        run_simulation(config)
        out = log_stream.getvalue()
        assert "environment crashed node" in out
        assert "environment recovered node" in out

    def test_silent_by_default(self, capsys):
        # Library etiquette: an unconfigured run writes nothing to stderr.
        run_simulation(SimulationConfig(protocol="pbft", n=4, seed=1))
        assert capsys.readouterr().err == ""

    def test_logging_does_not_change_results(self, log_stream):
        from repro.core.results import result_fingerprint

        config = SimulationConfig(protocol="pbft", n=4, seed=9)
        quiet = run_simulation(config)
        configure_logging(level="debug", stream=log_stream)
        noisy = run_simulation(config)
        assert result_fingerprint(quiet) == result_fingerprint(noisy)
        assert log_stream.getvalue() != ""
