"""Phase annotations: per-view time-in-phase breakdowns.

Acceptance criterion pinned here (ISSUE, PR 5): per-view phase durations
sum to the view duration — the analyzer's intervals *partition* each
node's time in a view.
"""

from __future__ import annotations

import pytest

from repro.core.runner import run_simulation
from repro.observability import (
    MemorySink,
    analyze_phases,
    render_phase_report,
)
from tests.core.test_golden_determinism import golden_config

#: protocol -> phases its instrumentation must tag in a clean golden run.
EXPECTED_PHASES = {
    "pbft": {"pre-prepare", "prepare", "commit"},
    "tendermint": {"propose", "prevote", "precommit"},
    "hotstuff-ns": {"propose", "vote"},
    "librabft": {"propose", "vote"},
}


def _events(protocol: str):
    sink = MemorySink()
    run_simulation(golden_config(protocol), sink=sink)
    return [event.to_dict() for event in sink.events()]


class TestAnalyzePhases:
    @pytest.mark.parametrize("protocol", sorted(EXPECTED_PHASES))
    def test_expected_phases_tagged(self, protocol):
        report = analyze_phases(_events(protocol))
        assert EXPECTED_PHASES[protocol] <= set(report.phases_seen)

    def test_per_view_durations_sum_to_view_duration(self):
        """The acceptance bar: for every (node, view) breakdown, the phase
        durations sum exactly to the node's time in that view."""
        report = analyze_phases(_events("pbft"))
        assert report.per_view
        for breakdown in report.per_view.values():
            span = breakdown.last_exit - breakdown.first_entry
            assert sum(breakdown.phases.values()) == pytest.approx(span)
            assert breakdown.duration == pytest.approx(span)

    def test_stays_partition_each_nodes_timeline(self):
        """Consecutive stays of one node tile [first phase, trace end]
        without gaps or overlaps, across view boundaries too."""
        report = analyze_phases(_events("pbft"))
        by_node: dict[int, list] = {}
        for stay in report.stays:
            by_node.setdefault(stay.node, []).append(stay)
        assert by_node
        for stays in by_node.values():
            stays.sort(key=lambda s: s.start)
            for prev, cur in zip(stays, stays[1:]):
                assert prev.end == cur.start
            assert stays[-1].end == report.end_time

    def test_phase_totals_match_stays(self):
        report = analyze_phases(_events("pbft"))
        totals: dict[str, float] = {}
        for stay in report.stays:
            totals[stay.phase] = totals.get(stay.phase, 0.0) + stay.duration
        for phase, total in report.phase_totals.items():
            assert total == pytest.approx(totals[phase])

    def test_transition_counts_match_events(self):
        events = _events("pbft")
        report = analyze_phases(events)
        tagged = sum(1 for e in events if e["kind"] == "phase")
        assert sum(report.transition_counts.values()) == tagged

    def test_tendermint_views_key_on_height_and_round(self):
        report = analyze_phases(_events("tendermint"))
        views = {view for _node, view in report.per_view}
        assert views
        assert all(isinstance(view, tuple) and len(view) == 2 for view in views)

    def test_to_dict_schema(self):
        data = analyze_phases(_events("pbft")).to_dict()
        assert data["phase_totals_ms"]
        assert data["per_view"]
        entry = data["per_view"][0]
        assert entry["duration_ms"] == pytest.approx(sum(entry["phases_ms"].values()))


class TestRenderPhaseReport:
    def test_renders_tables(self):
        text = render_phase_report(analyze_phases(_events("pbft")))
        assert "time in phase" in text
        assert "per-view phase durations" in text

    def test_empty_trace_message(self):
        text = render_phase_report(analyze_phases([]))
        assert "no phase events" in text


class TestPhaseHookNeutrality:
    def test_phase_hook_is_noop_without_env_support(self):
        """Node.phase degrades to a no-op under environments that predate
        report_phase (harness doubles, third-party embeddings)."""
        from repro.protocols.pbft import PBFTNode

        class BareEnv:
            n = 4
            f = 1
            lam = 500.0

            def register_timer(self, *a, **k):
                return None

        node = PBFTNode(0, BareEnv())
        node.phase("prepare", view=0)  # must not raise
