"""Unit tests for the live run signals maintained for adaptive attackers."""

from __future__ import annotations

import pytest

from repro.observability.signals import LiveSignals


def _populated() -> LiveSignals:
    s = LiveSignals(4)
    # Node 1 handles a message from node 3 and decides on it: 3 closed the
    # quorum.  Node 0 decides twice on messages from node 2.
    s.on_deliver(1, 3, 10.0)
    s.on_decide(1, 11.0)
    s.on_deliver(0, 2, 12.0)
    s.on_decide(0, 13.0)
    s.on_deliver(0, 2, 14.0)
    s.on_decide(0, 15.0)
    s.on_deliver(2, 0, 16.0)
    return s


class TestCounters:
    def test_delivery_and_decision_counts(self):
        s = _populated()
        assert s.delivery_counts() == (2, 1, 1, 0)
        assert s.decision_counts() == (2, 1, 0, 0)
        assert s.decisions_seen == 3

    def test_self_delivery_never_closes_a_quorum(self):
        s = LiveSignals(2)
        s.on_deliver(0, 0, 1.0)
        s.on_decide(0, 2.0)
        assert s.closing_senders == {}

    def test_decide_without_delivery_closes_nothing(self):
        s = LiveSignals(2)
        s.on_decide(1, 1.0)
        assert s.closing_senders == {}
        assert s.decision_counts() == (0, 1)


class TestRankings:
    def test_stragglers_rank_by_decisions_then_activity_then_id(self):
        s = _populated()
        # 3 has no decisions and no activity; 2 has no decisions but was
        # active at t=16; 1 decided once; 0 decided twice.
        assert s.stragglers(4) == [3, 2, 1, 0]

    def test_stragglers_exclude(self):
        s = _populated()
        assert s.stragglers(2, exclude={3}) == [2, 1]

    def test_critical_senders_rank_by_quorums_closed(self):
        s = _populated()
        assert s.critical_senders(2) == [2, 3]
        assert s.critical_senders(2, exclude={2}) == [3]

    def test_critical_senders_never_pads(self):
        s = _populated()
        # Only two nodes ever closed a quorum; k=4 still returns two.
        assert len(s.critical_senders(4)) == 2

    def test_busiest_nodes_rank_by_deliveries(self):
        s = _populated()
        assert s.busiest_nodes(2) == [0, 1]
        assert s.busiest_nodes(1, exclude={0}) == [1]

    def test_fresh_signals_rank_by_id(self):
        s = LiveSignals(3)
        assert s.stragglers(3) == [0, 1, 2]
        assert s.busiest_nodes(3) == [0, 1, 2]
        assert s.critical_senders(3) == []

    def test_describe_mentions_counts(self):
        s = _populated()
        text = s.describe()
        assert "decisions=3" in text
        assert "delivered=4" in text


class TestKindFanIn:
    def _kinds(self) -> LiveSignals:
        s = LiveSignals(4)
        s.on_deliver(1, 0, 1.0, "PREPARE")
        s.on_deliver(1, 2, 2.0, "PREPARE")
        s.on_deliver(2, 0, 3.0, "PREPARE")
        s.on_deliver(3, 0, 4.0, "COMMIT")
        s.on_deliver(3, 1, 5.0, "COMMIT")
        s.on_deliver(3, 2, 6.0, "COMMIT")
        return s

    def test_fan_in_counts_per_kind(self):
        s = self._kinds()
        assert s.fan_in("PREPARE") == (0, 2, 1, 0)
        assert s.fan_in("COMMIT") == (0, 0, 0, 3)

    def test_unseen_kind_is_all_zeros(self):
        s = self._kinds()
        assert s.fan_in("VIEW-CHANGE") == (0, 0, 0, 0)

    def test_untyped_deliveries_count_only_overall(self):
        s = LiveSignals(2)
        s.on_deliver(0, 1, 1.0)  # no msg_type: legacy/anonymous delivery
        assert s.delivery_counts() == (1, 0)
        assert s.kind_fan_in == {}

    def test_hottest_by_kind_ranks_that_kind_only(self):
        s = self._kinds()
        # Overall, node 3 is busiest; for PREPARE specifically, node 1 is.
        assert s.busiest_nodes(1) == [3]
        assert s.hottest_by_kind("PREPARE", 2) == [1, 2]
        assert s.hottest_by_kind("COMMIT", 1) == [3]

    def test_hottest_by_kind_respects_exclude(self):
        s = self._kinds()
        assert s.hottest_by_kind("PREPARE", 2, exclude={1}) == [2, 0]

    def test_hottest_falls_back_to_busiest_when_kind_unseen(self):
        s = self._kinds()
        assert s.hottest_by_kind("VIEW-CHANGE", 2) == s.busiest_nodes(2)


class TestPhaseTimings:
    def _phased(self) -> LiveSignals:
        s = LiveSignals(2)
        # Node 0: prepare for 5ms, then commit for 3ms (closed by finish).
        s.on_phase(0, "prepare", 1, None, 10.0)
        s.on_phase(0, "commit", 1, None, 15.0)
        # Node 1: prepare for 7ms, then the next view's prepare.
        s.on_phase(1, "prepare", 1, None, 10.0)
        s.on_phase(1, "prepare", 2, None, 17.0)
        s.finish(18.0)
        return s

    def test_phase_time_accumulates_across_nodes(self):
        s = self._phased()
        assert s.phase_time(1, "prepare") == pytest.approx(12.0)  # 5 + 7
        assert s.phase_time(1, "commit") == pytest.approx(3.0)
        assert s.phase_time(2, "prepare") == pytest.approx(1.0)

    def test_unseen_phase_is_zero(self):
        assert self._phased().phase_time(9, "prepare") == 0.0

    def test_slowest_phases_rank_by_total(self):
        s = self._phased()
        assert s.slowest_phases(2) == [
            (1, "prepare", pytest.approx(12.0)),
            (1, "commit", pytest.approx(3.0)),
        ]

    def test_height_view_protocols_get_composite_keys(self):
        s = LiveSignals(1)
        s.on_phase(0, "propose", 0, 5, 0.0)
        s.finish(4.0)
        assert s.phase_time((5, 0), "propose") == pytest.approx(4.0)

    def test_finish_is_idempotent(self):
        s = self._phased()
        before = dict(s.phase_totals)
        s.finish(99.0)  # nothing left open: totals must not move
        assert s.phase_totals == before


class TestSummaryDict:
    def test_snapshot_shape_and_values(self):
        s = _populated()
        s.on_deliver(1, 0, 20.0, "PREPARE")
        s.on_phase(0, "prepare", 1, None, 0.0)
        s.finish(8.0)
        summary = s.summary_dict()
        assert set(summary) == {
            "decisions_seen", "delivered", "decided", "closing_senders",
            "fan_in_by_kind", "phase_timings",
        }
        assert summary["decisions_seen"] == 3
        assert summary["delivered"] == [2, 2, 1, 0]
        assert summary["closing_senders"] == {"2": 2, "3": 1}
        assert summary["fan_in_by_kind"] == {
            "PREPARE": {"total": 1, "per_node": [0, 1, 0, 0]},
        }
        assert summary["phase_timings"] == {
            "1/prepare": {"total_ms": pytest.approx(8.0), "entries": 1},
        }

    def test_snapshot_is_json_serializable(self):
        import json

        s = LiveSignals(2)
        s.on_deliver(0, 1, 1.0, "VOTE")
        s.on_phase(0, "propose", 0, 3, 0.0)  # composite (height, view) key
        s.finish(2.0)
        round_tripped = json.loads(json.dumps(s.summary_dict()))
        assert "(3, 0)/propose" in round_tripped["phase_timings"]
