"""Unit tests for the live run signals maintained for adaptive attackers."""

from __future__ import annotations

from repro.observability.signals import LiveSignals


def _populated() -> LiveSignals:
    s = LiveSignals(4)
    # Node 1 handles a message from node 3 and decides on it: 3 closed the
    # quorum.  Node 0 decides twice on messages from node 2.
    s.on_deliver(1, 3, 10.0)
    s.on_decide(1, 11.0)
    s.on_deliver(0, 2, 12.0)
    s.on_decide(0, 13.0)
    s.on_deliver(0, 2, 14.0)
    s.on_decide(0, 15.0)
    s.on_deliver(2, 0, 16.0)
    return s


class TestCounters:
    def test_delivery_and_decision_counts(self):
        s = _populated()
        assert s.delivery_counts() == (2, 1, 1, 0)
        assert s.decision_counts() == (2, 1, 0, 0)
        assert s.decisions_seen == 3

    def test_self_delivery_never_closes_a_quorum(self):
        s = LiveSignals(2)
        s.on_deliver(0, 0, 1.0)
        s.on_decide(0, 2.0)
        assert s.closing_senders == {}

    def test_decide_without_delivery_closes_nothing(self):
        s = LiveSignals(2)
        s.on_decide(1, 1.0)
        assert s.closing_senders == {}
        assert s.decision_counts() == (0, 1)


class TestRankings:
    def test_stragglers_rank_by_decisions_then_activity_then_id(self):
        s = _populated()
        # 3 has no decisions and no activity; 2 has no decisions but was
        # active at t=16; 1 decided once; 0 decided twice.
        assert s.stragglers(4) == [3, 2, 1, 0]

    def test_stragglers_exclude(self):
        s = _populated()
        assert s.stragglers(2, exclude={3}) == [2, 1]

    def test_critical_senders_rank_by_quorums_closed(self):
        s = _populated()
        assert s.critical_senders(2) == [2, 3]
        assert s.critical_senders(2, exclude={2}) == [3]

    def test_critical_senders_never_pads(self):
        s = _populated()
        # Only two nodes ever closed a quorum; k=4 still returns two.
        assert len(s.critical_senders(4)) == 2

    def test_busiest_nodes_rank_by_deliveries(self):
        s = _populated()
        assert s.busiest_nodes(2) == [0, 1]
        assert s.busiest_nodes(1, exclude={0}) == [1]

    def test_fresh_signals_rank_by_id(self):
        s = LiveSignals(3)
        assert s.stragglers(3) == [0, 1, 2]
        assert s.busiest_nodes(3) == [0, 1, 2]
        assert s.critical_senders(3) == []

    def test_describe_mentions_counts(self):
        s = _populated()
        text = s.describe()
        assert "decisions=3" in text
        assert "delivered=4" in text
