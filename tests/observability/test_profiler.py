"""Tests for the hot-path profiler and RunProfile aggregation."""

from __future__ import annotations

import pickle
from time import perf_counter

from repro.core.config import SimulationConfig
from repro.core.runner import run_simulation
from repro.observability.profiler import (
    ENGINE_SECTIONS,
    Profiler,
    RunProfile,
    SectionStats,
)


class TestProfilerAccumulator:
    def test_add_accumulates_calls_and_time(self):
        prof = Profiler()
        for _ in range(3):
            prof.add("queue.pop", perf_counter())
        profile = prof.build(wall_seconds=1.0, events=10, sim_time_ms=500.0)
        stats = profile.sections["queue.pop"]
        assert stats.calls == 3
        assert stats.seconds >= 0.0

    def test_build_carries_run_identity(self):
        profile = Profiler().build(wall_seconds=2.0, events=100, sim_time_ms=50.0)
        assert profile.runs == 1
        assert profile.events == 100
        assert profile.events_per_second == 50.0


class TestSectionStats:
    def test_us_per_call(self):
        assert SectionStats(calls=2, seconds=1e-3).us_per_call == 500.0
        assert SectionStats(calls=0, seconds=0.0).us_per_call == 0.0


class TestRunProfile:
    def _profile(self, wall=1.0, events=100, calls=10, seconds=0.5):
        return RunProfile(
            wall_seconds=wall,
            events=events,
            sim_time_ms=1000.0,
            sections={"queue.pop": SectionStats(calls=calls, seconds=seconds)},
        )

    def test_merge_sums_everything(self):
        merged = RunProfile.merge([self._profile(), self._profile(wall=3.0)])
        assert merged.runs == 2
        assert merged.wall_seconds == 4.0
        assert merged.events == 200
        assert merged.sections["queue.pop"].calls == 20
        assert merged.sections["queue.pop"].seconds == 1.0

    def test_merge_unions_section_names(self):
        a = RunProfile(wall_seconds=1.0, events=1, sim_time_ms=1.0,
                       sections={"a": SectionStats(1, 0.1)})
        b = RunProfile(wall_seconds=1.0, events=1, sim_time_ms=1.0,
                       sections={"b": SectionStats(2, 0.2)})
        merged = RunProfile.merge([a, b])
        assert set(merged.sections) == {"a", "b"}

    def test_dict_round_trip(self):
        profile = self._profile()
        restored = RunProfile.from_dict(profile.to_dict())
        assert restored == profile

    def test_accounted_and_unaccounted(self):
        profile = self._profile(wall=1.0, seconds=0.4)
        assert profile.accounted_seconds == 0.4

    def test_format_table_lists_sections(self):
        text = self._profile().format_table()
        assert "queue.pop" in text
        assert "(unaccounted)" in text
        assert "events/s" in text

    def test_format_table_top_reports_cut(self):
        profile = RunProfile(
            wall_seconds=1.0, events=1, sim_time_ms=1.0,
            sections={f"s{i}": SectionStats(1, 0.01 * i) for i in range(5)},
        )
        text = profile.format_table(top=2)
        assert "+3 more sections not shown" in text

    def test_summary_mentions_throughput(self):
        assert "events/s" in self._profile().summary()


class TestProfiledRuns:
    def test_run_simulation_attaches_profile(self):
        config = SimulationConfig(protocol="pbft", n=4, seed=5)
        result = run_simulation(config, profile=True)
        assert result.profile is not None
        assert result.profile.events == result.events_processed
        assert result.profile.sim_time_ms == result.latency
        # The engine's instrumented sections appear (dispatch always pops).
        assert "queue.pop" in result.profile.sections
        assert result.profile.sections["queue.pop"].calls == result.events_processed
        for name in result.profile.sections:
            assert name in ENGINE_SECTIONS

    def test_unprofiled_run_has_no_profile(self):
        result = run_simulation(SimulationConfig(protocol="pbft", n=4, seed=5))
        assert result.profile is None

    def test_profile_survives_pickle(self):
        result = run_simulation(
            SimulationConfig(protocol="pbft", n=4, seed=5), profile=True
        )
        restored = pickle.loads(pickle.dumps(result))
        assert restored.profile == result.profile

    def test_faulted_run_times_fault_engine(self):
        from repro.faults import parse_faults_spec

        config = SimulationConfig(
            protocol="pbft", n=4, seed=5, faults=parse_faults_spec("loss=0.05"),
            stall_timeout=60_000.0,
        )
        result = run_simulation(config, profile=True)
        assert result.profile is not None
        assert "faults.apply" in result.profile.sections


class TestParallelProfileMerge:
    def test_fleet_profile_merges_worker_profiles(self):
        from repro.parallel import ParallelRunner

        config = SimulationConfig(protocol="pbft", n=4, seed=0)
        runner = ParallelRunner(jobs=2, profile=True)
        entries = runner.run_repeat(config, repetitions=4)
        assert all(entry.profile is not None for entry in entries)
        fleet = runner.fleet_profile
        assert fleet is not None
        assert fleet.runs == 4
        assert fleet.events == sum(e.events_processed for e in entries)

    def test_repeat_simulation_profile_flag_serial(self):
        from repro.core.runner import repeat_simulation

        config = SimulationConfig(protocol="pbft", n=4, seed=0)
        entries = repeat_simulation(config, 2, profile=True)
        assert all(entry.profile is not None for entry in entries)

    def test_unprofiled_parallel_leaves_fleet_profile_unset(self):
        from repro.parallel import ParallelRunner

        runner = ParallelRunner(jobs=2)
        runner.run_repeat(SimulationConfig(protocol="pbft", n=4, seed=0), 2)
        assert runner.fleet_profile is None
