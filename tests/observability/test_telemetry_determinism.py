"""Telemetry must never change what a run computes.

The acceptance bar for the whole observability subsystem: with every
telemetry feature enabled (JSONL trace sink, hot-path profiler, debug
logging) or everything disabled, ``result_fingerprint`` is byte-identical.
The golden-digest table in ``tests/core/test_golden_determinism.py``
separately pins the digests themselves; these tests pin the *invariance*.
"""

from __future__ import annotations

import io

import pytest

from repro.core.config import SimulationConfig
from repro.core.results import result_fingerprint
from repro.core.runner import run_simulation
from repro.core.tracing import EventFilter
from repro.observability import JsonlSink, NullSink, configure_logging
from tests.core.test_golden_determinism import GOLDEN, golden_config

PROTOCOLS = ["pbft", "hotstuff-ns", "tendermint", "add-v3"]


def _config(protocol: str) -> SimulationConfig:
    return golden_config(protocol)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_golden_digest_invariant_under_full_telemetry(protocol, tmp_path):
    """The checked-in golden digests hold with every telemetry feature on."""
    config = _config(protocol)

    handler = configure_logging(level="debug", stream=io.StringIO())
    try:
        telemetry = run_simulation(
            config,
            sink=JsonlSink(tmp_path / f"{protocol}.jsonl"),
            profile=True,
        )
    finally:
        configure_logging(level="warning", stream=io.StringIO())
        handler.stream.close()

    assert result_fingerprint(telemetry) == GOLDEN[protocol]
    assert telemetry.profile is not None  # telemetry actually ran


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fingerprint_invariant_under_null_sink(protocol):
    config = _config(protocol)
    assert result_fingerprint(run_simulation(config)) == result_fingerprint(
        run_simulation(config, sink=NullSink())
    )


def test_filtered_sink_does_not_change_results(tmp_path):
    config = _config("pbft")
    sink = JsonlSink(
        tmp_path / "filtered.jsonl",
        filter=EventFilter.parse("kind=decide"),
    )
    assert result_fingerprint(run_simulation(config)) == result_fingerprint(
        run_simulation(config, sink=sink)
    )


def test_traced_fingerprint_matches_record_trace_runs(tmp_path):
    """A sink-backed trace is the same trace record_trace produces."""
    config = _config("pbft").replace(record_trace=True)
    in_memory = run_simulation(config)
    streamed = run_simulation(config, sink=JsonlSink(tmp_path / "t.jsonl"))
    assert result_fingerprint(
        in_memory, include_trace=True
    ) == result_fingerprint(streamed, include_trace=True)


def test_profile_is_outside_the_fingerprint():
    from repro.core.results import deterministic_dict

    config = _config("pbft")
    result = run_simulation(config, profile=True)
    assert "profile" not in deterministic_dict(result)
    assert result_fingerprint(result) == result_fingerprint(run_simulation(config))


def test_parallel_profiled_matches_serial_unprofiled():
    from repro.parallel import ParallelRunner

    config = _config("pbft")
    serial = [
        run_simulation(config.replace(seed=config.seed + i)) for i in range(3)
    ]
    runner = ParallelRunner(jobs=2, profile=True)
    parallel = runner.run_repeat(config, repetitions=3)
    for s, p in zip(serial, parallel):
        assert result_fingerprint(s) == result_fingerprint(p)
