"""Causal lineage: DAG construction, critical paths, quorum timelines.

Acceptance criteria pinned here (ISSUE, PR 5):

* golden digests are byte-identical with lineage + metrics enabled;
* for a pbft n=4 run the computed critical path ends at each decision and
  is chronological end to end;
* quorum-formation timelines reconcile exactly with the run's
  ``MessageCounts`` / trace message-kind totals.
"""

from __future__ import annotations

import pytest

from repro.core.results import result_fingerprint
from repro.core.runner import run_simulation
from repro.observability import (
    CausalityGraph,
    MemorySink,
    analyze_trace,
    critical_paths,
    quorum_timelines,
    render_critical_paths,
    render_quorum_timelines,
)
from tests.core.test_golden_determinism import GOLDEN, golden_config

PROTOCOLS = ["pbft", "hotstuff-ns", "tendermint", "add-v3"]


def _traced(protocol: str, **kwargs):
    """Run a golden config with a memory sink; return (result, events)."""
    sink = MemorySink()
    result = run_simulation(golden_config(protocol), sink=sink, **kwargs)
    return result, [event.to_dict() for event in sink.events()]


class TestLineageDeterminism:
    @pytest.mark.parametrize("protocol", sorted(GOLDEN))
    def test_golden_digest_with_lineage_and_metrics(self, protocol):
        """The acceptance bar: lineage + metrics leave every golden digest
        byte-identical — the whole subsystem costs zero RNG draws and zero
        extra events."""
        result = run_simulation(
            golden_config(protocol), metrics=True, lineage=True
        )
        assert result_fingerprint(result) == GOLDEN[protocol]
        assert result.run_metrics is not None

    def test_lineage_off_matches_golden_too(self):
        result = run_simulation(golden_config("pbft"), lineage=False)
        assert result_fingerprint(result) == GOLDEN["pbft"]


class TestCausalityGraph:
    def test_build_indexes_all_record_kinds(self):
        _, events = _traced("pbft")
        graph = CausalityGraph.build(events)
        assert graph.has_lineage
        assert graph.sends and graph.delivers and graph.decisions
        sends = sum(1 for e in events if e["kind"] == "send")
        delivers = sum(1 for e in events if e["kind"] == "deliver")
        assert len(graph.sends) == sends
        assert len(graph.delivers) == delivers

    def test_lineage_off_yields_no_causes(self):
        _, events = _traced("pbft", lineage=False)
        graph = CausalityGraph.build(events)
        assert not graph.has_lineage


class TestCriticalPath:
    def test_path_ends_at_each_decision(self):
        """One complete path per decision, terminating exactly at it."""
        result, events = _traced("pbft")
        graph = CausalityGraph.build(events)
        paths = critical_paths(graph)
        assert len(paths) == len(graph.decisions)
        assert len(graph.decisions) == 4 * len(result.decided_values)
        for path in paths:
            assert path.complete, path.render()
            last = path.steps[-1]
            assert last.kind == "decide"
            assert last.time == path.decision.time
            assert last.node == path.decision.node

    def test_path_is_chronological_from_a_root(self):
        _, events = _traced("pbft")
        for path in critical_paths(CausalityGraph.build(events)):
            times = [step.time for step in path.steps]
            assert times == sorted(times), "steps must be non-decreasing"
            assert path.steps[0].kind == "start"
            assert path.duration_ms >= 0.0
            assert path.hops >= 1  # a decision needs at least one network hop

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_paths_complete_across_protocols(self, protocol):
        _, events = _traced(protocol)
        paths = critical_paths(CausalityGraph.build(events))
        assert paths
        assert all(path.complete for path in paths)

    def test_lineage_off_paths_are_incomplete(self):
        _, events = _traced("pbft", lineage=False)
        paths = critical_paths(CausalityGraph.build(events))
        assert paths
        assert all(not path.complete for path in paths)
        assert all(len(path.steps) == 1 for path in paths)

    def test_render_mentions_every_step(self):
        _, events = _traced("pbft")
        paths = critical_paths(CausalityGraph.build(events))
        text = render_critical_paths(paths)
        assert "decision:" in text
        assert "network hops" in text

    def test_to_dict_schema(self):
        _, events = _traced("pbft")
        path = critical_paths(CausalityGraph.build(events))[0]
        data = path.to_dict()
        assert data["complete"] is True
        assert data["steps"][0]["kind"] == "start"
        assert data["steps"][-1]["kind"] == "decide"
        assert data["decision"]["node"] == path.decision.node


class TestQuorumTimeline:
    def test_quorum_closes_at_decision_trigger(self):
        """The k-th arrival is the delivery whose dispatch decided."""
        _, events = _traced("pbft")
        graph = CausalityGraph.build(events)
        timelines = quorum_timelines(graph)
        assert len(timelines) == len(graph.decisions)
        for timeline in timelines:
            assert timeline.msg_type == "COMMIT"
            assert timeline.closed_at == timeline.decision.time
            assert timeline.quorum_size >= 1
            assert timeline.wasted >= 0
            ranks = [time for time, _, _ in timeline.arrivals]
            assert ranks == sorted(ranks)

    def test_timelines_reconcile_with_message_counts(self):
        """Every arrival in every quorum timeline is a real delivery the
        run counted: summed per msg_type they can never exceed the trace's
        delivery totals, and the straggler is one of the senders."""
        result, events = _traced("pbft")
        graph = CausalityGraph.build(events)
        report = analyze_trace(events)
        assert report.delivered == result.counts.delivered
        timelines = quorum_timelines(graph)
        n = result.config.n
        for timeline in timelines:
            kind = report.message_kinds[timeline.msg_type]
            assert len(timeline.arrivals) <= kind.delivers
            assert 0 <= timeline.straggler < n
            straggler_rank = timeline.quorum_size - 1
            assert timeline.arrivals[straggler_rank][1] == timeline.straggler
        # All arrivals across all timelines of one node/slot are distinct
        # deliveries (msg_ids never repeat inside a timeline).
        for timeline in timelines:
            ids = [msg_id for _, _, msg_id in timeline.arrivals]
            assert len(ids) == len(set(ids))

    def test_exact_reconciliation_for_one_node(self):
        """For a fixed node, the COMMIT arrivals the timeline saw are
        exactly the COMMIT deliveries the trace recorded for it."""
        _, events = _traced("pbft")
        graph = CausalityGraph.build(events)
        for timeline in quorum_timelines(graph):
            node = timeline.decision.node
            slot = timeline.decision.slot
            expected = [
                e for e in events
                if e["kind"] == "deliver" and e["node"] == node
                and e.get("msg_type") == timeline.msg_type
                and e.get("slot") == slot
            ]
            assert len(timeline.arrivals) == len(expected)

    def test_render(self):
        _, events = _traced("pbft")
        timelines = quorum_timelines(CausalityGraph.build(events))
        text = render_quorum_timelines(timelines)
        assert "quorum closed" in text

    def test_to_dict_schema(self):
        _, events = _traced("pbft")
        timeline = quorum_timelines(CausalityGraph.build(events))[0]
        data = timeline.to_dict()
        assert data["quorum_size"] == timeline.quorum_size
        assert len(data["arrivals"]) == len(timeline.arrivals)
        assert data["wasted"] == timeline.wasted
