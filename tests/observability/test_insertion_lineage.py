"""Attacker-inserted messages stay accountable under lineage.

Satellite fix (PR 5): messages the attacker *inserts* (forge + inject)
are tagged ``origin="attacker"`` in the trace, so message-usage
reconciliation in ``repro inspect`` stays exact under insertion attacks
and the causality DAG can attribute forged traffic to the attack.
"""

from __future__ import annotations

from repro.core.config import AttackConfig, NetworkConfig, SimulationConfig
from repro.core.runner import run_simulation
from repro.observability import (
    CausalityGraph,
    MemorySink,
    analyze_trace,
    critical_paths,
)


def _equivocation_run():
    sink = MemorySink()
    config = SimulationConfig(
        protocol="pbft",
        n=4,
        lam=500.0,
        network=NetworkConfig(mean=50.0, std=10.0),
        attack=AttackConfig(name="pbft-equivocation"),
        num_decisions=1,
        seed=2022,
    )
    result = run_simulation(config, sink=sink)
    return result, [event.to_dict() for event in sink.events()]


class TestInsertedOrigin:
    def test_inserted_sends_carry_attacker_origin(self):
        result, events = _equivocation_run()
        assert result.terminated
        inserted = [
            e for e in events
            if e["kind"] == "send" and e.get("origin") == "attacker"
        ]
        # One forged PRE-PREPARE per honest replica (n - 1 = 3).
        assert len(inserted) == 3
        assert all(e.get("byzantine") for e in inserted)
        assert all(e["msg_type"] == "PRE-PREPARE" for e in inserted)

    def test_honest_sends_carry_no_origin(self):
        _, events = _equivocation_run()
        honest = [
            e for e in events
            if e["kind"] == "send" and not e.get("forged") and not e.get("byzantine")
        ]
        assert honest
        assert all("origin" not in e for e in honest)

    def test_inspect_reconciles_inserted_exactly(self):
        """TraceReport splits byzantine traffic into corrupted-source vs
        attacker-inserted; the split must add up exactly."""
        result, events = _equivocation_run()
        report = analyze_trace(events)
        forged = sum(
            1 for e in events
            if e["kind"] == "send" and e.get("origin") == "attacker"
        )
        assert report.inserted == forged == 3
        assert report.inserted <= report.byzantine_sent
        assert report.byzantine_sent == result.counts.byzantine
        assert report.sent == result.counts.sent
        assert "inserted" in report.to_dict()
        assert report.to_dict()["inserted"] == forged

    def test_forged_messages_join_the_causality_graph(self):
        """Inserted messages get a cause (the attacker's timer), so the
        DAG walk can pass through them instead of dangling."""
        _, events = _equivocation_run()
        graph = CausalityGraph.build(events)
        forged_sends = [
            send for send in graph.sends.values() if send.origin == "attacker"
        ]
        assert forged_sends
        assert all(send.cause is not None for send in forged_sends)
        # Every decision still has a complete critical path under attack.
        paths = critical_paths(graph)
        assert paths
        assert all(path.complete for path in paths)

    def test_fingerprint_unchanged_by_lineage_under_attack(self):
        from repro.core.results import result_fingerprint

        config = SimulationConfig(
            protocol="pbft",
            n=4,
            lam=500.0,
            network=NetworkConfig(mean=50.0, std=10.0),
            attack=AttackConfig(name="pbft-equivocation"),
            num_decisions=1,
            seed=2022,
        )
        plain = run_simulation(config, lineage=False)
        lineaged = run_simulation(config, lineage=True, metrics=True)
        assert result_fingerprint(plain) == result_fingerprint(lineaged)
