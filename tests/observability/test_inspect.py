"""Tests for trace forensics (the engine behind ``repro inspect``)."""

from __future__ import annotations

from repro.core.config import AttackConfig, SimulationConfig
from repro.core.runner import run_simulation
from repro.core.tracing import JsonlSink
from repro.observability.inspect import (
    analyze_trace,
    iter_trace_file,
    render_report,
)


def _traced(config: SimulationConfig):
    return run_simulation(config.replace(record_trace=True))


class TestTrafficAccounting:
    def test_totals_match_message_counts_benign(self):
        result = _traced(SimulationConfig(protocol="pbft", n=4, seed=11))
        report = analyze_trace(result.trace)
        assert report.sent == result.counts.sent
        assert report.byzantine_sent == result.counts.byzantine
        assert report.delivered == result.counts.delivered
        assert report.bytes_sent == result.counts.bytes_sent

    def test_totals_match_under_byzantine_attack(self):
        # Corrupted-source traffic must land in the byzantine column, not
        # the honest one — the trace tags controlled sends.
        config = SimulationConfig(
            protocol="pbft", n=7, seed=11,
            attack=AttackConfig(name="pbft-equivocation", params={"target": 0}),
            stall_timeout=120_000.0,
        )
        result = _traced(config)
        report = analyze_trace(result.trace)
        assert report.byzantine_sent == result.counts.byzantine
        assert report.sent == result.counts.sent
        assert report.delivered == result.counts.delivered
        assert report.bytes_sent == result.counts.bytes_sent

    def test_attacker_drops_are_counted(self):
        config = SimulationConfig(
            protocol="pbft", n=4, seed=2,
            attack=AttackConfig(name="partition", params={
                "groups": [[0, 1], [2, 3]], "end": 2000.0,
            }),
            stall_timeout=120_000.0,
        )
        result = _traced(config)
        report = analyze_trace(result.trace)
        assert report.dropped.get("drop", 0) == result.counts.dropped

    def test_environmental_drops_keyed_by_cause(self):
        from repro.faults import parse_faults_spec

        config = SimulationConfig(
            protocol="pbft", n=4, seed=4,
            faults=parse_faults_spec("loss=0.2"),
            stall_timeout=120_000.0,
        )
        result = _traced(config)
        report = analyze_trace(result.trace)
        assert report.dropped.get("loss", 0) == result.fault_counts.lost


class TestDisseminationReconciliation:
    """Accounting must stay exact when broadcasts are relayed: tracing
    forces the per-hop instrumented tier, which emits one ``send`` event per
    physical transmission (tagged ``relay=`` on non-origin hops), so the
    report totals reconcile against :class:`MessageCounts` with no slack."""

    def _run(self, mode: str, *, protocol: str = "pbft", n: int = 16,
             seed: int = 11, **kwargs):
        from repro.core.config import NetworkConfig

        return _traced(SimulationConfig(
            protocol=protocol, n=n, seed=seed,
            network=NetworkConfig(mean=50.0, std=10.0, dissemination=mode),
            **kwargs,
        ))

    def test_totals_exact_for_tree_and_gossip(self):
        for mode in ("tree", "gossip"):
            result = self._run(mode)
            report = analyze_trace(result.trace)
            assert report.sent == result.counts.sent
            assert report.byzantine_sent == result.counts.byzantine
            assert report.delivered == result.counts.delivered
            assert report.bytes_sent == result.counts.bytes_sent

    def test_relayed_sends_tag_the_physical_transmitter(self):
        result = self._run("tree")
        sends = [e.to_dict() for e in result.trace.events(kind="send")]
        relayed = [e for e in sends if "relay" in e]
        assert relayed, "a relayed n=16 run must contain overlay hops"
        n = 16
        for event in relayed:
            assert 0 <= event["relay"] < n
            # ``node`` stays the protocol-level origin; the relay field is
            # the physical transmitter of this hop.
            assert "node" in event
        # A depth >= 2 tree forwards some hops through an intermediate
        # relay distinct from the origin.
        assert any(e["relay"] != e["node"] for e in relayed)

    def test_drops_reconcile_under_loss_with_relaying(self):
        from repro.faults import parse_faults_spec

        for mode in ("tree", "gossip"):
            result = self._run(
                mode, seed=4,
                faults=parse_faults_spec("loss=0.15"),
                stall_timeout=240_000.0,
            )
            report = analyze_trace(result.trace)
            assert report.dropped.get("loss", 0) == result.fault_counts.lost
            assert report.sent == result.counts.sent
            assert report.delivered == result.counts.delivered

    def test_file_roundtrip_matches_in_memory_for_gossip(self, tmp_path):
        from repro.core.config import NetworkConfig

        path = tmp_path / "gossip.jsonl"
        config = SimulationConfig(
            protocol="pbft", n=16, seed=11,
            network=NetworkConfig(mean=50.0, std=10.0, dissemination="gossip"),
        )
        run_simulation(config, sink=JsonlSink(path))
        assert analyze_trace(path).to_dict() == analyze_trace(
            _traced(config).trace
        ).to_dict()


class TestProtocolProgress:
    def test_decisions_per_node(self):
        result = _traced(SimulationConfig(protocol="pbft", n=4, seed=11))
        report = analyze_trace(result.trace)
        assert report.decides == len(result.decisions)
        assert sum(report.decisions_per_node.values()) == report.decides
        assert set(report.decisions_per_node) == set(range(4))

    def test_view_timeline(self):
        # A partition forces view changes before healing.
        config = SimulationConfig(
            protocol="pbft", n=4, seed=2, lam=500.0,
            attack=AttackConfig(name="partition", params={
                "groups": [[0, 1], [2, 3]], "end": 2000.0,
            }),
            stall_timeout=120_000.0,
        )
        result = _traced(config)
        report = analyze_trace(result.trace)
        assert report.max_view == result.max_view
        if report.views:
            views = [span.view for span in report.views]
            assert views == sorted(views)
            for span in report.views:
                assert span.first_entry <= span.last_entry
                assert 1 <= span.nodes <= 4

    def test_timer_histogram(self):
        result = _traced(SimulationConfig(protocol="pbft", n=4, seed=11))
        report = analyze_trace(result.trace)
        expected = len(result.trace.events(kind="timer"))
        assert sum(report.timer_counts.values()) == expected


class TestStallForensics:
    def test_terminated_run_ends_on_progress(self):
        result = _traced(SimulationConfig(protocol="pbft", n=4, seed=11))
        report = analyze_trace(result.trace)
        assert report.last_progress_kind == "decide"
        assert report.tail_events == 0

    def test_stalled_run_has_silent_tail(self):
        # An unhealed partition of a 4-node pbft cluster cannot decide.
        config = SimulationConfig(
            protocol="pbft", n=4, seed=2, lam=500.0,
            attack=AttackConfig(name="partition", params={
                "groups": [[0, 1], [2, 3]], "end": 10_000_000.0,
            }),
            stall_timeout=10_000.0,
        )
        result = _traced(config)
        assert result.stalled
        report = analyze_trace(result.trace)
        assert report.decides == 0
        # The watchdog fired stall_timeout ms after the last progress event,
        # which is exactly where the trace's progress tracking ends up.
        assert report.last_progress_time == result.stall.last_progress

    def test_tail_census_of_synthetic_trace(self):
        events = [
            {"time": 1.0, "kind": "deliver", "node": 0, "msg_type": "VOTE"},
            {"time": 2.0, "kind": "timer", "node": 1, "name": "view-change"},
            {"time": 3.0, "kind": "timer", "node": 2, "name": "view-change"},
            {"time": 4.0, "kind": "send", "node": 1, "msg_type": "VIEW-CHANGE"},
            {"time": 5.0, "kind": "drop", "node": 1, "msg_type": "VIEW-CHANGE"},
        ]
        report = analyze_trace(events)
        assert report.last_progress_kind == "deliver"
        assert report.tail_events == 4
        assert report.tail_census == {
            "timer:view-change": 2,
            "send:VIEW-CHANGE": 1,
            "drop:VIEW-CHANGE": 1,
        }
        assert report.tail_span_ms == 4.0

    def test_progress_resets_tail(self):
        events = [
            {"time": 1.0, "kind": "timer", "node": 0, "name": "t"},
            {"time": 2.0, "kind": "decide", "node": 0, "slot": 0, "value": "v"},
        ]
        report = analyze_trace(events)
        assert report.tail_events == 0
        assert report.tail_census == {}

    def test_empty_trace(self):
        report = analyze_trace([])
        assert report.events == 0
        assert report.last_progress_time is None
        assert report.tail_span_ms == 0.0


class TestFileInput:
    def test_analyze_from_jsonl_file_matches_in_memory(self, tmp_path):
        path = tmp_path / "t.jsonl"
        config = SimulationConfig(protocol="pbft", n=4, seed=11)
        result = run_simulation(config, sink=JsonlSink(path))
        from_file = analyze_trace(path)
        in_memory = analyze_trace(_traced(config).trace)
        assert from_file.to_dict() == in_memory.to_dict()
        assert from_file.events == len(result.trace)

    def test_iter_trace_file_streams_dicts(self, tmp_path):
        path = tmp_path / "t.jsonl"
        run_simulation(
            SimulationConfig(protocol="pbft", n=4, seed=11), sink=JsonlSink(path)
        )
        events = list(iter_trace_file(path))
        assert events
        assert all("time" in e and "kind" in e for e in events)


class TestRendering:
    def test_render_report_sections(self):
        result = _traced(SimulationConfig(protocol="pbft", n=4, seed=11))
        report = analyze_trace(result.trace)
        text = render_report(report)
        assert "message usage by kind" in text
        assert "TOTAL" in text
        assert "stall forensics:" in text
        assert "decisions:" in text

    def test_render_report_with_profile(self):
        result = run_simulation(
            SimulationConfig(protocol="pbft", n=4, seed=11, record_trace=True),
            profile=True,
        )
        report = analyze_trace(result.trace)
        text = render_report(report, profile=result.profile)
        assert "hot-path profile" in text

    def test_top_caps_tables(self):
        result = _traced(SimulationConfig(protocol="pbft", n=4, seed=11))
        report = analyze_trace(result.trace)
        text = render_report(report, top=1)
        assert "more message kinds" in text

    def test_to_dict_is_json_friendly(self):
        import json

        result = _traced(SimulationConfig(protocol="pbft", n=4, seed=11))
        report = analyze_trace(result.trace)
        assert json.loads(json.dumps(report.to_dict())) == report.to_dict()
