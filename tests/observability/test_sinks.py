"""Tests for streaming trace sinks and event filters."""

from __future__ import annotations

import pickle
import tracemalloc

import pytest

from repro.core.tracing import Trace, TraceEvent
from repro.observability.sinks import (
    EventFilter,
    JsonlSink,
    MemorySink,
    NullSink,
    TraceBufferUnavailable,
    TraceSink,
)


def _event(time=1.0, kind="send", node=0, **fields):
    return TraceEvent(time=time, kind=kind, node=node, fields=fields)


class TestEventFilter:
    def test_default_admits_everything(self):
        f = EventFilter()
        assert f.admits(_event())
        assert f.admits(_event(kind="anything", node=-1, time=0.0))

    def test_kind_clause(self):
        f = EventFilter(kinds=frozenset({"send", "deliver"}))
        assert f.admits(_event(kind="send"))
        assert not f.admits(_event(kind="timer"))

    def test_node_clause_passes_system_events(self):
        f = EventFilter(nodes=frozenset({0, 1}))
        assert f.admits(_event(node=0))
        assert not f.admits(_event(node=5))
        # node=-1 means "not node-specific" and always passes.
        assert f.admits(_event(node=-1))

    def test_time_window(self):
        f = EventFilter(start=10.0, end=20.0)
        assert not f.admits(_event(time=9.9))
        assert f.admits(_event(time=10.0))
        assert f.admits(_event(time=19.9))
        assert not f.admits(_event(time=20.0))  # end is exclusive

    def test_parse_full_grammar(self):
        f = EventFilter.parse("kind=send,deliver; node=0,1; window=100:200")
        assert f.kinds == frozenset({"send", "deliver"})
        assert f.nodes == frozenset({0, 1})
        assert f.start == 100.0 and f.end == 200.0

    def test_parse_plural_aliases_and_open_window(self):
        f = EventFilter.parse("kinds=view; nodes=3; window=5000:")
        assert f.kinds == frozenset({"view"})
        assert f.nodes == frozenset({3})
        assert f.start == 5000.0 and f.end is None

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError):
            EventFilter.parse("colour=red")

    def test_parse_rejects_missing_equals(self):
        with pytest.raises(ValueError):
            EventFilter.parse("send,deliver")

    def test_describe_round_trips_the_intent(self):
        assert EventFilter().describe() == "<all events>"
        text = EventFilter.parse("kind=send; window=1:2").describe()
        assert "kind=send" in text and "window=1:2" in text


class TestMemorySink:
    def test_buffers_in_order(self):
        sink = MemorySink()
        sink.emit(_event(time=1.0))
        sink.emit(_event(time=2.0))
        assert [e.time for e in sink.events()] == [1.0, 2.0]
        assert sink.count == 2

    def test_filter_rejects_and_does_not_count(self):
        sink = MemorySink(filter=EventFilter(kinds=frozenset({"decide"})))
        sink.emit(_event(kind="send"))
        sink.emit(_event(kind="decide"))
        assert sink.count == 1
        assert [e.kind for e in sink.events()] == ["decide"]


class TestNullSink:
    def test_counts_and_discards(self):
        sink = NullSink()
        for _ in range(5):
            sink.emit(_event())
        assert sink.count == 5
        assert sink.events() == []


class TestBaseSink:
    def test_base_events_raises_buffer_unavailable(self):
        class WriteOnly(TraceSink):
            def _accept(self, event):
                pass

        sink = WriteOnly()
        sink.emit(_event())
        with pytest.raises(TraceBufferUnavailable):
            sink.events()


class TestJsonlSink:
    def test_round_trip_through_disk(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit(_event(time=1.0, kind="send", node=0, dest=1, size=42))
        sink.emit(_event(time=2.0, kind="decide", node=1, slot=0, value="x"))
        sink.close()
        events = sink.events()
        assert [e.to_dict() for e in events] == [
            {"time": 1.0, "kind": "send", "node": 0, "dest": 1, "size": 42},
            {"time": 2.0, "kind": "decide", "node": 1, "slot": 0, "value": "x"},
        ]

    def test_file_matches_to_jsonl_format(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = Trace(sink=JsonlSink(path))
        trace.record(1.5, "send", 0, dest=3, msg_type="VOTE", msg_id=7)
        trace.record(2.5, "decide", 3, slot=0, value="x")
        trace.close()
        reference = Trace()
        reference.record(1.5, "send", 0, dest=3, msg_type="VOTE", msg_id=7)
        reference.record(2.5, "decide", 3, slot=0, value="x")
        assert path.read_text().strip() == reference.to_jsonl()
        restored = Trace.from_jsonl(path.read_text())
        assert len(restored) == 2

    def test_no_file_until_first_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        assert sink.events() == []
        assert not path.exists()

    def test_truncates_stale_file_on_first_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("stale previous run\n")
        sink = JsonlSink(path)
        sink.emit(_event(time=1.0))
        sink.close()
        assert "stale" not in path.read_text()
        assert len(sink.events()) == 1

    def test_pickle_mid_stream_then_continue(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit(_event(time=1.0))
        restored = pickle.loads(pickle.dumps(sink))
        assert restored.count == 1
        restored.emit(_event(time=2.0))  # reopens in append mode
        restored.close()
        assert [e.time for e in restored.events()] == [1.0, 2.0]

    def test_filtered_recording(self, tmp_path):
        sink = JsonlSink(
            tmp_path / "t.jsonl",
            filter=EventFilter.parse("kind=decide"),
        )
        trace = Trace(sink=sink)
        trace.record(1.0, "send", 0, dest=1)
        trace.record(2.0, "decide", 0, slot=0, value="v")
        trace.close()
        assert len(trace) == 1
        assert trace.events(kind="decide")

    def test_bounded_memory_for_large_traces(self, tmp_path):
        """Recording 120k events through JsonlSink must not buffer them:
        its peak memory stays far below MemorySink's for the same stream."""
        n_events = 120_000

        def record_all(trace: Trace) -> None:
            for i in range(n_events):
                trace.record(float(i), "send", i % 7, dest=(i + 1) % 7, msg_id=i)
            trace.close()

        tracemalloc.start()
        jsonl_trace = Trace(sink=JsonlSink(tmp_path / "big.jsonl", buffer_bytes=1 << 16))
        record_all(jsonl_trace)
        _, jsonl_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        memory_trace = Trace(sink=MemorySink())
        record_all(memory_trace)
        _, memory_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert jsonl_trace.sink.count == n_events
        assert memory_trace.sink.count == n_events
        assert sum(1 for _ in open(tmp_path / "big.jsonl")) == n_events
        # The in-memory buffer holds 120k TraceEvent objects; the JSONL sink
        # holds one write buffer.  An order of magnitude is a loose bound.
        assert jsonl_peak < memory_peak / 10

    def test_iter_events_streams(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        for i in range(10):
            sink.emit(_event(time=float(i)))
        it = sink.iter_events()
        assert next(it).time == 0.0
        assert sum(1 for _ in it) == 9


class TestTraceWithSinks:
    def test_controller_sink_injection(self, tmp_path):
        from repro.core.config import SimulationConfig
        from repro.core.runner import run_simulation

        path = tmp_path / "run.jsonl"
        config = SimulationConfig(protocol="pbft", n=4, seed=3)
        result = run_simulation(config, sink=JsonlSink(path))
        assert result.terminated
        # record_trace defaults False, but an explicit sink enables tracing.
        assert len(result.trace) > 0
        assert path.exists()
        restored = Trace.from_jsonl(path.read_text())
        assert len(restored) == len(result.trace)

    def test_null_sink_counts_engine_events(self):
        from repro.core.config import SimulationConfig
        from repro.core.runner import run_simulation

        sink = NullSink()
        result = run_simulation(
            SimulationConfig(protocol="pbft", n=4, seed=3), sink=sink
        )
        assert sink.count > 0
        assert result.trace.events(kind="send") == []


class TestCrashSafeClose:
    """A run that dies mid-simulation must leave a readable trace file."""

    @staticmethod
    def _register_crasher():
        from repro.core.errors import ConfigurationError
        from repro.protocols.base import BFTProtocol
        from repro.protocols.registry import register_protocol

        try:
            @register_protocol("_trace-crash")
            class CrashAfterTraffic(BFTProtocol):
                """Crash-test double: generates real traffic, then raises
                from a message handler mid-run."""

                def on_start(self) -> None:
                    self.broadcast(type="PING")

                def on_message(self, message) -> None:
                    raise RuntimeError("injected mid-run crash")
        except ConfigurationError:
            pass  # already registered by a previous import

    def test_sink_is_context_manager(self, tmp_path):
        path = tmp_path / "ctx.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(TraceEvent(time=1.0, kind="send", node=0))
            assert sink is sink.__enter__()
        assert path.read_text().count("\n") == 1

    def test_context_manager_closes_on_exception(self, tmp_path):
        path = tmp_path / "ctx.jsonl"
        with pytest.raises(RuntimeError):
            with JsonlSink(path) as sink:
                sink.emit(TraceEvent(time=1.0, kind="send", node=0))
                raise RuntimeError("boom")
        # The buffered event reached disk despite the exception.
        restored = Trace.from_jsonl(path.read_text())
        assert len(restored) == 1
        assert restored.events(kind="send")

    def test_crashed_run_leaves_readable_trace(self, tmp_path):
        """Regression (PR 5): before the controller's try/finally, a run
        that raised left the JSONL sink unflushed — the trace file was
        missing its buffered tail or locked open.  Now every recorded
        event is on disk and parseable, line by line."""
        import json as json_module

        from repro.core.config import SimulationConfig
        from repro.core.runner import run_simulation

        self._register_crasher()
        path = tmp_path / "crash.jsonl"
        sink = JsonlSink(path)
        with pytest.raises(RuntimeError, match="injected mid-run crash"):
            run_simulation(
                SimulationConfig(protocol="_trace-crash", n=4, seed=7),
                sink=sink,
            )
        assert sink._handle is None  # closed: nothing left buffered
        assert path.exists()
        lines = path.read_text().splitlines()
        assert len(lines) == sink.count
        kinds = {json_module.loads(line)["kind"] for line in lines}
        assert "send" in kinds  # the pre-crash traffic made it to disk


class TestGzipSink:
    """``.jsonl.gz`` traces: written compressed, read transparently."""

    def _run_to(self, path):
        from repro.core.runner import run_simulation
        from tests.conftest import quick_config

        sink = JsonlSink(path)
        result = run_simulation(quick_config(record_trace=True), sink=sink)
        return sink, result

    def test_gz_suffix_writes_real_gzip(self, tmp_path):
        import gzip

        path = tmp_path / "run.jsonl.gz"
        sink, _ = self._run_to(path)
        raw = path.read_bytes()
        assert raw[:2] == b"\x1f\x8b"  # gzip magic: actually compressed
        lines = gzip.decompress(raw).decode().splitlines()
        assert len(lines) == sink.count

    def test_gz_trace_reads_like_plain_jsonl(self, tmp_path):
        from repro.observability.inspect import analyze_trace, iter_events

        gz_path = tmp_path / "run.jsonl.gz"
        plain_path = tmp_path / "run.jsonl"
        self._run_to(gz_path)
        self._run_to(plain_path)
        gz_events = list(iter_events(gz_path))
        assert gz_events == list(iter_events(plain_path))
        gz_report = analyze_trace(gz_path)
        assert gz_report.to_dict() == analyze_trace(plain_path).to_dict()

    def test_plain_suffix_stays_plain_text(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._run_to(path)
        text = path.read_text()  # would raise UnicodeDecodeError on gzip
        assert text.startswith("{")
