"""Simulated-time metrics registry, exporters, and fleet merge."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core.results import deterministic_dict, result_fingerprint
from repro.core.runner import run_simulation
from repro.observability.metrics import (
    DEFAULT_INTERVAL_MS,
    Counter,
    Histogram,
    HistogramData,
    MetricsRegistry,
    RunMetrics,
    series_name,
)
from tests.core.test_golden_determinism import golden_config


def _metered(protocol: str = "pbft", **kwargs) -> RunMetrics:
    result = run_simulation(golden_config(protocol), metrics=True, **kwargs)
    assert result.run_metrics is not None
    return result.run_metrics


class TestInstruments:
    def test_series_name_sorts_labels(self):
        assert series_name("m", {}) == "m"
        assert series_name("m", {"b": 1, "a": "x"}) == 'm{a="x",b="1"}'

    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_histogram_le_semantics(self):
        hist = Histogram(bounds=(10.0, 20.0))
        for value in (5.0, 10.0, 15.0, 25.0):
            hist.observe(value)
        # le-style: a value equal to a bound lands in that bound's bucket.
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.total == 55.0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(10.0, 5.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(5.0, 5.0))

    def test_registry_reregistration_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x", node=1) is not registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_registry_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            MetricsRegistry(interval=0.0)


class TestSampling:
    def test_advance_samples_at_boundaries(self):
        registry = MetricsRegistry(interval=10.0)
        counter = registry.counter("c")
        registry.advance(5.0)  # before the first boundary: nothing
        assert not registry._samples
        counter.inc()
        registry.advance(25.0)  # crosses 10 and 20
        times = sorted({t for t, _, _ in registry._samples})
        assert times == [10.0, 20.0]

    def test_finish_appends_final_sample(self):
        registry = MetricsRegistry(interval=10.0)
        registry.counter("c")
        registry.finish(25.0)
        times = sorted({t for t, _, _ in registry._samples})
        assert times == [10.0, 20.0, 25.0]

    def test_run_samples_cover_the_run(self):
        metrics = _metered()
        assert metrics.samples
        last_time = metrics.samples[-1][0]
        assert last_time == pytest.approx(metrics.sim_time_ms)
        assert metrics.interval_ms == DEFAULT_INTERVAL_MS

    def test_engine_counters_match_result(self):
        result = run_simulation(golden_config("pbft"), metrics=True)
        metrics = result.run_metrics
        assert metrics.counters["messages_sent"] == result.counts.sent
        assert metrics.counters["messages_delivered"] == result.counts.delivered
        assert metrics.counters["wire_bytes"] == result.counts.bytes_sent
        assert metrics.counters["decisions"] == 4 * len(result.decided_values)
        latency = metrics.histograms["delivery_latency_ms"]
        assert latency.count == result.counts.delivered
        per_node = sum(
            value for series, value in metrics.counters.items()
            if series.startswith("node_wire_bytes{")
        )
        assert per_node == result.counts.bytes_sent

    def test_gauges_snapshot_final_queue_state(self):
        """The run stops as soon as the decision target is met, so the
        final gauges reflect whatever was still queued — in particular,
        in-flight messages can never exceed total queue depth."""
        metrics = _metered()
        depth = metrics.gauges["queue_depth"]
        in_flight = metrics.gauges["in_flight_messages"]
        assert depth >= in_flight >= 0.0


class TestDeterminismContract:
    def test_run_metrics_outside_the_fingerprint(self):
        config = golden_config("pbft")
        result = run_simulation(config, metrics=True)
        assert "run_metrics" not in deterministic_dict(result)
        assert result_fingerprint(result) == result_fingerprint(
            run_simulation(config)
        )

    def test_metrics_interval_does_not_change_results(self):
        config = golden_config("pbft")
        coarse = run_simulation(config, metrics=1000.0)
        fine = run_simulation(config, metrics=1.0)
        assert result_fingerprint(coarse) == result_fingerprint(fine)
        assert len(fine.run_metrics.samples) > len(coarse.run_metrics.samples)


class TestMergeAndTransport:
    def test_merge_sums_counters_and_histograms(self):
        one = _metered()
        merged = RunMetrics.merge([one, one])
        assert merged.runs == 2
        assert merged.counters["messages_sent"] == 2 * one.counters["messages_sent"]
        hist = merged.histograms["delivery_latency_ms"]
        assert hist.count == 2 * one.histograms["delivery_latency_ms"].count

    def test_merge_sums_timeseries_pointwise(self):
        one = _metered()
        merged = RunMetrics.merge([one, one])
        one_points = {(t, s): v for t, s, v in one.samples}
        for time, series, value in merged.samples:
            assert value == pytest.approx(2 * one_points[(time, series)])

    def test_merge_rejects_mixed_intervals(self):
        a = run_simulation(golden_config("pbft"), metrics=10.0).run_metrics
        b = run_simulation(golden_config("pbft"), metrics=20.0).run_metrics
        with pytest.raises(ValueError):
            RunMetrics.merge([a, b])

    def test_merge_requires_input(self):
        with pytest.raises(ValueError):
            RunMetrics.merge([])

    def test_pickle_roundtrip(self):
        metrics = _metered()
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone == metrics

    def test_dict_roundtrip(self):
        metrics = _metered()
        clone = RunMetrics.from_dict(
            json.loads(json.dumps(metrics.to_dict()))
        )
        assert clone == metrics

    def test_parallel_fleet_metrics(self):
        from repro.parallel import ParallelRunner

        config = golden_config("pbft")
        runner = ParallelRunner(jobs=2, metrics=True)
        results = runner.run_repeat(config, repetitions=3)
        assert all(r.run_metrics is not None for r in results)
        fleet = runner.fleet_metrics
        assert fleet is not None
        assert fleet.runs == 3
        assert fleet.counters["messages_sent"] == sum(
            r.run_metrics.counters["messages_sent"] for r in results
        )


class TestExporters:
    def test_jsonl(self):
        metrics = _metered()
        lines = metrics.to_jsonl().splitlines()
        assert len(lines) == len(metrics.samples)
        record = json.loads(lines[0])
        assert set(record) == {"time", "metric", "value"}

    def test_csv(self):
        metrics = _metered()
        lines = metrics.to_csv().splitlines()
        assert lines[0] == "time,metric,value"
        assert len(lines) == len(metrics.samples) + 1

    def test_prometheus_snapshot(self):
        text = _metered().prometheus_text()
        assert "# TYPE repro_messages_sent counter" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_delivery_latency_ms histogram" in text
        assert 'repro_delivery_latency_ms_bucket{le="' in text
        assert 'le="+Inf"' in text
        assert "repro_delivery_latency_ms_sum" in text
        assert "repro_delivery_latency_ms_count" in text

    def test_prometheus_buckets_are_cumulative(self):
        metrics = _metered()
        data = metrics.histograms["delivery_latency_ms"]
        counts = []
        for line in metrics.prometheus_text().splitlines():
            if line.startswith('repro_delivery_latency_ms_bucket{le="'):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)
        assert counts[-1] == data.count

    def test_summary_and_table(self):
        metrics = _metered()
        assert "series" in metrics.summary()
        table = metrics.format_table()
        assert "final metric values" in table
        assert "histograms (end of run)" in table


class TestHistogramData:
    def test_dict_roundtrip(self):
        data = HistogramData(bounds=(1.0, 2.0), bucket_counts=(1, 2, 3),
                             total=9.0, count=6)
        assert HistogramData.from_dict(data.to_dict()) == data


class TestLabelEscaping:
    """Prometheus exposition-format escaping of label values."""

    def test_series_name_escapes_specials(self):
        name = series_name("m", {"path": 'a"b\\c\nd'})
        assert name == 'm{path="a\\"b\\\\c\\nd"}'

    def test_escaped_series_survive_prometheus_export(self):
        registry = MetricsRegistry(interval=100.0)
        registry.counter("odd", label='quote " back \\ slash').inc()
        registry.finish(100.0)
        text = registry.build(sim_time_ms=100.0).prometheus_text()
        line = next(l for l in text.splitlines() if l.startswith("repro_odd{"))
        assert '\\"' in line and "\\\\" in line
        assert "\n" not in line[:-1].replace("\\n", "")  # no raw newlines

    def test_health_gauges_reach_the_export(self):
        result = run_simulation(golden_config("pbft"), metrics=True, health=True)
        text = result.run_metrics.prometheus_text()
        assert "repro_health_anomalies" in text
