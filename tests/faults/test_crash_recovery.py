"""Crash + recovery lifecycle: rejoin round-trips, rejection, accounting."""

import pytest

from repro import run_simulation
from repro.core.config import NetworkConfig, SimulationConfig
from repro.core.errors import ConfigurationError
from repro.faults import parse_faults_spec
from repro.protocols.registry import available_protocols, get_protocol

RECOVERY_PROTOCOLS = [
    name for name in available_protocols() if get_protocol(name).supports_recovery
]
NO_RECOVERY_PROTOCOLS = [
    name for name in available_protocols() if not get_protocol(name).supports_recovery
]


def crash_config(protocol, spec="crash=1@200:2000", seed=7, **overrides):
    cls = get_protocol(protocol)
    defaults = dict(
        protocol=protocol,
        n=4,
        lam=300.0,
        network=NetworkConfig(mean=50.0, std=15.0),
        faults=parse_faults_spec(spec),
        num_decisions=5 if cls.pipelined else 3,
        seed=seed,
        max_time=600_000.0,
        allow_horizon=True,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def test_recovery_support_is_declared_where_expected():
    assert RECOVERY_PROTOCOLS == ["hotstuff-ns", "librabft", "pbft", "tendermint"]


@pytest.mark.parametrize("protocol", RECOVERY_PROTOCOLS)
def test_crash_recovery_round_trip(protocol):
    """A temporarily crashed replica rejoins, catches up on every decision
    it slept through, and the run terminates with safety intact."""
    result = run_simulation(crash_config(protocol))
    assert result.terminated
    assert result.fault_counts.crashes == 1
    assert result.fault_counts.recoveries == 1
    # A temporary crash is environmental downtime, not a Byzantine fault.
    assert 1 not in result.faulty
    per_node = {}
    per_slot = {}
    for decision in result.decisions:
        per_node.setdefault(decision.node, set()).add(decision.slot)
        per_slot.setdefault(decision.slot, set()).add(decision.value)
    required = set(range(result.config.num_decisions))
    assert required <= per_node[1], f"recovered node missed slots {required - per_node[1]}"
    for slot, values in per_slot.items():
        assert len(values) == 1, f"slot {slot} split: {values}"


@pytest.mark.parametrize("protocol", RECOVERY_PROTOCOLS)
def test_crash_drops_inflight_messages(protocol):
    result = run_simulation(crash_config(protocol))
    assert result.fault_counts.crash_dropped > 0


@pytest.mark.parametrize("protocol", NO_RECOVERY_PROTOCOLS)
def test_recovery_schedule_rejected_without_support(protocol):
    with pytest.raises(ConfigurationError, match="does not support crash recovery"):
        run_simulation(crash_config(protocol))


def test_permanent_crash_allowed_without_recovery_support():
    """A crash with no recovery time is a fail-stop any protocol tolerates;
    the victim is charged to the fault budget like an attacker corruption."""
    result = run_simulation(
        crash_config("algorand", spec="crash=1@200", num_decisions=1)
    )
    assert result.terminated
    assert result.fault_counts.crashes == 1
    assert result.fault_counts.recoveries == 0
    assert 1 in result.faulty


def test_crash_events_appear_in_trace():
    config = crash_config("pbft").replace(record_trace=True)
    result = run_simulation(config)
    kinds = [event.kind for event in result.trace.events()]
    assert "env-crash" in kinds
    assert "env-recover" in kinds
    crash = next(e for e in result.trace.events(kind="env-crash"))
    assert crash.time == 200.0


def test_multiple_staggered_crashes():
    """Two replicas crash in overlapping windows; both rejoin and the run
    completes.  While both are down the survivors cannot form a quorum —
    progress legitimately waits for the recoveries."""
    result = run_simulation(
        crash_config("pbft", spec="crash=1@200:900; crash=2@300:1100")
    )
    assert result.terminated
    assert result.fault_counts.crashes == 2
    assert result.fault_counts.recoveries == 2
    assert not result.faulty
