"""The --faults grammar, preset registry, and config serialization."""

import pytest

from repro.core.config import FaultScheduleConfig, FaultSpec, SimulationConfig
from repro.core.errors import ConfigurationError
from repro.faults import available_presets, get_preset, parse_faults_spec, register_preset


class TestParser:
    def test_single_rate_clause(self):
        schedule = parse_faults_spec("loss=0.1")
        assert [(s.kind, s.rate) for s in schedule.specs] == [("loss", 0.1)]

    def test_multi_clause_schedule_preserves_order(self):
        schedule = parse_faults_spec("loss=0.05; duplicate=0.1; corrupt=0.02")
        assert [s.kind for s in schedule.specs] == ["loss", "duplicate", "corrupt"]

    def test_delay_clause_rate_and_factor(self):
        (spec,) = parse_faults_spec("delay=0.2x5").specs
        assert (spec.kind, spec.rate, spec.factor) == ("delay", 0.2, 5.0)

    def test_delay_without_factor_rejected(self):
        with pytest.raises(ConfigurationError, match="rate and factor"):
            parse_faults_spec("delay=0.2")

    def test_window_forms(self):
        closed = parse_faults_spec("loss=0.1@1000:2500").specs[0]
        assert (closed.start, closed.end) == (1000.0, 2500.0)
        open_end = parse_faults_spec("loss=0.1@1000").specs[0]
        assert (open_end.start, open_end.end) == (1000.0, None)
        open_colon = parse_faults_spec("loss=0.1@1000:").specs[0]
        assert (open_colon.start, open_colon.end) == (1000.0, None)

    def test_link_down_takes_window_not_argument(self):
        (spec,) = parse_faults_spec("link-down@1000:2500").specs
        assert (spec.kind, spec.start, spec.end) == ("link-down", 1000.0, 2500.0)
        with pytest.raises(ConfigurationError, match="no argument"):
            parse_faults_spec("link-down=0.5")

    def test_crash_clause(self):
        temporary = parse_faults_spec("crash=3@1000:8000").specs[0]
        assert (temporary.kind, temporary.node) == ("crash", 3)
        assert (temporary.start, temporary.end) == (1000.0, 8000.0)
        permanent = parse_faults_spec("crash=3@1000").specs[0]
        assert permanent.end is None

    def test_unknown_kind_with_argument_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            parse_faults_spec("jitter=0.1")

    def test_bad_number_names_the_clause(self):
        with pytest.raises(ConfigurationError, match="loss=lots"):
            parse_faults_spec("loss=lots")

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError, match="window"):
            parse_faults_spec("loss=0.1@a:b")

    def test_empty_clauses_skipped(self):
        assert parse_faults_spec("loss=0.1; ; ").specs[0].kind == "loss"
        assert len(parse_faults_spec("loss=0.1; ;").specs) == 1

    def test_missing_argument_rejected(self):
        with pytest.raises(ConfigurationError, match="needs an argument"):
            parse_faults_spec("loss")
        # a bare word that is a *kind* is an incomplete clause, not a preset


class TestPresets:
    def test_builtin_presets_listed(self):
        names = available_presets()
        assert "unreliable-network" in names
        assert "lossy-network" in names

    def test_bare_preset_name_parses(self):
        schedule = parse_faults_spec("unreliable-network")
        assert [(s.kind, s.rate, s.factor) for s in schedule.specs] == [
            ("loss", 0.1, 1.0),
            ("delay", 0.2, 5.0),
        ]

    def test_windowed_preset_rewindows_every_spec(self):
        schedule = parse_faults_spec("unreliable-network@0:5000")
        assert all((s.start, s.end) == (0.0, 5000.0) for s in schedule.specs)

    def test_preset_returns_fresh_specs(self):
        first = get_preset("lossy-network")
        first[0].rate = 0.99
        assert get_preset("lossy-network")[0].rate == 0.1

    def test_unknown_preset_lists_available(self):
        with pytest.raises(ConfigurationError, match="unreliable-network"):
            parse_faults_spec("no-such-preset")

    def test_register_custom_preset(self):
        register_preset("_test-blip", lambda: [FaultSpec(kind="loss", rate=0.5)])
        assert parse_faults_spec("_test-blip").specs[0].rate == 0.5

    def test_preset_composes_with_clauses(self):
        schedule = parse_faults_spec("lossy-network; corrupt=0.01")
        assert [s.kind for s in schedule.specs] == ["loss", "corrupt"]


class TestConfigSerialization:
    def test_empty_schedule_leaves_to_dict_unchanged(self):
        config = SimulationConfig(protocol="pbft", n=4, lam=300.0)
        data = config.to_dict()
        assert "faults" not in data
        assert "stall_timeout" not in data

    def test_active_schedule_round_trips(self):
        config = SimulationConfig(
            protocol="pbft",
            n=4,
            lam=300.0,
            faults=parse_faults_spec("loss=0.1; crash=1@500:2000"),
            stall_timeout=10_000.0,
        )
        restored = SimulationConfig.from_dict(config.to_dict())
        assert restored.faults == config.faults
        assert restored.stall_timeout == 10_000.0
        assert restored.to_dict() == config.to_dict()

    def test_replace_accepts_spec_list(self):
        config = SimulationConfig(protocol="pbft", n=4, lam=300.0)
        updated = config.replace(faults=[FaultSpec(kind="loss", rate=0.2)])
        assert isinstance(updated.faults, FaultScheduleConfig)
        assert updated.faults.specs[0].rate == 0.2
        assert not config.faults.active()

    def test_zero_rate_fault_rejected(self):
        with pytest.raises(ConfigurationError, match="rate=0"):
            SimulationConfig(
                protocol="pbft", n=4, lam=300.0,
                faults=FaultScheduleConfig(specs=[FaultSpec(kind="loss", rate=0.0)]),
            )

    def test_crash_target_outside_cluster_rejected(self):
        with pytest.raises(ConfigurationError, match="n=4"):
            SimulationConfig(
                protocol="pbft", n=4, lam=300.0,
                faults=parse_faults_spec("crash=9@100:200"),
            )

    def test_describe_is_readable(self):
        schedule = parse_faults_spec("loss=0.1; delay=0.2x5@0:5000")
        assert "loss(0.1)" in schedule.describe()
        assert "delay(0.2x5)" in schedule.describe()
