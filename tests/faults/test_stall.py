"""The liveness watchdog: stalls become structured reports, not exceptions."""

import pytest

from repro import run_simulation
from repro.core.config import NetworkConfig, SimulationConfig
from repro.core.errors import LivenessTimeoutError
from repro.core.results import StallReport, deterministic_dict
from repro.faults import parse_faults_spec
from repro.protocols.base import BFTProtocol
from repro.protocols.registry import register_protocol


@register_protocol("_inert")
class InertProtocol(BFTProtocol):
    """Crash-test double: sends nothing, schedules nothing.  The event
    queue drains immediately, which is the watchdog's other trigger."""

    def on_start(self) -> None:
        pass


def stalling_config(spec="loss=1.0", stall_timeout=20_000.0, **overrides):
    defaults = dict(
        protocol="pbft",
        n=4,
        lam=300.0,
        network=NetworkConfig(mean=50.0, std=15.0),
        faults=parse_faults_spec(spec),
        stall_timeout=stall_timeout,
        num_decisions=1,
        seed=3,
        max_time=600_000.0,
        allow_horizon=True,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestWatchdog:
    def test_total_loss_stalls_instead_of_spinning_to_horizon(self):
        result = run_simulation(stalling_config())
        assert result.stalled
        assert not result.terminated
        report = result.stall
        assert isinstance(report, StallReport)
        assert "no honest progress" in report.reason
        assert report.detected_at == pytest.approx(report.last_progress + 20_000.0)
        assert report.detected_at < result.config.max_time
        assert report.stall_timeout == 20_000.0

    def test_stall_returns_result_even_when_horizon_would_raise(self):
        """The acceptance bar: a stalled run degrades into a result with a
        report, never into an opaque LivenessTimeoutError."""
        result = run_simulation(stalling_config(allow_horizon=False))
        assert result.stalled

    def test_without_watchdog_total_loss_raises_at_horizon(self):
        config = stalling_config(
            stall_timeout=None, allow_horizon=False, max_time=30_000.0
        )
        with pytest.raises(LivenessTimeoutError, match="horizon"):
            run_simulation(config)

    def test_report_contents(self):
        report = run_simulation(stalling_config()).stall
        # PBFT keeps rescheduling exponentially backed-off view timers, so
        # the pending census sees timers, not messages (all are dropped).
        assert any(label.startswith("timer:") for label in report.pending_events)
        assert set(report.node_last_activity) == {0, 1, 2, 3}
        assert report.fault_counts.lost > 0
        assert report.down_nodes == ()
        assert report.halted_nodes == ()
        assert "STALLED" in report.summary()

    def test_permanent_link_down_stalls(self):
        result = run_simulation(stalling_config(spec="link-down@0:"))
        assert result.stalled
        assert result.fault_counts.link_down > 0

    def test_stall_excluded_from_deterministic_payload(self):
        result = run_simulation(stalling_config())
        assert "stall" not in deterministic_dict(result)

    def test_summary_shows_stalled_status(self):
        result = run_simulation(stalling_config())
        assert "STALLED" in result.summary()


class TestQueueDrain:
    def test_drained_queue_with_watchdog_stalls(self):
        result = run_simulation(
            stalling_config(protocol="_inert", spec="", stall_timeout=1000.0)
        )
        assert result.stalled
        assert "queue drained" in result.stall.reason
        assert result.stall.pending_events == {}

    def test_drained_queue_without_watchdog_raises(self):
        config = stalling_config(
            protocol="_inert", spec="", stall_timeout=None, allow_horizon=False
        )
        with pytest.raises(LivenessTimeoutError, match="queue"):
            run_simulation(config)
