"""The fault injection engine: determinism, counters, scoping, composition."""

import pytest

from repro import repeat_simulation, result_fingerprint, run_simulation
from repro.core.results import deterministic_dict
from repro.core.config import (
    AttackConfig,
    FaultScheduleConfig,
    FaultSpec,
    NetworkConfig,
    SimulationConfig,
)
from repro.faults import parse_faults_spec


def faulty_config(spec_text, protocol="pbft", seed=11, **overrides):
    defaults = dict(
        protocol=protocol,
        n=4,
        lam=300.0,
        network=NetworkConfig(mean=50.0, std=15.0),
        faults=parse_faults_spec(spec_text),
        num_decisions=2,
        seed=seed,
        max_time=120_000.0,
        allow_horizon=True,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestDeterminism:
    def test_identical_configs_identical_fingerprints(self):
        config = faulty_config("loss=0.1; duplicate=0.1; corrupt=0.05; delay=0.2x3")
        first, second = run_simulation(config), run_simulation(config)
        assert result_fingerprint(first) == result_fingerprint(second)

    def test_crash_recovery_runs_are_deterministic(self):
        config = faulty_config("loss=0.05; crash=1@200:2000", num_decisions=3)
        first, second = run_simulation(config), run_simulation(config)
        assert result_fingerprint(first) == result_fingerprint(second)
        assert first.fault_counts == second.fault_counts

    def test_serial_and_parallel_fingerprints_match(self):
        config = faulty_config("unreliable-network; crash=2@500:3000", num_decisions=3)
        serial = repeat_simulation(config, 4, jobs=1)
        parallel = repeat_simulation(config, 4, jobs=2)
        assert [result_fingerprint(r) for r in serial] == [
            result_fingerprint(r) for r in parallel
        ]

    def test_seed_changes_fault_outcomes(self):
        a = run_simulation(faulty_config("loss=0.3", seed=1))
        b = run_simulation(faulty_config("loss=0.3", seed=2))
        assert result_fingerprint(a) != result_fingerprint(b)

    def test_fault_counters_excluded_from_fingerprint_payload(self):
        result = run_simulation(faulty_config("loss=0.2"))
        assert result.fault_counts.lost > 0
        data = deterministic_dict(result)
        assert "fault_counts" not in data
        assert "stall" not in data


class TestCounters:
    def test_loss_counter(self):
        result = run_simulation(faulty_config("loss=0.3"))
        assert result.fault_counts.lost > 0
        # Environmental drops are not charged to the attacker's column.
        assert result.counts.dropped == 0

    def test_duplicate_counter_and_idempotence(self):
        result = run_simulation(faulty_config("duplicate=1.0"))
        assert result.terminated
        assert result.fault_counts.duplicated > 0
        for slot, values in _values_per_slot(result).items():
            assert len(values) == 1, f"slot {slot} split under duplication"

    def test_corrupt_messages_are_rejected_not_delivered(self):
        result = run_simulation(faulty_config("corrupt=0.3"))
        counts = result.fault_counts
        assert counts.corrupted > 0
        assert counts.rejected > 0
        assert counts.rejected <= counts.corrupted + counts.duplicated

    def test_delay_counter(self):
        result = run_simulation(faulty_config("delay=0.5x4"))
        assert result.fault_counts.delayed > 0
        assert result.terminated

    def test_link_down_window_counter(self):
        result = run_simulation(faulty_config("link-down@0:400"))
        assert result.fault_counts.link_down > 0
        assert result.terminated  # the window closes, the protocol recovers


class TestScoping:
    def test_src_scope_limits_the_blast_radius(self):
        schedule = FaultScheduleConfig(
            specs=[FaultSpec(kind="loss", rate=1.0, src=[0])]
        )
        config = faulty_config("loss=0.1").replace(faults=schedule)
        result = run_simulation(config)
        # Only node 0's outbound traffic is silenced; a view change routes
        # around it and the run still terminates.
        assert result.terminated
        assert result.fault_counts.lost > 0

    def test_window_expires(self):
        result = run_simulation(faulty_config("loss=1.0@0:300"))
        assert result.terminated
        assert result.fault_counts.lost > 0


class TestComposition:
    def test_faults_compose_with_attacker(self):
        # The fail-stop victim consumes the whole fault budget f, so the
        # environment must not destroy messages (quorums need every
        # survivor) — delay inflation composes without breaking liveness.
        config = faulty_config(
            "delay=0.3x3", protocol="pbft", num_decisions=2,
        ).replace(attack=AttackConfig(name="failstop", params={"nodes": [3]}))
        result = run_simulation(config)
        assert result.terminated
        assert 3 in result.faulty
        assert result.fault_counts.delayed > 0
        for slot, values in _values_per_slot(result).items():
            assert len(values) == 1

    def test_schedule_order_is_stable(self):
        # Spec order is part of the substream naming: permuting the schedule
        # is a different experiment and may produce different outcomes.
        a = run_simulation(faulty_config("loss=0.2; corrupt=0.2"))
        b = run_simulation(faulty_config("corrupt=0.2; loss=0.2"))
        assert result_fingerprint(a) != result_fingerprint(b)


def _values_per_slot(result):
    per_slot = {}
    for decision in result.decisions:
        per_slot.setdefault(decision.slot, set()).add(decision.value)
    return per_slot
