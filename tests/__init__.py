"""Test package."""
