"""Test package."""
