"""Integration: every protocol terminates across a grid of configurations.

The liveness matrix is the simulator's broadest regression net: all eight
protocols, several cluster sizes, several network environments, benign and
fail-stop conditions.  Each cell asserts termination (and, implicitly via
the metrics collector, safety).
"""

from __future__ import annotations

import pytest

from repro import AttackConfig, run_simulation
from repro.analysis import decisions_for, network_for
from repro.core.config import SimulationConfig
from repro.protocols import available_protocols

PROTOCOLS = available_protocols()


def cell_config(
    protocol: str,
    n: int,
    mean: float,
    std: float,
    lam: float = 500.0,
    seed: int = 1,
    attack: AttackConfig | None = None,
) -> SimulationConfig:
    return SimulationConfig(
        protocol=protocol,
        n=n,
        lam=lam,
        network=network_for(protocol, mean, std, lam),
        attack=attack or AttackConfig(),
        num_decisions=decisions_for(protocol),
        seed=seed,
        max_time=1_800_000.0,
    )


class TestBenignLiveness:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("n", [4, 7, 16])
    def test_terminates(self, protocol, n):
        result = run_simulation(cell_config(protocol, n, mean=50.0, std=10.0))
        assert result.terminated

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_terminates_with_jitter(self, protocol):
        result = run_simulation(cell_config(protocol, 7, mean=100.0, std=80.0))
        assert result.terminated

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("seed", [2, 3, 4])
    def test_terminates_across_seeds(self, protocol, seed):
        result = run_simulation(cell_config(protocol, 7, mean=50.0, std=10.0, seed=seed))
        assert result.terminated

    @pytest.mark.parametrize(
        "distribution", ["constant", "uniform", "normal", "lognormal", "exponential"]
    )
    def test_pbft_under_every_distribution(self, distribution):
        config = cell_config("pbft", 7, mean=50.0, std=10.0)
        config = config.replace(network={"distribution": distribution})
        assert run_simulation(config).terminated


class TestFailStopLiveness:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_terminates_with_one_crash(self, protocol):
        # Crash the last node: avoids the scheduled first leaders, so the
        # test isolates quorum liveness from leader-schedule effects.
        result = run_simulation(
            cell_config(
                protocol, 7, mean=50.0, std=10.0,
                attack=AttackConfig(name="failstop", params={"nodes": [6]}),
            )
        )
        assert result.terminated

    @pytest.mark.parametrize("protocol", ["pbft", "add-v1", "add-v2", "algorand"])
    def test_terminates_at_max_resilience(self, protocol):
        from repro.protocols import get_protocol

        n = 16
        f = get_protocol(protocol).max_resilience(n)
        result = run_simulation(
            cell_config(
                protocol, n, mean=50.0, std=10.0,
                attack=AttackConfig(name="failstop", params={"count": f}),
            )
        )
        assert result.terminated


class TestEnvironmentEdges:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_constant_delay_network(self, protocol):
        config = cell_config(protocol, 4, mean=10.0, std=0.0)
        config = config.replace(network={"distribution": "constant", "std": 0.0})
        assert run_simulation(config).terminated

    def test_gst_network_pbft(self):
        """A partially-synchronous network that stabilizes at GST=2s."""
        config = cell_config("pbft", 7, mean=50.0, std=10.0)
        config = config.replace(network={"gst": 2_000.0, "pre_gst_factor": 20.0})
        result = run_simulation(config)
        assert result.terminated
        assert result.latency > 100.0

    def test_single_node_pbft(self):
        """Degenerate n=1, f=0: a cluster of one decides alone."""
        result = run_simulation(cell_config("pbft", 1, mean=10.0, std=1.0))
        assert result.terminated
