"""Property-based chaos fuzzing: random environmental faults never break safety.

The fuzz harness drives the first-class environmental fault layer
(:mod:`repro.faults`) — message loss, delay inflation, duplication, payload
corruption — at randomized rates.  Semantically this is an
unreliable/asynchronous network: protocols may lose *liveness* (runs are
horizon-bounded and allowed to not terminate) but an execution in which two
honest nodes decide different values is a bug — in the protocol
implementation, the quorum arithmetic, or the framework.  The metrics
collector raises on conflicting decisions, so every fuzz case doubles as an
end-to-end safety check.

Historically this suite carried an ad-hoc ``test-chaos`` attacker; its
semantics (10% loss, 20% of messages delayed 5x) are now the registered
``unreliable-network`` fault preset, and the fuzzing goes through the
declarative schedule instead — the attacker module stays free to model an
*adversary* on top of whatever the environment does.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import run_simulation
from repro.core.config import FaultScheduleConfig, FaultSpec, NetworkConfig, SimulationConfig
from repro.faults import get_preset, parse_faults_spec


def chaos_schedule(loss_rate, delay_rate, dup_rate=0.0, corrupt_rate=0.0):
    """A fault schedule equivalent to the old chaos attacker, extended."""
    specs = []
    if loss_rate > 0:
        specs.append(FaultSpec(kind="loss", rate=loss_rate))
    if delay_rate > 0:
        specs.append(FaultSpec(kind="delay", rate=delay_rate, factor=5.0))
    if dup_rate > 0:
        specs.append(FaultSpec(kind="duplicate", rate=dup_rate))
    if corrupt_rate > 0:
        specs.append(FaultSpec(kind="corrupt", rate=corrupt_rate))
    return FaultScheduleConfig(specs=specs)


def build(protocol, seed, loss_rate, delay_rate, n=7, **extra_rates):
    return SimulationConfig(
        protocol=protocol,
        n=n,
        lam=300.0,
        network=NetworkConfig(mean=50.0, std=15.0),
        faults=chaos_schedule(loss_rate, delay_rate, **extra_rates),
        num_decisions=1,
        seed=seed,
        max_time=120_000.0,
        allow_horizon=True,
    )


def assert_safe(result) -> None:
    per_slot: dict[int, set] = {}
    for decision in result.decisions:
        per_slot.setdefault(decision.slot, set()).add(decision.value)
    for slot, values in per_slot.items():
        assert len(values) == 1, f"slot {slot} split: {values}"


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss_rate=st.floats(min_value=0.0, max_value=0.3),
    delay_rate=st.floats(min_value=0.0, max_value=0.4),
)
def test_pbft_safe_under_chaos(seed, loss_rate, delay_rate):
    assert_safe(run_simulation(build("pbft", seed, loss_rate, delay_rate)))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss_rate=st.floats(min_value=0.0, max_value=0.25),
)
def test_hotstuff_safe_under_chaos(seed, loss_rate):
    assert_safe(run_simulation(build("hotstuff-ns", seed, loss_rate, 0.2)))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss_rate=st.floats(min_value=0.0, max_value=0.25),
)
def test_librabft_safe_under_chaos(seed, loss_rate):
    assert_safe(run_simulation(build("librabft", seed, loss_rate, 0.2)))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss_rate=st.floats(min_value=0.0, max_value=0.3),
)
def test_asyncba_safe_under_chaos(seed, loss_rate):
    assert_safe(run_simulation(build("async-ba", seed, loss_rate, 0.3)))


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    protocol=st.sampled_from(["add-v1", "add-v2", "add-v3", "algorand"]),
)
def test_sync_protocols_safe_under_chaos(seed, protocol):
    """Dropping messages *violates* the synchronous network assumption —
    liveness may go, but the lock/certificate machinery must still prevent
    disagreement."""
    assert_safe(run_simulation(build(protocol, seed, 0.15, 0.2)))


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    dup_rate=st.floats(min_value=0.0, max_value=0.3),
    corrupt_rate=st.floats(min_value=0.0, max_value=0.2),
)
def test_pbft_safe_under_duplication_and_corruption(seed, dup_rate, corrupt_rate):
    """Duplicated deliveries must be idempotent (vote counters dedupe) and
    corrupted payloads must be rejected, never acted on."""
    result = run_simulation(
        build("pbft", seed, 0.0, 0.0, dup_rate=dup_rate, corrupt_rate=corrupt_rate)
    )
    assert_safe(result)
    assert result.fault_counts.rejected <= result.fault_counts.corrupted + (
        result.fault_counts.duplicated
    )


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_unreliable_network_preset_matches_legacy_chaos(seed):
    """The registered preset carries the old chaos semantics: 10% loss plus
    20% of messages delayed 5x."""
    preset = get_preset("unreliable-network")
    assert [(s.kind, s.rate, s.factor) for s in preset] == [
        ("loss", 0.1, 1.0),
        ("delay", 0.2, 5.0),
    ]
    config = SimulationConfig(
        protocol="pbft",
        n=7,
        lam=300.0,
        network=NetworkConfig(mean=50.0, std=15.0),
        faults=parse_faults_spec("unreliable-network"),
        seed=seed,
        max_time=120_000.0,
        allow_horizon=True,
    )
    assert_safe(run_simulation(config))
