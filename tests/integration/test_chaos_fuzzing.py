"""Property-based chaos fuzzing: random network faults never break safety.

A randomized NETWORK-capability attacker drops and delays honest messages
at configurable rates.  That is semantically an unreliable/asynchronous
network: protocols may lose *liveness* (runs are horizon-bounded and
allowed to not terminate) but an execution in which two honest nodes decide
different values is a bug — in the protocol implementation, the quorum
arithmetic, or the framework.  The metrics collector raises on conflicting
decisions, so every fuzz case doubles as an end-to-end safety check.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import AttackConfig, Message, run_simulation
from repro.attacks import Attacker, Capability, register_attack
from repro.core.config import SimulationConfig
from repro.core.errors import ConfigurationError


@register_attack("test-chaos")
class ChaosAttacker(Attacker):
    """Drops or delays each honest message independently at random.

    Parameters:
        drop_rate: probability of dropping each message.
        delay_rate: probability of inflating a surviving message's delay.
        delay_factor: multiplier applied when inflating.
    """

    capabilities = Capability.NETWORK

    def setup(self) -> None:
        self.drop_rate = float(self.params.get("drop_rate", 0.1))
        self.delay_rate = float(self.params.get("delay_rate", 0.2))
        self.delay_factor = float(self.params.get("delay_factor", 5.0))
        self._rng = self.ctx.rng("chaos")

    def attack(self, message: Message):
        roll = self._rng.random()
        if roll < self.drop_rate:
            return []
        if roll < self.drop_rate + self.delay_rate:
            message.delay = (message.delay or 1.0) * self.delay_factor
            return [message]
        return None


def build(protocol, seed, drop_rate, delay_rate, n=7):
    from repro.core.config import NetworkConfig

    return SimulationConfig(
        protocol=protocol,
        n=n,
        lam=300.0,
        network=NetworkConfig(mean=50.0, std=15.0),
        attack=AttackConfig(
            name="test-chaos",
            params={"drop_rate": drop_rate, "delay_rate": delay_rate},
        ),
        num_decisions=1,
        seed=seed,
        max_time=120_000.0,
        allow_horizon=True,
    )


def assert_safe(result) -> None:
    per_slot: dict[int, set] = {}
    for decision in result.decisions:
        per_slot.setdefault(decision.slot, set()).add(decision.value)
    for slot, values in per_slot.items():
        assert len(values) == 1, f"slot {slot} split: {values}"


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    drop_rate=st.floats(min_value=0.0, max_value=0.3),
    delay_rate=st.floats(min_value=0.0, max_value=0.4),
)
def test_pbft_safe_under_chaos(seed, drop_rate, delay_rate):
    assert_safe(run_simulation(build("pbft", seed, drop_rate, delay_rate)))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    drop_rate=st.floats(min_value=0.0, max_value=0.25),
)
def test_hotstuff_safe_under_chaos(seed, drop_rate):
    assert_safe(run_simulation(build("hotstuff-ns", seed, drop_rate, 0.2)))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    drop_rate=st.floats(min_value=0.0, max_value=0.25),
)
def test_librabft_safe_under_chaos(seed, drop_rate):
    assert_safe(run_simulation(build("librabft", seed, drop_rate, 0.2)))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    drop_rate=st.floats(min_value=0.0, max_value=0.3),
)
def test_asyncba_safe_under_chaos(seed, drop_rate):
    assert_safe(run_simulation(build("async-ba", seed, drop_rate, 0.3)))


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    protocol=st.sampled_from(["add-v1", "add-v2", "add-v3", "algorand"]),
)
def test_sync_protocols_safe_under_chaos(seed, protocol):
    """Dropping messages *violates* the synchronous network assumption —
    liveness may go, but the lock/certificate machinery must still prevent
    disagreement."""
    assert_safe(run_simulation(build(protocol, seed, 0.15, 0.2)))


def test_chaos_attacker_requires_registration_once():
    with __import__("pytest").raises(ConfigurationError):
        register_attack("test-chaos")(ChaosAttacker)
