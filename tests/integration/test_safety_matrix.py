"""Integration: agreement holds for every protocol under stress.

Safety is checked online by the metrics collector (conflicting honest
decisions raise immediately), so each cell only needs to complete; the
explicit value-set assertions document the property being protected.
"""

from __future__ import annotations

import pytest

from repro import AttackConfig, run_simulation
from repro.analysis import decisions_for, network_for
from repro.core.config import SimulationConfig
from repro.protocols import available_protocols

PROTOCOLS = available_protocols()


def run(protocol, seed, attack=None, mean=60.0, std=40.0, n=7, lam=300.0):
    config = SimulationConfig(
        protocol=protocol,
        n=n,
        lam=lam,
        network=network_for(protocol, mean, std, lam),
        attack=attack or AttackConfig(),
        num_decisions=decisions_for(protocol),
        seed=seed,
        max_time=1_800_000.0,
    )
    return run_simulation(config)


def assert_agreement(result):
    per_slot: dict[int, set] = {}
    for decision in result.decisions:
        per_slot.setdefault(decision.slot, set()).add(decision.value)
    assert per_slot, "no decisions recorded"
    for slot, values in per_slot.items():
        assert len(values) == 1, f"slot {slot} decided {values}"


class TestAgreementUnderJitter:
    """std close to the mean: stress reordering and phase windows."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_agreement(self, protocol, seed):
        assert_agreement(run(protocol, seed))


class TestAgreementUnderFailStop:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_agreement_with_crashes(self, protocol):
        attack = AttackConfig(name="failstop", params={"nodes": [6]})
        assert_agreement(run(protocol, seed=5, attack=attack))


class TestAgreementUnderPartition:
    @pytest.mark.parametrize("protocol", ["pbft", "librabft", "algorand"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_agreement_across_partition(self, protocol, seed):
        attack = AttackConfig(name="partition", params={"end": 3_000.0})
        assert_agreement(run(protocol, seed, attack=attack))

    @pytest.mark.parametrize("mode", ["drop", "delay"])
    def test_agreement_both_partition_modes(self, mode):
        attack = AttackConfig(name="partition", params={"end": 3_000.0, "mode": mode})
        assert_agreement(run("pbft", seed=2, attack=attack))


class TestAgreementUnderByzantine:
    def test_pbft_equivocating_leader(self):
        attack = AttackConfig(name="pbft-equivocation", params={"target": 0})
        assert_agreement(run("pbft", seed=1, attack=attack))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_addv2_under_adaptive_attack(self, seed):
        attack = AttackConfig(name="add-adaptive", params={"budget": 2})
        assert_agreement(run("add-v2", seed, attack=attack))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_addv3_under_adaptive_attack(self, seed):
        attack = AttackConfig(name="add-adaptive", params={"budget": 2})
        assert_agreement(run("add-v3", seed, attack=attack))

    def test_addv1_under_static_attack(self):
        attack = AttackConfig(name="add-static", params={"count": 2})
        assert_agreement(run("add-v1", seed=1, attack=attack))


class TestAgreementUnderTargetedDelay:
    @pytest.mark.parametrize("protocol", ["pbft", "librabft"])
    def test_agreement_with_slowed_nodes(self, protocol):
        attack = AttackConfig(
            name="targeted-delay", params={"targets": [0, 1], "factor": 3.0}
        )
        assert_agreement(run(protocol, seed=3, attack=attack))
