"""Smoke tests: the shipped examples must run and say what they promise."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "time usage" in out
    assert "reproduced the result exactly" in out


def test_custom_protocol():
    out = run_example("custom_protocol.py")
    assert "echo-consensus: terminated" in out
    assert "could not break agreement" in out


def test_validate_against_baseline():
    out = run_example("validate_against_baseline.py")
    assert "MATCH" in out


def test_view_sync_visualization_well_estimated():
    # lambda=1000 keeps the run tiny; the chart machinery is the same.
    out = run_example("view_sync_visualization.py", "1000")
    assert "node   0 |" in out


@pytest.mark.slow
def test_compare_protocols_single_rep():
    out = run_example("compare_protocols.py", "1")
    assert "hotstuff-ns" in out and "pbft" in out
