"""Test package."""
