"""Tests for the computational-cost model (the paper's future work)."""

from __future__ import annotations

import pytest

from repro import run_simulation
from repro.analysis import ComputationModel, estimate_computation

from tests.conftest import quick_config


@pytest.fixture(scope="module")
def result():
    return run_simulation(quick_config(n=7, seed=3))


class TestOperationCounts:
    def test_one_signature_per_transmitted_message(self, result):
        estimate = estimate_computation(result)
        assert estimate.sign_ops == result.counts.sent + result.counts.byzantine

    def test_one_verification_per_delivery(self, result):
        estimate = estimate_computation(result)
        assert estimate.verify_ops == result.counts.delivered

    def test_aggregations_per_decision_and_node(self, result):
        estimate = estimate_computation(result)
        assert estimate.aggregate_ops == len(result.decided_values) * 7


class TestCostModel:
    def test_cpu_totals_combine_linearly(self, result):
        model = ComputationModel(sign_ms=1.0, verify_ms=2.0, aggregate_ms=3.0)
        estimate = estimate_computation(result, model)
        expected = (
            estimate.sign_ops * 1.0
            + estimate.verify_ops * 2.0
            + estimate.aggregate_ops * 3.0
        )
        assert estimate.cpu_ms_total == pytest.approx(expected)
        assert estimate.cpu_ms_per_node == pytest.approx(expected / 7)

    def test_zero_cost_model_recovers_pure_latency(self, result):
        model = ComputationModel(sign_ms=0.0, verify_ms=0.0, aggregate_ms=0.0)
        estimate = estimate_computation(result, model)
        assert estimate.adjusted_latency_ms == result.latency
        assert estimate.throughput_dps == pytest.approx(
            result.config.num_decisions / (result.latency / 1000.0)
        )

    def test_expensive_crypto_reduces_throughput(self, result):
        cheap = estimate_computation(result, ComputationModel())
        costly = estimate_computation(
            result, ComputationModel(sign_ms=5.0, verify_ms=15.0)
        )
        assert costly.throughput_dps < cheap.throughput_dps

    def test_negative_costs_rejected(self, result):
        with pytest.raises(ValueError):
            estimate_computation(result, ComputationModel(sign_ms=-1.0))


class TestProtocolContrast:
    def test_quadratic_protocols_pay_more_cpu(self):
        """PBFT verifies ~n^2 messages per decision; HotStuff ~n: the model
        must reflect the communication-complexity gap as CPU."""
        pbft = estimate_computation(run_simulation(quick_config(n=16, seed=2)))
        hotstuff = estimate_computation(
            run_simulation(
                quick_config(protocol="hotstuff-ns", n=16, num_decisions=10, seed=2)
            )
        )
        assert pbft.cpu_ms_total / 1 > hotstuff.cpu_ms_total / 10
