"""Aggregation over batches that contain :class:`RunFailure` entries."""

from __future__ import annotations

import pytest

from repro import RunFailure, WorkloadConfig, repeat_simulation, run_simulation
from repro.analysis.aggregate import partition_results, summarize, summarize_metric
from repro.faults import parse_faults_spec

from tests.conftest import quick_config


def _failure(seed: int = 1, index: int = 0) -> RunFailure:
    return RunFailure(
        config=quick_config(seed=seed),
        kind="error",
        error_type="RuntimeError",
        message="boom",
        run_index=index,
    )


class TestPartition:
    def test_partition_splits_and_preserves_order(self):
        results = repeat_simulation(quick_config(), 2)
        mixed = [results[0], _failure(index=1), results[1], _failure(index=3)]
        ok, failed = partition_results(mixed)
        assert ok == [results[0], results[1]]
        assert [f.run_index for f in failed] == [1, 3]


class TestSummarizeWithFailures:
    def test_failures_excluded_and_counted(self):
        results = repeat_simulation(quick_config(seed=5), 3)
        mixed = list(results) + [_failure(index=3), _failure(seed=9, index=4)]
        summary = summarize(mixed)
        clean = summarize(results)
        assert summary.failures == 2
        assert clean.failures == 0
        # Statistics come from the successful runs only.
        assert summary.latency == clean.latency
        assert summary.messages == clean.messages
        assert summary.terminated_fraction == clean.terminated_fraction

    def test_all_failed_raises(self):
        with pytest.raises(ValueError, match="all 2 runs failed"):
            summarize([_failure(index=0), _failure(index=1)])

    def test_empty_still_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_summarize_metric_skips_failures(self):
        result = run_simulation(quick_config(seed=2))
        stats = summarize_metric(
            [result, _failure()], metric=lambda r: float(r.events_processed)
        )
        assert stats.count == 1
        assert stats.mean == float(result.events_processed)


class TestMixedFleet:
    """One fleet mixing workload successes, a bare success, a stalled run,
    and hard failures — the shape a real ``--store`` sweep batch can take.
    Failure rows must never leak into any statistic, latency percentiles
    included; workload statistics aggregate only the runs that carried
    workload metrics."""

    @pytest.fixture(scope="class")
    def fleet(self):
        workload = WorkloadConfig(
            rate=20.0, clients=4, duration=1000.0, batch=8, batch_timeout=300.0
        )
        successes = [
            run_simulation(
                quick_config(
                    seed=seed, lam=1000.0, mean=250.0, std=50.0,
                    workload=workload,
                )
            )
            for seed in (1, 2)
        ]
        bare = run_simulation(quick_config(seed=3))
        stalled = run_simulation(
            quick_config(
                seed=4,
                faults=parse_faults_spec("loss=1.0"),
                stall_timeout=20_000.0,
                max_time=600_000.0,
                allow_horizon=True,
            )
        )
        assert stalled.stalled and not stalled.terminated
        return successes, bare, stalled

    def test_failures_never_reach_latency_percentiles(self, fleet):
        successes, bare, stalled = fleet
        mixed = [successes[0], _failure(index=1), bare, stalled,
                 successes[1], _failure(seed=9, index=5)]
        summary = summarize(mixed)
        clean = summarize([successes[0], bare, stalled, successes[1]])
        assert summary.failures == 2
        # Every statistic — aggregate and per-request percentiles alike —
        # is identical with the failure rows removed.
        assert summary.latency == clean.latency
        assert summary.latency_per_decision == clean.latency_per_decision
        assert summary.throughput == clean.throughput
        assert summary.request_latency_p50 == clean.request_latency_p50
        assert summary.request_latency_p99 == clean.request_latency_p99
        assert summary.latency.count == 4  # successes + bare + stalled

    def test_workload_stats_cover_only_workload_runs(self, fleet):
        successes, bare, stalled = fleet
        summary = summarize([successes[0], _failure(index=1), bare, stalled,
                             successes[1]])
        assert summary.throughput is not None
        assert summary.throughput.count == 2
        assert summary.request_latency_p50.count == 2
        assert summary.request_latency_p99.count == 2
        expected = {w.latency_p50_ms for w in
                    (successes[0].workload, successes[1].workload)}
        assert {summary.request_latency_p50.min,
                summary.request_latency_p50.max} == expected

    def test_stall_and_termination_accounting(self, fleet):
        successes, bare, stalled = fleet
        summary = summarize([successes[0], _failure(index=1), bare, stalled,
                             successes[1]])
        # Fractions are over successful rows only — failures are neither
        # terminated nor stalled, they are absent.
        assert summary.stalled_fraction == 0.25
        assert summary.terminated_fraction == 0.75

    def test_no_workload_runs_leave_throughput_unset(self, fleet):
        _successes, bare, stalled = fleet
        summary = summarize([bare, _failure(index=1), stalled])
        assert summary.throughput is None
        assert summary.request_latency_p50 is None
        assert summary.request_latency_p99 is None
        assert summary.saturated_fraction == 0.0


class TestHealthAggregation:
    """Fleet fairness summary over health-monitored batches."""

    def _workload_config(self, *, attacked: bool):
        from repro.workload import parse_workload_spec

        config = quick_config(num_decisions=1).replace(
            workload=parse_workload_spec("rate:60,clients:6,batch:8,duration:2000"),
            allow_horizon=True,
        )
        if attacked:
            config = config.replace(faults=parse_faults_spec("delay=0.7x6"))
        return config

    def test_unmonitored_batch_has_empty_health_summary(self):
        summary = summarize(repeat_simulation(quick_config(), 2))
        assert summary.anomaly_total == 0
        assert summary.min_fairness is None
        assert summary.mean_fairness is None
        assert summary.starved_clients == 0

    def test_fleet_fairness_rollup(self):
        results = repeat_simulation(
            self._workload_config(attacked=True), 3, health=250.0
        )
        summary = summarize(results)
        assert summary.anomaly_total == sum(r.health.anomaly_count for r in results)
        assert summary.min_fairness == min(r.health.min_fairness for r in results)
        assert summary.mean_fairness == pytest.approx(
            sum(r.health.min_fairness for r in results) / 3
        )
        assert summary.starved_clients == sum(
            len(r.health.starved_clients) for r in results
        )
        assert summary.starved_clients > 0

    def test_healthy_monitored_batch(self):
        summary = summarize(
            repeat_simulation(self._workload_config(attacked=False), 2, health=250.0)
        )
        assert summary.anomaly_total == 0
        assert summary.starved_clients == 0
        assert summary.min_fairness is not None
        assert summary.min_fairness <= summary.mean_fairness

    def test_failures_excluded_from_health_stats(self):
        monitored = repeat_simulation(
            self._workload_config(attacked=True), 2, health=250.0
        )
        mixed = [monitored[0], _failure(index=1), monitored[1]]
        summary = summarize(mixed)
        assert summary.failures == 1
        assert summary.anomaly_total == summarize(monitored).anomaly_total
