"""Aggregation over batches that contain :class:`RunFailure` entries."""

from __future__ import annotations

import pytest

from repro import RunFailure, repeat_simulation, run_simulation
from repro.analysis.aggregate import partition_results, summarize, summarize_metric

from tests.conftest import quick_config


def _failure(seed: int = 1, index: int = 0) -> RunFailure:
    return RunFailure(
        config=quick_config(seed=seed),
        kind="error",
        error_type="RuntimeError",
        message="boom",
        run_index=index,
    )


class TestPartition:
    def test_partition_splits_and_preserves_order(self):
        results = repeat_simulation(quick_config(), 2)
        mixed = [results[0], _failure(index=1), results[1], _failure(index=3)]
        ok, failed = partition_results(mixed)
        assert ok == [results[0], results[1]]
        assert [f.run_index for f in failed] == [1, 3]


class TestSummarizeWithFailures:
    def test_failures_excluded_and_counted(self):
        results = repeat_simulation(quick_config(seed=5), 3)
        mixed = list(results) + [_failure(index=3), _failure(seed=9, index=4)]
        summary = summarize(mixed)
        clean = summarize(results)
        assert summary.failures == 2
        assert clean.failures == 0
        # Statistics come from the successful runs only.
        assert summary.latency == clean.latency
        assert summary.messages == clean.messages
        assert summary.terminated_fraction == clean.terminated_fraction

    def test_all_failed_raises(self):
        with pytest.raises(ValueError, match="all 2 runs failed"):
            summarize([_failure(index=0), _failure(index=1)])

    def test_empty_still_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_summarize_metric_skips_failures(self):
        result = run_simulation(quick_config(seed=2))
        stats = summarize_metric(
            [result, _failure()], metric=lambda r: float(r.events_processed)
        )
        assert stats.count == 1
        assert stats.mean == float(result.events_processed)
