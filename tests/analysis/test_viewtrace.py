"""Tests for the view-synchronization analysis (Fig. 9 machinery)."""

from __future__ import annotations

from repro import run_simulation
from repro.analysis import (
    ViewTimeline,
    desync_statistics,
    extract_view_timelines,
    render_view_chart,
)
from repro.core.tracing import Trace

from tests.conftest import quick_config


def timeline(node, entries):
    times = tuple(t for t, _ in entries)
    views = tuple(v for _, v in entries)
    return ViewTimeline(node=node, times=times, views=views)


class TestViewTimeline:
    def test_view_at_steps(self):
        tl = timeline(0, [(0.0, 1), (10.0, 2), (20.0, 5)])
        assert tl.view_at(0.0) == 1
        assert tl.view_at(9.9) == 1
        assert tl.view_at(10.0) == 2
        assert tl.view_at(25.0) == 5

    def test_view_before_first_entry_is_zero(self):
        tl = timeline(0, [(5.0, 1)])
        assert tl.view_at(1.0) == 0


class TestExtraction:
    def test_from_synthetic_trace(self):
        trace = Trace()
        trace.record(0.0, "view", 0, view=1)
        trace.record(5.0, "view", 1, view=1)
        trace.record(9.0, "view", 0, view=2)
        timelines = extract_view_timelines(trace, n=2)
        assert timelines[0].views == (1, 2)
        assert timelines[1].views == (1,)

    def test_from_real_run(self):
        config = quick_config(protocol="hotstuff-ns", n=4, num_decisions=3,
                              record_trace=True)
        result = run_simulation(config)
        timelines = extract_view_timelines(result.trace, 4)
        assert all(tl.views for tl in timelines)
        for tl in timelines:
            assert list(tl.views) == sorted(tl.views), "views are monotone"


class TestDesyncStats:
    def test_fully_synchronized(self):
        tls = [timeline(i, [(0.0, 1), (10.0, 2)]) for i in range(4)]
        stats = desync_statistics(tls, horizon=20.0, step=1.0)
        assert stats.max_groups == 1
        assert stats.desync_time == 0.0

    def test_split_groups_detected(self):
        a = [timeline(i, [(0.0, 1)]) for i in range(2)]
        b = [timeline(i + 2, [(0.0, 3)]) for i in range(2)]
        stats = desync_statistics(a + b, horizon=10.0, step=1.0)
        assert stats.max_groups == 2
        assert stats.desync_time > 0
        assert stats.longest_desync > 0

    def test_transient_desync_interval(self):
        lead = timeline(0, [(0.0, 1), (5.0, 2)])
        lag = timeline(1, [(0.0, 1), (8.0, 2)])
        stats = desync_statistics([lead, lag], horizon=20.0, step=1.0)
        assert 2.0 <= stats.longest_desync <= 4.0

    def test_empty_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            desync_statistics([], horizon=10.0)


class TestChart:
    def test_renders_one_row_per_node(self):
        tls = [timeline(i, [(0.0, i + 1)]) for i in range(3)]
        chart = render_view_chart(tls, horizon=100.0, width=10)
        rows = [line for line in chart.splitlines() if line.startswith("node")]
        assert len(rows) == 3

    def test_glyphs_reflect_views(self):
        tls = [timeline(0, [(0.0, 1), (50.0, 2)])]
        chart = render_view_chart(tls, horizon=100.0, width=10)
        row = chart.splitlines()[1]
        assert "1" in row and "2" in row

    def test_empty_input(self):
        assert render_view_chart([], horizon=10.0) == "(no data)"
