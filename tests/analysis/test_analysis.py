"""Tests for aggregation, the experiment harness, and reporting."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ExperimentCell,
    SummaryStats,
    attack_loc_table,
    bench_repetitions,
    count_code_lines,
    decisions_for,
    format_ms,
    network_for,
    protocol_loc_table,
    render_series,
    render_table,
    run_cell,
    run_cell_raw,
    summarize,
    summarize_metric,
)
from repro.core.runner import run_simulation

from tests.conftest import quick_config


class TestSummaryStats:
    def test_basic_statistics(self):
        stats = SummaryStats.of([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == 2.5
        assert stats.min == 1.0
        assert stats.max == 4.0
        assert stats.count == 4
        assert stats.std == pytest.approx(1.118, rel=0.01)

    def test_single_value(self):
        stats = SummaryStats.of([7.0])
        assert stats.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SummaryStats.of([])

    def test_format(self):
        stats = SummaryStats.of([1000.0, 3000.0])
        assert stats.format(1 / 1000, "s") == "2.00 +- 1.00s"


class TestSummarize:
    def test_aggregates_results(self):
        results = [run_simulation(quick_config(seed=s)) for s in (1, 2, 3)]
        summary = summarize(results)
        assert summary.latency.count == 3
        assert summary.terminated_fraction == 1.0
        assert summary.messages.mean > 0

    def test_metric_callable(self):
        results = [run_simulation(quick_config(seed=s)) for s in (1, 2)]
        stats = summarize_metric(results, lambda r: float(r.events_processed))
        assert stats.count == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestExperimentHarness:
    def test_decisions_for_pipelined(self):
        assert decisions_for("hotstuff-ns") == 10
        assert decisions_for("librabft") == 10
        assert decisions_for("pbft") == 1

    def test_network_for_clips_synchronous(self):
        network = network_for("add-v1", mean=1000.0, std=300.0, lam=800.0)
        assert network.max_delay == pytest.approx(0.99 * 800.0)

    def test_network_for_leaves_psync_unbounded(self):
        network = network_for("pbft", mean=1000.0, std=300.0, lam=800.0)
        assert network.max_delay is None

    def test_explicit_bound_respected(self):
        network = network_for("pbft", mean=100.0, std=10.0, lam=800.0, max_delay=50.0)
        assert network.max_delay == 50.0

    def test_cell_config_follows_conventions(self):
        cell = ExperimentCell(protocol="hotstuff-ns", lam=700.0)
        config = cell.config()
        assert config.num_decisions == 10
        assert config.allow_horizon
        assert config.lam == 700.0

    def test_run_cell(self):
        cell = ExperimentCell(protocol="pbft", lam=500.0, mean=50.0, std=10.0)
        summary = run_cell(cell, repetitions=2)
        assert summary.latency.count == 2

    def test_run_cell_raw(self):
        cell = ExperimentCell(protocol="pbft", lam=500.0, mean=50.0, std=10.0)
        results = run_cell_raw(cell, 2)
        assert [r.config.seed for r in results] == [0, 1]

    def test_bench_repetitions_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_REPS", "17")
        assert bench_repetitions() == 17
        monkeypatch.delenv("REPRO_BENCH_REPS")
        assert bench_repetitions(default=4) == 4


class TestLoc:
    def test_count_excludes_noise(self):
        source = '"""Docstring."""\n\n# comment\nx = 1\n\ndef f():\n    """Doc."""\n    return x\n'
        assert count_code_lines(source) == 3  # x=1, def, return

    def test_protocol_table_covers_all(self):
        names = {entry.name for entry in protocol_loc_table()}
        assert len(names) == 9  # the paper's eight + the tendermint extension

    def test_attack_table_has_papers_three(self):
        names = {entry.name for entry in attack_loc_table()}
        assert {"partition", "add-static", "add-adaptive"} <= names

    def test_totals_positive(self):
        for entry in protocol_loc_table():
            assert entry.total > 0


class TestReport:
    def test_render_table_aligns(self):
        text = render_table("T", ["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_render_table_note(self):
        text = render_table("T", ["a"], [["1"]], note="hello")
        assert "Note: hello" in text

    def test_render_series(self):
        text = render_series("S", "x", [1, 2], {"proto": ["a", "b"]})
        assert "proto" in text and "a" in text

    def test_format_ms_scales(self):
        assert format_ms(500.0) == "500ms"
        assert format_ms(50_000.0) == "50.0s"
        assert "+-" in format_ms(500.0, 20.0)
