"""Tests for the attack registry's listing contract."""

from __future__ import annotations

import pytest

from repro.attacks.base import Attacker, Capability
from repro.attacks.registry import (
    available_attacks,
    get_attack,
    register_attack,
)
from repro.core.errors import ConfigurationError


@register_attack("_test-registry-double")
class _Double(Attacker):
    capabilities = Capability.NONE

    def attack(self, message):
        return None


class TestAvailableAttacks:
    def test_sorted(self):
        names = available_attacks()
        assert names == sorted(names)

    def test_lists_builtins(self):
        names = available_attacks()
        for name in ("adaptive", "failstop", "null", "partition",
                     "pbft-equivocation", "scenario", "targeted-delay"):
            assert name in names

    def test_underscore_names_are_unlisted_but_resolvable(self):
        assert "_test-registry-double" not in available_attacks()
        assert get_attack("_test-registry-double") is _Double

    def test_unknown_attack_error_quotes_only_listed_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_attack("no-such-attack")
        assert "_test-registry-double" not in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_attack("null")(_Double)
