"""Tests for the adaptive signal-driven attacker and its OBSERVE gating."""

from __future__ import annotations

import pytest

from repro import AttackConfig, Controller
from repro.attacks.base import Capability
from repro.core.errors import CapabilityError, ConfigurationError
from repro.core.runner import run_simulation
from repro.core.results import result_fingerprint

from tests.attacks.support import ScriptedAttacker, controller_with
from tests.conftest import quick_config


def _run(params, **config_kwargs):
    config_kwargs.setdefault("n", 4)
    config_kwargs.setdefault("seed", 7)
    config_kwargs.setdefault("num_decisions", 5)
    config_kwargs.setdefault("stall_timeout", 20000.0)
    config = quick_config(
        attack=AttackConfig(name="adaptive", params=params), **config_kwargs
    )
    return run_simulation(config)


class TestDelayAction:
    def test_delay_action_slows_the_run(self):
        baseline = run_simulation(
            quick_config(n=4, seed=7, num_decisions=5, stall_timeout=20000.0)
        )
        attacked = _run({"action": "delay", "signal": "critical",
                         "k": 2, "factor": 8.0})
        assert attacked.terminated
        assert attacked.latency > baseline.latency

    def test_no_corruption_under_delay_action(self):
        result = _run({"action": "delay", "factor": 4.0})
        assert result.faulty == frozenset()

    def test_deterministic(self):
        params = {"action": "delay", "signal": "busiest", "factor": 6.0}
        fp_a = result_fingerprint(_run(params))
        fp_b = result_fingerprint(_run(params))
        assert fp_a == fp_b

    @pytest.mark.parametrize("signal", ["critical", "stragglers", "busiest"])
    def test_all_signals_run(self, signal):
        result = _run({"action": "delay", "signal": signal, "factor": 3.0})
        assert result.terminated

    def test_fan_in_signal_runs_and_slows(self):
        baseline = run_simulation(
            quick_config(n=4, seed=7, num_decisions=5, stall_timeout=20000.0)
        )
        attacked = _run({"action": "delay", "signal": "fan-in",
                         "kind": "PREPARE", "k": 2, "factor": 8.0})
        assert attacked.terminated
        assert attacked.latency > baseline.latency

    def test_fan_in_signal_requires_kind(self):
        with pytest.raises(ConfigurationError, match="kind"):
            _run({"action": "delay", "signal": "fan-in"})

    def test_fan_in_signal_is_deterministic(self):
        params = {"action": "delay", "signal": "fan-in", "kind": "PREPARE",
                  "factor": 6.0}
        assert result_fingerprint(_run(params)) \
            == result_fingerprint(_run(params))


class TestCorruptAction:
    def test_corrupts_within_budget(self):
        result = _run({"action": "corrupt", "budget": 1, "period": 100.0},
                      protocol="pbft", n=7)
        assert len(result.faulty) == 1

    def test_budget_defaults_to_f(self):
        result = _run({"action": "corrupt", "period": 100.0},
                      protocol="pbft", n=7)
        assert len(result.faulty) <= 2  # f = 2 at n = 7

    def test_corrupt_action_swaps_network_for_byzantine(self):
        from repro.attacks.adaptive import AdaptiveAttacker

        delay = AdaptiveAttacker({"action": "delay"})
        corrupt = AdaptiveAttacker({"action": "corrupt"})
        assert Capability.NETWORK in delay.capabilities
        assert Capability.BYZANTINE not in delay.capabilities
        assert Capability.BYZANTINE in corrupt.capabilities
        assert Capability.NETWORK not in corrupt.capabilities

    def test_corruption_demand_mirrors_params(self):
        from repro.attacks.adaptive import AdaptiveAttacker

        assert AdaptiveAttacker.corruption_demand({"action": "delay"}, 3) == 0
        assert AdaptiveAttacker.corruption_demand({"action": "corrupt"}, 3) == 3
        assert AdaptiveAttacker.corruption_demand(
            {"action": "corrupt", "budget": 1}, 3
        ) == 1


class TestValidation:
    def test_bad_action_rejected(self):
        with pytest.raises(ConfigurationError, match="action"):
            _run({"action": "teleport"})

    def test_bad_signal_rejected(self):
        with pytest.raises(ConfigurationError, match="signal"):
            _run({"signal": "vibes"})

    def test_bad_period_rejected(self):
        with pytest.raises(ConfigurationError, match="period"):
            _run({"period": 0})


class TestSignalsGating:
    def test_signals_require_observe(self):
        attacker = ScriptedAttacker(Capability.NETWORK)
        controller = controller_with(attacker)
        with pytest.raises(CapabilityError, match="OBSERVE"):
            attacker.ctx.signals

    def test_signals_require_wants_signals_declaration(self):
        # OBSERVE alone is not enough: without wants_signals the controller
        # collected nothing, and pretending otherwise would be lying.
        attacker = ScriptedAttacker(Capability.OBSERVE)
        controller = controller_with(attacker)
        assert controller.signals is None
        with pytest.raises(CapabilityError, match="wants_signals"):
            attacker.ctx.signals

    def test_benign_runs_never_allocate_signals(self):
        controller = Controller(quick_config())
        assert controller.signals is None

    def test_adaptive_runs_allocate_signals(self):
        config = quick_config(
            attack=AttackConfig(name="adaptive", params={"action": "delay"})
        )
        controller = Controller(config)
        assert controller.signals is not None
        assert controller.signals.n == config.n


class TestOverlayRelays:
    def test_relays_require_network_capability(self):
        attacker = ScriptedAttacker(Capability.OBSERVE)
        controller_with(attacker)
        with pytest.raises(CapabilityError, match="NETWORK"):
            attacker.ctx.overlay_relays(0)

    def test_tree_relays_are_nonempty_and_exclude_root(self):
        attacker = ScriptedAttacker(Capability.NETWORK)
        controller_with(attacker, n=16, dissemination="tree")
        relays = attacker.ctx.overlay_relays(0)
        assert relays
        assert 0 not in relays
        assert all(0 <= r < 16 for r in relays)
        assert list(relays) == sorted(relays)

    @pytest.mark.parametrize("dissemination", ["full", "gossip"])
    def test_non_tree_overlays_have_no_static_relays(self, dissemination):
        attacker = ScriptedAttacker(Capability.NETWORK)
        controller_with(attacker, n=16, dissemination=dissemination, fanout=4)
        assert attacker.ctx.overlay_relays(0) == ()
