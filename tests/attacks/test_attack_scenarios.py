"""Behavioural tests for the packaged attack scenarios."""

from __future__ import annotations

import pytest

from repro import AttackConfig, run_simulation
from repro.core.errors import ConfigurationError

from tests.conftest import quick_config, sync_config


class TestFailStop:
    def test_crashes_requested_count(self):
        config = quick_config(
            n=7, attack=AttackConfig(name="failstop", params={"count": 2})
        )
        result = run_simulation(config)
        assert result.faulty == frozenset({0, 1})

    def test_explicit_victims(self):
        config = quick_config(
            n=7, attack=AttackConfig(name="failstop", params={"nodes": [3, 5]})
        )
        result = run_simulation(config)
        assert result.faulty == frozenset({3, 5})

    def test_default_count_is_f(self):
        config = quick_config(n=7, attack=AttackConfig(name="failstop"))
        result = run_simulation(config)
        assert len(result.faulty) == 2  # pbft f(7) = 2

    def test_budget_overflow_rejected(self):
        config = quick_config(
            n=7, attack=AttackConfig(name="failstop", params={"count": 3})
        )
        with pytest.raises(ConfigurationError):
            run_simulation(config)

    def test_delayed_crash(self):
        config = quick_config(
            n=7,
            num_decisions=2,
            attack=AttackConfig(name="failstop", params={"nodes": [6], "at": 200.0}),
            record_trace=True,
            max_time=120_000.0,
        )
        result = run_simulation(config)
        corrupt_events = result.trace.events(kind="corrupt")
        assert len(corrupt_events) == 1
        assert corrupt_events[0].time == pytest.approx(200.0)

    def test_crashed_nodes_send_nothing(self):
        config = quick_config(
            n=4,
            attack=AttackConfig(name="failstop", params={"nodes": [3]}),
            record_trace=True,
        )
        result = run_simulation(config)
        assert all(e.node != 3 for e in result.trace.events(kind="send"))

    def test_delayed_crash_victim_participates_before_at(self):
        """A mid-run crash (at > 0) is not retroactive: the victim's traffic
        and decisions from before the crash time stand."""
        config = quick_config(
            n=7,
            num_decisions=3,
            attack=AttackConfig(name="failstop", params={"nodes": [6], "at": 400.0}),
            record_trace=True,
            max_time=600_000.0,
        )
        result = run_simulation(config)
        sends = [e for e in result.trace.events(kind="send") if e.node == 6]
        assert sends, "victim must have spoken before the crash"
        assert all(e.time < 400.0 for e in sends)
        assert result.terminated
        assert result.faulty == frozenset({6})
        # Termination only needs the surviving honest nodes to finish.
        deciders = {d.node for d in result.decisions if d.time > 400.0}
        assert 6 not in deciders

    def test_delayed_crash_preserves_safety(self):
        config = quick_config(
            n=7,
            num_decisions=3,
            attack=AttackConfig(name="failstop", params={"nodes": [6], "at": 400.0}),
            max_time=600_000.0,
        )
        result = run_simulation(config)
        per_slot: dict[int, set] = {}
        for decision in result.decisions:
            per_slot.setdefault(decision.slot, set()).add(decision.value)
        assert all(len(values) == 1 for values in per_slot.values())


class TestPartitionAttack:
    def _config(self, mode="drop", end=2_000.0, **kwargs):
        return quick_config(
            n=7,
            attack=AttackConfig(name="partition", params={"end": end, "mode": mode}),
            max_time=600_000.0,
            record_trace=True,
            **kwargs,
        )

    def test_no_decision_during_partition(self):
        result = run_simulation(self._config())
        assert all(d.time > 2_000.0 for d in result.decisions)

    def test_drop_mode_drops_cross_traffic(self):
        result = run_simulation(self._config(mode="drop"))
        assert result.counts.dropped > 0

    def test_delay_mode_holds_messages(self):
        result = run_simulation(self._config(mode="delay"))
        assert result.counts.dropped == 0
        assert result.terminated

    def test_within_group_traffic_unaffected(self):
        result = run_simulation(self._config())
        early_deliveries = [
            e for e in result.trace.events(kind="deliver") if e.time < 2_000.0
        ]
        assert early_deliveries, "same-subnet messages must still flow"

    def test_custom_groups(self):
        config = quick_config(
            n=6,
            attack=AttackConfig(
                name="partition",
                params={"groups": [[0, 1, 2], [3, 4, 5]], "end": 1_500.0},
            ),
            max_time=600_000.0,
        )
        assert run_simulation(config).terminated


class TestADDStatic:
    def test_rejects_overbudget(self):
        config = sync_config(
            "add-v1", n=7, attack=AttackConfig(name="add-static", params={"count": 5})
        )
        with pytest.raises(ConfigurationError):
            run_simulation(config)

    def test_explicit_victims(self):
        config = sync_config(
            "add-v1",
            n=7,
            attack=AttackConfig(name="add-static", params={"victims": [1, 2]}),
            max_time=600_000.0,
        )
        result = run_simulation(config)
        assert result.faulty == frozenset({1, 2})


class TestADDAdaptive:
    def test_budget_limits_corruptions(self):
        config = sync_config(
            "add-v2",
            n=7,
            lam=200.0,
            attack=AttackConfig(name="add-adaptive", params={"budget": 1}),
            max_time=600_000.0,
        )
        result = run_simulation(config)
        assert len(result.faulty) == 1

    def test_attack_against_pbft_is_harmless(self):
        """The adaptive attacker keys on ADD+ credential messages; against
        other protocols it observes but never acts."""
        config = quick_config(
            n=7, attack=AttackConfig(name="add-adaptive"), max_time=600_000.0
        )
        result = run_simulation(config)
        assert result.terminated
        assert result.faulty == frozenset()


class TestTargetedDelay:
    def test_factor_slows_termination(self):
        baseline = run_simulation(quick_config(n=4, seed=9))
        slowed = run_simulation(
            quick_config(
                n=4,
                seed=9,
                attack=AttackConfig(
                    name="targeted-delay", params={"factor": 5.0}
                ),
                max_time=600_000.0,
            )
        )
        assert slowed.latency > baseline.latency * 2

    def test_match_type_requires_observe_and_works(self):
        from repro.attacks import Capability, get_attack

        attacker = get_attack("targeted-delay")(params={"match_type": "COMMIT"})
        assert Capability.OBSERVE in attacker.capabilities
        plain = get_attack("targeted-delay")(params={})
        assert Capability.OBSERVE not in plain.capabilities

    def test_untargeted_nodes_unaffected(self):
        config = quick_config(
            n=7,
            seed=9,
            attack=AttackConfig(
                name="targeted-delay",
                params={"targets": [6], "extra_delay": 10_000.0},
            ),
            max_time=600_000.0,
        )
        result = run_simulation(config)
        assert result.terminated
        # The six untouched nodes decide well before the slowed node hears;
        # full termination (which includes node 6) waits for the extra delay.
        early_deciders = {d.node for d in result.decisions if d.slot == 0 and d.time < 10_000.0}
        assert early_deciders == set(range(6))


class TestEquivocation:
    def test_forged_preprepares_counted_as_byzantine(self):
        config = quick_config(
            n=4,
            attack=AttackConfig(name="pbft-equivocation"),
            max_time=600_000.0,
        )
        result = run_simulation(config)
        assert result.counts.byzantine >= 3  # n-1 forged pre-prepares
