"""Test package."""
