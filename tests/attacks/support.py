"""Helpers for attack-framework tests: scripted attackers wired by hand."""

from __future__ import annotations

from typing import Callable, Iterable

from repro import Controller, Message
from repro.attacks.base import Attacker, AttackerContext, Capability

from tests.conftest import quick_config


class ScriptedAttacker(Attacker):
    """An attacker whose behaviour is a lambda supplied by the test."""

    def __init__(
        self,
        capabilities: Capability,
        on_attack: Callable[["ScriptedAttacker", Message], Iterable[Message] | None]
        | None = None,
    ) -> None:
        super().__init__({})
        self.capabilities = capabilities
        self._on_attack = on_attack
        self.seen: list[Message] = []

    def attack(self, message: Message):
        self.seen.append(message)
        if self._on_attack is None:
            return None
        return self._on_attack(self, message)


def controller_with(attacker: Attacker, **config_kwargs) -> Controller:
    """A controller whose attacker module is replaced by ``attacker``."""
    controller = Controller(quick_config(**config_kwargs))
    ctx = AttackerContext(controller, attacker.capabilities)
    attacker.bind(ctx)
    controller.attacker = attacker
    controller.attacker_ctx = ctx
    controller.network.attacker = attacker
    controller.network._attacker_ctx = ctx
    return controller


def submit(
    controller: Controller, source: int = 0, dest: int | None = None, **payload
) -> Message:
    """Push one message into the network module; returns it.

    The default destination is the source's neighbour, so the message
    always crosses the wire (loopbacks bypass the attacker by design).
    """
    if dest is None:
        dest = (source + 1) % controller.n
    payload.setdefault("type", "TEST")
    message = Message(source=source, dest=dest, payload=payload)
    controller.network.submit(message)
    return message


def pending_deliveries(controller: Controller) -> list[Message]:
    """Messages currently scheduled for delivery (drains the queue)."""
    from repro.core.events import MessageEvent

    return [
        event.message
        for event in controller.queue.drain()
        if isinstance(event, MessageEvent)
    ]
