"""Tests for the capability-enforced threat model.

These are the load-bearing tests of the attacker framework: every rule in
DESIGN.md's threat model (observation, dropping, modification, forgery,
corruption budget, static-vs-adaptive, no-after-the-fact retraction) is
checked against a scripted attacker that tries to overstep it.
"""

from __future__ import annotations

import pytest

from repro.attacks.base import Capability, REDACTED_PAYLOAD
from repro.core.errors import CapabilityError, CorruptionBudgetError

from tests.attacks.support import (
    ScriptedAttacker,
    controller_with,
    pending_deliveries,
    submit,
)


class TestObservation:
    def test_non_observer_sees_redacted_payload(self):
        attacker = ScriptedAttacker(Capability.NETWORK)
        controller = controller_with(attacker)
        submit(controller, payload_secret="s3cret")
        assert attacker.seen[0].payload == REDACTED_PAYLOAD

    def test_observer_sees_real_payload(self):
        attacker = ScriptedAttacker(Capability.OBSERVE)
        controller = controller_with(attacker)
        submit(controller, payload_secret="s3cret")
        assert attacker.seen[0].payload["payload_secret"] == "s3cret"

    def test_controlled_source_visible_without_observe(self):
        attacker = ScriptedAttacker(Capability.BYZANTINE)
        controller = controller_with(attacker)
        controller.attacker_ctx.corrupt(0)
        controller.clock.advance_to(1.0)
        submit(controller, source=0, mark="from-corrupted")
        assert attacker.seen[-1].payload.get("mark") == "from-corrupted"


class TestDropping:
    def test_network_attacker_may_drop(self):
        attacker = ScriptedAttacker(Capability.NETWORK, lambda self, m: [])
        controller = controller_with(attacker)
        submit(controller)
        assert pending_deliveries(controller) == []
        assert controller.metrics.counts.dropped == 1

    def test_capabilityless_drop_rejected(self):
        attacker = ScriptedAttacker(Capability.OBSERVE, lambda self, m: [])
        controller = controller_with(attacker)
        with pytest.raises(CapabilityError, match="dropped honest message"):
            submit(controller)

    def test_byzantine_may_drop_controlled_messages_only(self):
        attacker = ScriptedAttacker(
            Capability.BYZANTINE | Capability.ADAPTIVE,
            lambda self, m: [] if self.ctx.controls_message(m) else None,
        )
        controller = controller_with(attacker)
        controller.attacker_ctx.corrupt(0)
        controller.clock.advance_to(1.0)
        submit(controller, source=0)  # corrupted earlier: droppable
        submit(controller, source=1)  # honest: passes through
        deliveries = pending_deliveries(controller)
        assert [m.source for m in deliveries] == [1]


class TestNoRetraction:
    """Corruption at time t controls only messages sent strictly after t —
    the rule separating ADD+v2 from ADD+v3 (paper Fig. 8)."""

    def test_message_sent_at_corruption_instant_not_controlled(self):
        attacker = ScriptedAttacker(Capability.BYZANTINE | Capability.ADAPTIVE)
        controller = controller_with(attacker)
        controller.clock.advance_to(5.0)
        controller.attacker_ctx.corrupt(0)
        message = submit(controller, source=0)  # sent_at == corruption time
        assert not controller.attacker_ctx.controls_message(message)

    def test_message_sent_after_corruption_controlled(self):
        attacker = ScriptedAttacker(Capability.BYZANTINE | Capability.ADAPTIVE)
        controller = controller_with(attacker)
        controller.clock.advance_to(5.0)
        controller.attacker_ctx.corrupt(0)
        controller.clock.advance_to(5.001)
        message = submit(controller, source=0)
        assert controller.attacker_ctx.controls_message(message)

    def test_dropping_at_instant_message_rejected(self):
        attacker = ScriptedAttacker(
            Capability.BYZANTINE | Capability.ADAPTIVE, lambda self, m: []
        )
        controller = controller_with(attacker)
        controller.clock.advance_to(5.0)
        controller.attacker_ctx.corrupt(0)
        with pytest.raises(CapabilityError):
            submit(controller, source=0)


class TestModification:
    def test_honest_payload_modification_rejected(self):
        def tamper(self, message):
            message.payload["injected"] = True
            return [message]

        attacker = ScriptedAttacker(Capability.OBSERVE, tamper)
        controller = controller_with(attacker)
        with pytest.raises(CapabilityError, match="modified payload"):
            submit(controller)

    def test_controlled_payload_modification_allowed(self):
        def tamper(self, message):
            if self.ctx.controls_message(message):
                message.payload["injected"] = True
            return [message]

        attacker = ScriptedAttacker(
            Capability.BYZANTINE | Capability.ADAPTIVE | Capability.OBSERVE, tamper
        )
        controller = controller_with(attacker)
        controller.attacker_ctx.corrupt(0)
        controller.clock.advance_to(1.0)
        submit(controller, source=0)
        delivered = pending_deliveries(controller)
        assert delivered[0].payload["injected"] is True

    def test_delay_modification_needs_network(self):
        def slow_down(self, message):
            message.delay = (message.delay or 0) + 1_000.0
            return [message]

        attacker = ScriptedAttacker(Capability.OBSERVE, slow_down)
        controller = controller_with(attacker)
        with pytest.raises(CapabilityError, match="re-timed"):
            submit(controller)

    def test_delay_modification_with_network_allowed(self):
        def slow_down(self, message):
            message.delay = (message.delay or 0) + 1_000.0
            return [message]

        attacker = ScriptedAttacker(Capability.NETWORK, slow_down)
        controller = controller_with(attacker)
        submit(controller)
        delivered = pending_deliveries(controller)
        assert delivered[0].delay >= 1_000.0

    def test_redacted_payload_modification_rejected(self):
        def tamper(self, message):
            message.payload["x"] = 1
            return [message]

        attacker = ScriptedAttacker(Capability.NETWORK, tamper)
        controller = controller_with(attacker)
        with pytest.raises(CapabilityError, match="redacted"):
            submit(controller)

    def test_negative_delay_rejected(self):
        def corrupt_delay(self, message):
            message.delay = -1.0
            return [message]

        attacker = ScriptedAttacker(Capability.NETWORK, corrupt_delay)
        controller = controller_with(attacker)
        with pytest.raises(CapabilityError, match="invalid delay"):
            submit(controller)


class TestForgery:
    def test_forging_for_corrupted_source_allowed(self):
        def inject(self, message):
            forged = self.ctx.forge(source=0, dest=2, payload={"type": "FAKE"})
            return [message, forged]

        attacker = ScriptedAttacker(
            Capability.OBSERVE | Capability.BYZANTINE | Capability.ADAPTIVE, inject
        )
        controller = controller_with(attacker)
        controller.attacker_ctx.corrupt(0)
        controller.clock.advance_to(1.0)
        submit(controller, source=1)
        delivered = pending_deliveries(controller)
        assert any(m.forged and m.type == "FAKE" for m in delivered)
        assert controller.metrics.counts.byzantine == 1

    def test_forging_honest_source_rejected(self):
        attacker = ScriptedAttacker(Capability.BYZANTINE)
        controller = controller_with(attacker)
        with pytest.raises(CapabilityError, match="unforgeable"):
            controller.attacker_ctx.forge(source=1, dest=2, payload={"type": "FAKE"})

    def test_forging_without_byzantine_rejected(self):
        attacker = ScriptedAttacker(Capability.NETWORK)
        controller = controller_with(attacker)
        with pytest.raises(CapabilityError):
            controller.attacker_ctx.forge(source=0, dest=1, payload={})

    def test_returning_alien_message_rejected(self):
        from repro.core.message import Message

        def smuggle(self, message):
            return [message, Message(source=2, dest=3, payload={"type": "ALIEN"})]

        attacker = ScriptedAttacker(Capability.OBSERVE, smuggle)
        controller = controller_with(attacker)
        with pytest.raises(CapabilityError, match="neither received nor forged"):
            submit(controller)

    def test_inject_requires_forged_message(self):
        from repro.core.message import Message

        attacker = ScriptedAttacker(Capability.BYZANTINE)
        controller = controller_with(attacker)
        with pytest.raises(CapabilityError):
            controller.attacker_ctx.inject(Message(source=0, dest=1, payload={}))


class TestCorruption:
    def test_budget_enforced(self):
        attacker = ScriptedAttacker(Capability.BYZANTINE)
        controller = controller_with(attacker, n=4)  # f = 1
        controller.attacker_ctx.corrupt(0)
        with pytest.raises(CorruptionBudgetError):
            controller.attacker_ctx.corrupt(1)

    def test_corrupt_is_idempotent(self):
        attacker = ScriptedAttacker(Capability.BYZANTINE)
        controller = controller_with(attacker, n=4)
        controller.attacker_ctx.corrupt(0)
        controller.attacker_ctx.corrupt(0)  # no budget burned
        assert controller.attacker_ctx.budget_remaining == 0

    def test_static_attacker_cannot_corrupt_mid_run(self):
        attacker = ScriptedAttacker(Capability.BYZANTINE)
        controller = controller_with(attacker)
        controller.clock.advance_to(1.0)
        with pytest.raises(CapabilityError, match="ADAPTIVE"):
            controller.attacker_ctx.corrupt(0)

    def test_corruption_requires_byzantine(self):
        attacker = ScriptedAttacker(Capability.NETWORK | Capability.ADAPTIVE)
        controller = controller_with(attacker)
        with pytest.raises(CapabilityError, match="BYZANTINE"):
            controller.attacker_ctx.corrupt(0)

    def test_unknown_node_rejected(self):
        attacker = ScriptedAttacker(Capability.BYZANTINE)
        controller = controller_with(attacker, n=4)
        with pytest.raises(CapabilityError, match="no such node"):
            controller.attacker_ctx.corrupt(99)

    def test_corruption_halts_replica_and_marks_faulty(self):
        attacker = ScriptedAttacker(Capability.BYZANTINE)
        controller = controller_with(attacker, n=4)
        controller.attacker_ctx.corrupt(2)
        assert 2 in controller.metrics.faulty
        assert 2 in controller._halted
