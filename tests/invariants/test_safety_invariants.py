"""Property-based safety invariants under randomized adversity.

Each example draws a full adversarial setting — seed, an attacker (with
parameters), and an environmental fault schedule — with hypothesis, runs the
protocol, and checks the two invariants every BFT protocol must keep no
matter what the adversary and the environment do:

* **Agreement** — no two honest nodes decide different values for the same
  slot.  (The metrics collector also enforces this online and raises
  ``SafetyViolationError`` mid-run; the offline assertion re-derives it from
  the result so the invariant is checked end to end, including for nodes
  that later turned faulty.)
* **Contiguity** — each honest node's decided slots are exactly
  ``0..k-1``: slots are decided in order, with no gaps and no slot decided
  out of thin air.  Liveness may be lost under these settings (runs are
  horizon-bounded), but a *hole* in a node's decision log would mean the
  protocol skipped or lost an instance.

The settings deliberately cross the attacker module with the environmental
fault layer — the two adversity sources are architecturally independent
(faults are applied after the attacker, invisible to it), so their
composition is exactly where an unsound interaction would hide.

Complements ``tests/integration/test_safety_matrix.py`` (fixed named
scenarios, all protocols) and ``test_chaos_fuzzing.py`` (environmental
faults only): this suite randomizes over the *joint* space for the four
protocols the issue tracks, and adds the contiguity invariant.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import AttackConfig, run_simulation
from repro.analysis import decisions_for, network_for
from repro.core.config import FaultScheduleConfig, FaultSpec, SimulationConfig

N = 7  # f = 2: room for one Byzantine and one crashed node at once
LAM = 300.0
HORIZON = 240_000.0

PROTOCOLS = ["pbft", "hotstuff-ns", "tendermint", "algorand"]


# -- strategies --------------------------------------------------------------

def attacks() -> st.SearchStrategy[AttackConfig]:
    """One protocol-agnostic attacker with drawn parameters.

    Capabilities stay within ``f = 2``: ``failstop`` takes at most two
    victims, and the network-level attackers (partition, targeted delay)
    corrupt nobody.
    """
    return st.one_of(
        st.just(AttackConfig()),  # null attacker: the benign fast path
        st.builds(
            lambda nodes: AttackConfig(name="failstop", params={"nodes": sorted(nodes)}),
            st.sets(st.integers(min_value=0, max_value=N - 1), min_size=1, max_size=2),
        ),
        st.builds(
            lambda end, mode: AttackConfig(
                name="partition", params={"end": end, "mode": mode}
            ),
            st.floats(min_value=500.0, max_value=5_000.0),
            st.sampled_from(["drop", "delay"]),
        ),
        st.builds(
            lambda targets, factor: AttackConfig(
                name="targeted-delay",
                params={"targets": sorted(targets), "factor": factor},
            ),
            st.sets(st.integers(min_value=0, max_value=N - 1), min_size=1, max_size=2),
            st.floats(min_value=2.0, max_value=5.0),
        ),
    )


def fault_schedules() -> st.SearchStrategy[FaultScheduleConfig]:
    """Zero to three link-fault processes plus an optional crash.

    Rates are capped so runs stay plausibly live most of the time; the
    horizon bound absorbs the rest.  The crash is permanent (no recovery
    window), which every protocol must tolerate as a silent node.
    """
    loss = st.builds(
        lambda rate: FaultSpec(kind="loss", rate=rate),
        st.floats(min_value=0.01, max_value=0.2),
    )
    delay = st.builds(
        lambda rate, factor: FaultSpec(kind="delay", rate=rate, factor=factor),
        st.floats(min_value=0.01, max_value=0.3),
        st.floats(min_value=1.5, max_value=5.0),
    )
    duplicate = st.builds(
        lambda rate: FaultSpec(kind="duplicate", rate=rate),
        st.floats(min_value=0.01, max_value=0.2),
    )
    corrupt = st.builds(
        lambda rate: FaultSpec(kind="corrupt", rate=rate),
        st.floats(min_value=0.01, max_value=0.15),
    )
    crash = st.builds(
        lambda node, start: FaultSpec(kind="crash", node=node, start=start),
        st.integers(min_value=0, max_value=N - 1),
        st.floats(min_value=100.0, max_value=3_000.0),
    )
    link_mix = st.lists(
        st.one_of(loss, delay, duplicate, corrupt), min_size=0, max_size=3
    )
    return st.builds(
        lambda links, crashed: FaultScheduleConfig(specs=links + crashed),
        link_mix,
        st.lists(crash, min_size=0, max_size=1),
    )


def build_config(
    protocol: str, seed: int, attack: AttackConfig, faults: FaultScheduleConfig
) -> SimulationConfig:
    return SimulationConfig(
        protocol=protocol,
        n=N,
        lam=LAM,
        network=network_for(protocol, mean=50.0, std=15.0, lam=LAM),
        attack=attack,
        faults=faults,
        num_decisions=decisions_for(protocol),
        seed=seed,
        max_time=HORIZON,
        allow_horizon=True,
    )


# -- invariants --------------------------------------------------------------

def assert_agreement(result) -> None:
    """No two honest nodes decide different values for the same slot."""
    per_slot: dict[int, dict[int, object]] = {}
    for decision in result.decisions:
        if decision.node in result.faulty:
            continue
        per_slot.setdefault(decision.slot, {})[decision.node] = decision.value
    for slot, by_node in per_slot.items():
        values = set(by_node.values())
        assert len(values) <= 1, (
            f"agreement violated in slot {slot}: {by_node}"
        )


def assert_contiguous(result) -> None:
    """Each honest node's decided slots are exactly ``0..k-1``, in order."""
    per_node: dict[int, list[int]] = {}
    for decision in result.decisions:
        if decision.node in result.faulty:
            continue
        per_node.setdefault(decision.node, []).append(decision.slot)
    for node, slots in per_node.items():
        unique = sorted(set(slots))
        assert unique == list(range(len(unique))), (
            f"node {node} decided non-contiguous slots {unique}"
        )
        assert slots == sorted(slots), (
            f"node {node} reported slots out of order: {slots}"
        )


def check(protocol: str, seed: int, attack: AttackConfig, faults: FaultScheduleConfig) -> None:
    result = run_simulation(build_config(protocol, seed, attack, faults))
    assert_agreement(result)
    assert_contiguous(result)


# -- per-protocol properties -------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    attack=attacks(),
    faults=fault_schedules(),
)
def test_pbft_invariants(seed, attack, faults):
    check("pbft", seed, attack, faults)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    attack=attacks(),
    faults=fault_schedules(),
)
def test_hotstuff_invariants(seed, attack, faults):
    check("hotstuff-ns", seed, attack, faults)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    attack=attacks(),
    faults=fault_schedules(),
)
def test_tendermint_invariants(seed, attack, faults):
    check("tendermint", seed, attack, faults)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    attack=attacks(),
    faults=fault_schedules(),
)
def test_algorand_invariants(seed, attack, faults):
    """Algorand assumes a synchronous network; the drawn fault schedules
    violate that assumption freely.  Liveness may go — the committee
    machinery must still never split a slot."""
    check("algorand", seed, attack, faults)
