"""Scale-invariant properties of the dissemination overlays.

Two property families, complementing ``test_safety_invariants.py`` (which
fixes ``mode="full"``):

* **Safety is overlay-independent** — agreement and contiguity hold for
  every dissemination mode, fanout, system size up to 64, seed, and
  environmental fault schedule.  Relaying reshapes *when* copies arrive,
  never *what* honest nodes decide.

* **Reachability** — under timed ``link-down`` windows the tree and gossip
  overlays fall back to a breadth-first spanning of usable links; a
  broadcast must reach **exactly** the nodes reachable from the sender over
  usable directed links — nobody stranded behind a saturated relay, nobody
  smuggled across a down link.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import Controller, Message, run_simulation
from repro.core.config import (
    FaultScheduleConfig,
    FaultSpec,
    NetworkConfig,
    SimulationConfig,
)
from repro.core.events import MessageEvent
from repro.core.message import BROADCAST

from tests.conftest import quick_config
from tests.invariants.test_safety_invariants import (
    assert_agreement,
    assert_contiguous,
)

LAM = 300.0
HORIZON = 240_000.0

#: One partially-synchronous protocol per communication shape: all-to-all
#: broadcast phases (pbft), leader-centric chained voting (hotstuff-ns),
#: and round-based gossip of proposals (tendermint).
PROTOCOLS = ["pbft", "hotstuff-ns", "tendermint"]


# -- strategies --------------------------------------------------------------

def dissemination_settings() -> st.SearchStrategy[tuple[str, int]]:
    """(mode, fanout) pairs; fanout 0 is the auto sqrt(n) rule."""
    return st.one_of(
        st.just(("full", 0)),
        st.tuples(st.sampled_from(["tree", "gossip"]), st.sampled_from([0, 2, 3, 8])),
    )


def fault_schedules(n: int) -> st.SearchStrategy[FaultScheduleConfig]:
    """Benign-environment adversity, including the link-down windows that
    force the overlays onto the restricted (BFS) path mid-run."""
    loss = st.builds(
        lambda rate: FaultSpec(kind="loss", rate=rate),
        st.floats(min_value=0.01, max_value=0.15),
    )
    delay = st.builds(
        lambda rate, factor: FaultSpec(kind="delay", rate=rate, factor=factor),
        st.floats(min_value=0.01, max_value=0.2),
        st.floats(min_value=1.5, max_value=4.0),
    )
    link_down = st.builds(
        lambda src, dst, start, width: FaultSpec(
            kind="link-down", src=[src], dst=[dst], start=start, end=start + width
        ),
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
        st.floats(min_value=0.0, max_value=2_000.0),
        st.floats(min_value=100.0, max_value=3_000.0),
    )
    crash = st.builds(
        lambda node, start: FaultSpec(kind="crash", node=node, start=start),
        st.integers(min_value=0, max_value=n - 1),
        st.floats(min_value=100.0, max_value=3_000.0),
    )
    return st.builds(
        lambda links, crashed: FaultScheduleConfig(specs=links + crashed),
        st.lists(st.one_of(loss, delay, link_down), min_size=0, max_size=3),
        st.lists(crash, min_size=0, max_size=1),
    )


@st.composite
def battery_settings(draw):
    n = draw(st.sampled_from([4, 7, 16, 31, 64]))
    mode, fanout = draw(dissemination_settings())
    return (
        draw(st.sampled_from(PROTOCOLS)),
        n,
        mode,
        fanout,
        draw(st.integers(min_value=0, max_value=100_000)),
        draw(fault_schedules(n)),
    )


def build_config(protocol, n, mode, fanout, seed, faults) -> SimulationConfig:
    return SimulationConfig(
        protocol=protocol,
        n=n,
        lam=LAM,
        network=NetworkConfig(
            mean=50.0, std=15.0, dissemination=mode, fanout=fanout
        ),
        faults=faults,
        num_decisions=1,
        seed=seed,
        max_time=HORIZON,
        allow_horizon=True,
    )


# -- safety battery ----------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(drawn=battery_settings())
def test_safety_invariant_across_modes_and_scales(drawn):
    protocol, n, mode, fanout, seed, faults = drawn
    result = run_simulation(build_config(protocol, n, mode, fanout, seed, faults))
    assert_agreement(result)
    assert_contiguous(result)


@settings(max_examples=8, deadline=None)
@given(
    mode=st.sampled_from(["tree", "gossip"]),
    fanout=st.sampled_from([0, 2, 8]),
    seed=st.integers(min_value=0, max_value=100_000),
)
def test_benign_relayed_runs_terminate_at_n64(mode, fanout, seed):
    """Without adversity the overlays must never cost liveness: a relayed
    n=64 run terminates like the full fan-out does."""
    result = run_simulation(
        build_config("pbft", 64, mode, fanout, seed, FaultScheduleConfig())
    )
    assert result.terminated


# -- reachability ------------------------------------------------------------

def _reachable(n: int, down: set[tuple[int, int]], root: int) -> set[int]:
    """Directed BFS over the complement of ``down`` (the oracle)."""
    seen = {root}
    frontier = [root]
    while frontier:
        nxt = []
        for a in frontier:
            for b in range(n):
                if b not in seen and a != b and (a, b) not in down:
                    seen.add(b)
                    nxt.append(b)
        frontier = nxt
    return seen


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=16),
    mode=st.sampled_from(["tree", "gossip"]),
    fanout=st.sampled_from([0, 2]),
    seed=st.integers(min_value=0, max_value=10_000),
    data=st.data(),
)
def test_broadcast_reaches_exactly_the_reachable_set(n, mode, fanout, seed, data):
    """Under an active link-down window, a relayed broadcast is delivered to
    exactly the directed-reachable set — coverage is never lost to the
    fanout cap and never gained across a down link."""
    root = data.draw(st.integers(min_value=0, max_value=n - 1), label="root")
    edges = [(a, b) for a in range(n) for b in range(n) if a != b]
    down = data.draw(
        st.sets(st.sampled_from(edges), max_size=min(len(edges), 24)), label="down"
    )
    specs = [
        FaultSpec(kind="link-down", src=[a], dst=[b], start=0.0, end=None)
        for a, b in sorted(down)
    ]
    controller = Controller(
        quick_config(
            n=n,
            seed=seed,
            dissemination=mode,
            fanout=fanout,
            faults=FaultScheduleConfig(specs=specs),
        )
    )
    controller.network.submit(
        Message(source=root, dest=BROADCAST, payload={"type": "B"})
    )
    delivered = set()
    queue = controller.queue
    while queue:
        entry = queue.pop_entry()
        if type(entry[2]) is MessageEvent:
            dest = entry[3]
            delivered.add(entry[2].message.dest if dest is None else dest)
    assert delivered == _reachable(n, down, root)
