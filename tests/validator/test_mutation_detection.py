"""Mutation detection: the validator must catch perturbed replays.

These tests measure the *detection power* of :mod:`repro.validator.compare`
the way mutation testing measures a test suite: take a real run, replay it
(the replay is the candidate that legitimately matches), then inject a
minimal corruption — one flipped decision value, one dropped delivery, two
swapped events — and assert the comparison reports the mismatch.  A
comparator that silently passes any of these mutants would make the §III-D
cross-validation meaningless.
"""

from __future__ import annotations

import pytest

from repro import run_simulation
from repro.core.tracing import Trace, TraceEvent
from repro.validator import (
    compare_decisions,
    compare_event_sequences,
    replay_simulation,
)

from tests.conftest import quick_config


def mutate(trace: Trace, transform) -> Trace:
    """A copy of ``trace`` with ``transform`` applied to its event list.

    ``transform`` receives the list of :class:`TraceEvent` and returns the
    mutated list; the events are re-recorded into a fresh trace.
    """
    mutated = Trace(enabled=True)
    for event in transform(list(trace)):
        mutated.record(event.time, event.kind, event.node, **event.fields)
    return mutated


@pytest.fixture(scope="module")
def replayed():
    """(original trace, faithfully replayed trace) for one PBFT run."""
    config = quick_config(n=4, num_decisions=2, record_trace=True)
    original = run_simulation(config)
    candidate = replay_simulation(config, original.trace)
    return original.trace, candidate.trace


class TestFaithfulReplayMatches:
    def test_sanity_unmutated_replay_passes(self, replayed):
        """Baseline: without a mutation there is nothing to detect."""
        original, candidate = replayed
        assert compare_decisions(original, candidate).matches
        assert compare_event_sequences(original, candidate, kinds=("decide",)).matches


class TestFlippedDecision:
    @staticmethod
    def _flip_first_decide(events):
        for index, event in enumerate(events):
            if event.kind == "decide":
                fields = dict(event.fields, value="mutant-value")
                events[index] = TraceEvent(
                    time=event.time, kind=event.kind, node=event.node, fields=fields
                )
                return events
        raise AssertionError("run produced no decide events")

    def test_decision_comparison_reports_flip(self, replayed):
        original, candidate = replayed
        mutant = mutate(candidate, self._flip_first_decide)
        report = compare_decisions(original, mutant)
        assert not report.matches
        assert any("mutant-value" in m for m in report.mismatches)
        # The report names the disagreeing (node, slot), not just "differs".
        flipped = next(e for e in original if e.kind == "decide")
        assert any(f"node {flipped.node}" in m for m in report.mismatches)

    def test_event_sequence_comparison_reports_flip(self, replayed):
        original, candidate = replayed
        mutant = mutate(candidate, self._flip_first_decide)
        report = compare_event_sequences(original, mutant, kinds=("decide",))
        assert not report.matches


class TestDroppedDelivery:
    @staticmethod
    def _drop_last_delivery(events):
        for index in range(len(events) - 1, -1, -1):
            if events[index].kind == "deliver":
                del events[index]
                return events
        raise AssertionError("run produced no deliver events")

    def test_delivery_sequence_reports_drop(self, replayed):
        """The replay itself is the ground truth here: delivery fields are
        engine-specific (the original and the replay may disagree on them
        legitimately), but a delivery dropped *from the replay* must show
        up against the unperturbed replay."""
        _original, candidate = replayed
        mutant = mutate(candidate, self._drop_last_delivery)
        report = compare_event_sequences(candidate, mutant, kinds=("deliver",))
        assert not report.matches
        assert any("length differs" in m for m in report.mismatches)

    def test_dropped_decide_is_a_missing_decision(self, replayed):
        original, candidate = replayed

        def drop_first_decide(events):
            for index, event in enumerate(events):
                if event.kind == "decide":
                    del events[index]
                    return events
            raise AssertionError("run produced no decide events")

        mutant = mutate(candidate, drop_first_decide)
        report = compare_decisions(original, mutant)
        assert not report.matches
        assert any("never decided" in m for m in report.mismatches)


class TestReorderedEvents:
    def test_swapped_decides_detected(self, replayed):
        """Two different decide events swapped in place: same multiset,
        different order — a position-by-position comparison must object."""
        original, candidate = replayed

        def swap_two_decides(events):
            indices = [i for i, e in enumerate(events) if e.kind == "decide"]
            for a in indices:
                for b in indices:
                    if events[a].node != events[b].node or (
                        events[a].fields != events[b].fields
                    ):
                        events[a], events[b] = events[b], events[a]
                        return events
            raise AssertionError("needs two distinguishable decide events")

        mutant = mutate(candidate, swap_two_decides)
        report = compare_event_sequences(original, mutant, kinds=("decide",))
        assert not report.matches
