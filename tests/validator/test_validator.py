"""Tests for the validator module: replay and cross-checking."""

from __future__ import annotations

import pytest

from repro import run_simulation
from repro.baseline import run_baseline_simulation
from repro.core.errors import ValidationError
from repro.core.tracing import Trace
from repro.validator import (
    compare_decisions,
    compare_event_sequences,
    decisions_of,
    extract_delivery_schedule,
    replay_simulation,
)

from tests.conftest import quick_config


def traced(**kwargs):
    kwargs.setdefault("record_trace", True)
    return quick_config(**kwargs)


class TestScheduleExtraction:
    def test_delays_recovered_from_trace(self):
        result = run_simulation(traced(n=4))
        schedule = extract_delivery_schedule(result.trace)
        assert schedule, "a PBFT run must produce message streams"
        for delays in schedule.values():
            assert all(d > 0 for d in delays)

    def test_streams_keyed_by_route_and_type(self):
        result = run_simulation(traced(n=4))
        schedule = extract_delivery_schedule(result.trace)
        for (source, dest, msg_type) in schedule:
            assert source != dest
            assert isinstance(msg_type, str)


class TestReplay:
    def test_replaying_own_trace_reproduces_decisions(self):
        config = traced(n=4, num_decisions=2)
        original = run_simulation(config)
        replayed = replay_simulation(config, original.trace)
        assert compare_decisions(original.trace, replayed.trace).matches

    def test_replay_of_baseline_ground_truth(self):
        """The paper's §III-D validation: another engine's trace replayed
        here must yield the same decisions."""
        config = traced(n=7, num_decisions=2)
        ground_truth = run_baseline_simulation(config)
        replayed = replay_simulation(config, ground_truth.trace)
        report = compare_decisions(ground_truth.trace, replayed.trace)
        assert report.matches, report.mismatches

    def test_empty_ground_truth_rejected(self):
        with pytest.raises(ValidationError):
            replay_simulation(traced(), Trace(enabled=True))

    def test_replay_counts_unmatched_messages(self):
        """Replaying under a *different* protocol config drifts; the replay
        network falls back to median delays and counts the drift."""
        from repro.validator.replay import ReplayController

        ground_truth = run_simulation(traced(n=4, seed=1)).trace
        drifted_config = traced(n=4, seed=2, num_decisions=2)
        controller = ReplayController(drifted_config, ground_truth)
        controller.run()
        assert controller.unmatched_messages > 0


class TestComparison:
    def test_decisions_of(self):
        result = run_simulation(traced(n=4))
        decisions = decisions_of(result.trace)
        assert len(decisions) == 4
        assert all(slot == 0 for (_node, slot) in decisions)

    def test_missing_decision_detected(self):
        full = run_simulation(traced(n=4)).trace
        partial = Trace.from_jsonl(full.to_jsonl())
        # ground truth with an extra decision the candidate lacks
        full.record(9_999.0, "decide", 0, slot=7, value="ghost")
        report = compare_decisions(full, partial)
        assert not report.matches
        assert any("slot 7" in m for m in report.mismatches)

    def test_conflicting_decision_detected(self):
        a = Trace()
        a.record(1.0, "decide", 0, slot=0, value="x")
        b = Trace()
        b.record(1.0, "decide", 0, slot=0, value="y")
        report = compare_decisions(a, b)
        assert not report.matches

    def test_extra_candidate_decisions_allowed(self):
        truth = Trace()
        truth.record(1.0, "decide", 0, slot=0, value="x")
        candidate = Trace()
        candidate.record(1.0, "decide", 0, slot=0, value="x")
        candidate.record(2.0, "decide", 0, slot=1, value="more")
        assert compare_decisions(truth, candidate).matches

    def test_event_sequence_ignores_timestamps(self):
        a = Trace()
        a.record(1.0, "decide", 0, slot=0, value="x")
        b = Trace()
        b.record(500.0, "decide", 0, slot=0, value="x")
        assert compare_event_sequences(a, b).matches

    def test_event_sequence_length_mismatch(self):
        a = Trace()
        a.record(1.0, "decide", 0, slot=0, value="x")
        a.record(2.0, "decide", 0, slot=1, value="y")
        b = Trace()
        b.record(1.0, "decide", 0, slot=0, value="x")
        report = compare_event_sequences(a, b)
        assert not report.matches
        assert any("length differs" in m for m in report.mismatches)

    def test_summary_format(self):
        report = compare_decisions(Trace(), Trace())
        assert "MATCH" in report.summary()


class TestMismatchReporting:
    """The report must *describe* each disagreement, not just count them —
    the CLI prints these lines verbatim as the validation diagnosis."""

    def test_conflicting_values_both_named(self):
        a = Trace()
        a.record(1.0, "decide", 2, slot=3, value="x")
        b = Trace()
        b.record(1.0, "decide", 2, slot=3, value="y")
        report = compare_decisions(a, b)
        (mismatch,) = report.mismatches
        assert "node 2" in mismatch and "slot 3" in mismatch
        assert "'y'" in mismatch and "'x'" in mismatch

    def test_summary_counts_mismatches(self):
        a = Trace()
        a.record(1.0, "decide", 0, slot=0, value="x")
        a.record(1.0, "decide", 1, slot=0, value="x")
        report = compare_decisions(a, Trace())
        assert "2 MISMATCHES" in report.summary()
        assert report.checked_decisions == 2

    def test_sequence_position_mismatch_named(self):
        a = Trace()
        a.record(1.0, "decide", 0, slot=0, value="x")
        b = Trace()
        b.record(1.0, "decide", 0, slot=0, value="z")
        report = compare_event_sequences(a, b)
        assert any(m.startswith("event 0") for m in report.mismatches)
        assert report.checked_events == 1
