"""Test package."""
