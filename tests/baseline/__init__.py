"""Test package."""
