"""Tests for the BFTSim-style packet-level baseline simulator."""

from __future__ import annotations

import pytest

from repro import AttackConfig, run_simulation
from repro.baseline import run_baseline_simulation
from repro.baseline.packetsim import BaselineController
from repro.core.errors import BaselineCapacityError, ConfigurationError

from tests.conftest import quick_config


class TestProtocolOutcome:
    @pytest.mark.parametrize("protocol", ["pbft", "hotstuff-ns", "async-ba"])
    def test_terminates_like_main_engine(self, protocol):
        config = quick_config(protocol=protocol, n=4)
        result = run_baseline_simulation(config)
        assert result.terminated

    def test_latency_comparable_to_main_engine(self):
        config = quick_config(n=7, mean=100.0, std=10.0)
        ours = run_simulation(config)
        baseline = run_baseline_simulation(config)
        # Same protocol, same delays modulo engine mechanics: within ~20%.
        assert baseline.latency == pytest.approx(ours.latency, rel=0.25)

    def test_agreement_enforced(self):
        result = run_baseline_simulation(quick_config(n=7, num_decisions=2))
        values = {(d.slot, d.value) for d in result.decisions}
        assert len(values) == 2

    def test_deterministic(self):
        config = quick_config(n=4, seed=8)
        assert (
            run_baseline_simulation(config).latency
            == run_baseline_simulation(config).latency
        )


class TestCostStructure:
    def test_more_events_than_message_level(self):
        """Packet hops + ACKs: strictly more events per message."""
        config = quick_config(n=7)
        ours = run_simulation(config)
        baseline = run_baseline_simulation(config)
        assert baseline.events_processed > 2 * ours.events_processed

    def test_packet_trace_grows(self):
        controller = BaselineController(quick_config(n=4))
        controller.run()
        assert len(controller._packet_trace) > 0

    def test_virtual_memory_accounted(self):
        controller = BaselineController(quick_config(n=4))
        controller.run()
        assert controller.virtual_bytes > 0
        # One tuple per wire delivery; loopback self-deliveries never touch
        # the dataflow tables.
        assert 0 < controller._archived_tuples <= controller.metrics.counts.delivered


class TestMemoryWall:
    def test_small_clusters_fit(self):
        run_baseline_simulation(quick_config(n=16))

    def test_large_cluster_out_of_memory(self):
        with pytest.raises(BaselineCapacityError):
            run_baseline_simulation(quick_config(n=48, max_time=10_800_000.0))

    def test_custom_budget(self):
        with pytest.raises(BaselineCapacityError):
            run_baseline_simulation(quick_config(n=8), budget_bytes=1024)


class TestBenignOnly:
    def test_failstop_supported(self):
        config = quick_config(
            n=7, attack=AttackConfig(name="failstop", params={"nodes": [6]})
        )
        assert run_baseline_simulation(config).terminated

    @pytest.mark.parametrize("attack", ["partition", "add-adaptive", "pbft-equivocation"])
    def test_byzantine_attacks_rejected(self, attack):
        config = quick_config(n=7, attack=AttackConfig(name=attack))
        with pytest.raises(ConfigurationError, match="benign"):
            run_baseline_simulation(config)
