"""Tests for the baseline's link-layer primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.baseline.links import Link, MTU_BYTES, packetize


class TestLink:
    def test_serialization_delay(self):
        link = Link(bandwidth_bytes_per_ms=1000.0, propagation_ms=5.0)
        timing = link.transmit(2000, now=0.0)
        assert timing.start == 0.0
        assert timing.arrival == pytest.approx(2.0 + 5.0)

    def test_fifo_queueing(self):
        link = Link(bandwidth_bytes_per_ms=1000.0, propagation_ms=0.0)
        first = link.transmit(1000, now=0.0)  # occupies [0, 1]
        second = link.transmit(1000, now=0.5)  # must wait until 1.0
        assert first.arrival == pytest.approx(1.0)
        assert second.start == pytest.approx(1.0)
        assert second.arrival == pytest.approx(2.0)

    def test_idle_link_starts_immediately(self):
        link = Link(bandwidth_bytes_per_ms=1000.0, propagation_ms=0.0)
        link.transmit(1000, now=0.0)
        late = link.transmit(1000, now=10.0)
        assert late.start == 10.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Link(bandwidth_bytes_per_ms=0.0, propagation_ms=0.0)
        with pytest.raises(ValueError):
            Link(bandwidth_bytes_per_ms=1.0, propagation_ms=-1.0)


class TestPacketize:
    def test_small_message_one_packet(self):
        assert packetize(100) == [100]

    def test_exact_mtu(self):
        assert packetize(MTU_BYTES) == [MTU_BYTES]

    def test_split_with_remainder(self):
        assert packetize(MTU_BYTES * 2 + 10) == [MTU_BYTES, MTU_BYTES, 10]

    def test_empty_message_still_costs_headers(self):
        assert packetize(0) == [64]

    @given(st.integers(min_value=1, max_value=10 * MTU_BYTES))
    def test_property_sizes_sum_to_message(self, size):
        sizes = packetize(size)
        assert sum(sizes) == size
        assert all(0 < s <= MTU_BYTES for s in sizes)
