"""Tests for the dissemination overlays (tree / gossip broadcasts).

Covers the plan layer (shapes, arrival accumulation, restricted BFS), the
network-module integration (coverage, counts, copy-on-write isolation,
relay attribution, RNG substream isolation), and the engine-level contract
that the fast and instrumented tiers produce identical runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Message
from repro.attacks.base import Capability
from repro.core.events import MessageEvent
from repro.core.message import BROADCAST
from repro.network.dissemination import (
    TreeShape,
    gossip_labels,
    resolve_fanout,
    restricted_plan,
)

from tests.attacks.support import ScriptedAttacker, controller_with, submit


def drain_deliveries(controller):
    """Every pending delivery as ``(time, dest, message)``, in firing order.

    Entry-aware variant of ``pending_deliveries``: the dissemination fast
    path schedules one shared event for many recipients, so the recipient
    and firing time must be read from the queue entry.
    """
    out = []
    queue = controller.queue
    while queue:
        entry = queue.pop_entry()
        event = entry[2]
        if type(event) is MessageEvent:
            dest = entry[3]
            if dest is None:
                dest = event.message.dest
            out.append((entry[0], dest, event.message))
    return out


# ---------------------------------------------------------------------------
# plan layer
# ---------------------------------------------------------------------------


class TestResolveFanout:
    def test_explicit_fanout_passes_through(self):
        assert resolve_fanout(7, 1000) == 7

    def test_auto_fanout_is_sqrt_n(self):
        assert resolve_fanout(0, 1000) == 32  # ceil(sqrt(1000))
        assert resolve_fanout(0, 64) == 8

    def test_auto_fanout_floor_is_two(self):
        assert resolve_fanout(0, 2) == 2
        assert resolve_fanout(0, 4) == 2


class TestTreeShape:
    @pytest.mark.parametrize("n,k,root", [(7, 2, 0), (7, 2, 3), (16, 4, 5), (33, 3, 32)])
    def test_covers_every_node_except_root_once(self, n, k, root):
        plan = TreeShape(n, k).plan(root)
        assert sorted(plan.dests.tolist()) == [i for i in range(n) if i != root]

    def test_deterministic_in_root_n_k(self):
        a = TreeShape(16, 4).plan(5)
        b = TreeShape(16, 4).plan(5)
        assert a.dests.tolist() == b.dests.tolist()
        assert a.relays.tolist() == b.relays.tolist()

    @pytest.mark.parametrize("n,k,root", [(7, 2, 0), (16, 4, 5), (33, 3, 32)])
    def test_relays_transmit_only_after_receiving(self, n, k, root):
        """Every hop's relay is the root or an earlier hop's recipient."""
        plan = TreeShape(n, k).plan(root)
        received = {root}
        for relay, dest in zip(plan.relays.tolist(), plan.dests.tolist()):
            assert relay in received
            received.add(dest)

    def test_fanout_cap_respected(self):
        plan = TreeShape(40, 3).plan(0)
        relays = plan.relays.tolist()
        assert all(relays.count(r) <= 3 for r in set(relays))

    def test_arrivals_accumulate_along_paths(self):
        """With unit hop delays, a hop's arrival offset equals its depth."""
        n, k = 16, 2
        plan = TreeShape(n, k).plan(0)
        arrivals = plan.arrivals(np.ones(plan.size))
        depth = {0: 0}
        for i, (relay, dest) in enumerate(zip(plan.relays.tolist(), plan.dests.tolist())):
            depth[dest] = depth[relay] + 1
            assert arrivals[i] == pytest.approx(depth[dest])


class TestGossipLabels:
    def test_root_leads_and_labels_are_a_permutation(self):
        rng = np.random.default_rng(7)
        labels = gossip_labels(rng, 20, root=13)
        assert labels[0] == 13
        assert sorted(labels.tolist()) == list(range(20))

    def test_deterministic_for_equal_streams(self):
        a = gossip_labels(np.random.default_rng(7), 20, root=3)
        b = gossip_labels(np.random.default_rng(7), 20, root=3)
        assert a.tolist() == b.tolist()

    def test_distinct_draws_differ(self):
        rng = np.random.default_rng(7)
        first = gossip_labels(rng, 50, root=0)
        second = gossip_labels(rng, 50, root=0)
        assert first.tolist() != second.tolist()


class TestRestrictedPlan:
    def test_covers_exactly_the_reachable_component(self):
        # 0 -> 1 -> 2, node 3 unreachable (all its inbound links down).
        links = {(0, 1), (1, 2), (2, 0)}
        plan = restricted_plan(0, 4, lambda a, b: (a, b) in links)
        assert sorted(plan.dests.tolist()) == [1, 2]

    def test_directed_links_respected(self):
        # 1 -> 0 exists but 0 -> 1 does not: 1 is unreachable from 0.
        links = {(1, 0), (0, 2), (2, 3)}
        plan = restricted_plan(0, 4, lambda a, b: (a, b) in links)
        assert sorted(plan.dests.tolist()) == [2, 3]

    def test_priority_reorders_visits(self):
        plan = restricted_plan(0, 4, lambda a, b: True, priority=[0, 3, 2, 1])
        assert plan.dests.tolist() == [3, 2, 1]

    def test_empty_component(self):
        plan = restricted_plan(0, 4, lambda a, b: False)
        assert plan.size == 0


# ---------------------------------------------------------------------------
# network-module integration
# ---------------------------------------------------------------------------


class TestDisseminatedBroadcast:
    @pytest.mark.parametrize("mode", ["tree", "gossip"])
    def test_broadcast_reaches_every_node_exactly_once(self, mode):
        controller = controller_with(
            ScriptedAttacker(Capability.NONE), n=9, dissemination=mode
        )
        controller.network.submit(Message(source=2, dest=BROADCAST, payload={"type": "B"}))
        dests = [dest for _, dest, _ in drain_deliveries(controller)]
        assert sorted(dests) == list(range(9))

    @pytest.mark.parametrize("mode", ["full", "tree", "gossip"])
    def test_message_complexity_identical_across_modes(self, mode):
        """Relaying reshapes the overlay, never the message count."""
        controller = controller_with(
            ScriptedAttacker(Capability.NONE), n=9, dissemination=mode
        )
        controller.network.submit(Message(source=2, dest=BROADCAST, payload={"type": "B"}))
        assert controller.metrics.counts.sent == 8  # loopback excluded

    def test_loopback_copy_delivered_at_send_time(self):
        controller = controller_with(
            ScriptedAttacker(Capability.NONE), n=9, dissemination="tree"
        )
        controller.clock.advance_to(5.0)
        controller.network.submit(Message(source=4, dest=BROADCAST, payload={"type": "B"}))
        times = {dest: time for time, dest, _ in drain_deliveries(controller)}
        assert times[4] == 5.0
        assert all(t > 5.0 for dest, t in times.items() if dest != 4)

    def test_relayed_arrivals_accumulate(self):
        """With a constant per-hop delay, depth-2 recipients arrive one hop
        later than the relay's own copy — hops chain, they don't flatten."""
        controller = controller_with(
            ScriptedAttacker(Capability.NONE),
            n=9,
            dissemination="tree",
            fanout=2,
            mean=100.0,
            std=0.0,
        )
        controller.network.submit(Message(source=0, dest=BROADCAST, payload={"type": "B"}))
        offsets = sorted(time for time, dest, _ in drain_deliveries(controller) if dest != 0)
        # k=2 tree over 9 nodes: 2 hops at depth 1, 4 at depth 2, 2 at depth 3.
        assert offsets == [100.0, 100.0, 200.0, 200.0, 200.0, 200.0, 300.0, 300.0]

    def test_forged_broadcast_uses_full_fanout(self):
        """The adversary injects at each victim directly; the honest relay
        discipline does not apply to forged traffic."""

        def forge(self, message):
            if message.type == "TRIGGER":
                self.ctx.inject(self.ctx.forge(2, BROADCAST, {"type": "EVIL"}))
            return [message]

        attacker = ScriptedAttacker(
            Capability.OBSERVE | Capability.BYZANTINE | Capability.ADAPTIVE, forge
        )
        controller = controller_with(attacker, n=6, dissemination="tree")
        controller.attacker_ctx.corrupt(2)
        submit(controller, source=0, dest=1, type="TRIGGER")
        forged = [
            (dest, m)
            for _, dest, m in drain_deliveries(controller)
            if m.type == "EVIL"
        ]
        assert sorted(dest for dest, _ in forged) == list(range(6))
        assert all(m.relay_from is None for _, m in forged)


class TestCopyOnWrite:
    @pytest.mark.parametrize("mode", ["tree", "gossip"])
    def test_tampered_copy_does_not_leak_into_siblings(self, mode):
        """Dissemination hops share one payload copy-on-write; a mutating
        attacker must be handed a private copy (own_payload)."""
        def tamper(self, message):
            if self.ctx.controls_message(message) and message.dest == 1:
                message.payload["evil"] = True
            return [message]

        attacker = ScriptedAttacker(
            Capability.OBSERVE | Capability.BYZANTINE | Capability.ADAPTIVE, tamper
        )
        controller = controller_with(attacker, n=6, dissemination=mode)
        controller.attacker_ctx.corrupt(2)
        controller.clock.advance_to(1.0)  # corruption must precede the send
        controller.network.submit(Message(source=2, dest=BROADCAST, payload={"type": "B"}))
        by_dest = {dest: m for _, dest, m in drain_deliveries(controller)}
        assert by_dest[1].payload.get("evil") is True
        assert all(
            "evil" not in by_dest[d].payload for d in range(6) if d != 1
        ), "shared payload leaked a per-copy mutation"

    def test_fast_tier_shares_one_payload_object(self):
        """Benign broadcasts share a single payload (and message) across all
        relay hops — the memory contract behind n=1000 comfort.  Requires
        the genuine NullAttacker (any other attacker class forces the
        instrumented tier, which un-shares before the attacker runs)."""
        from repro import Controller
        from tests.conftest import quick_config

        controller = Controller(quick_config(n=9, dissemination="tree"))
        controller.network.submit(Message(source=0, dest=BROADCAST, payload={"type": "B"}))
        payload_ids = {
            id(m.payload) for _, dest, m in drain_deliveries(controller) if dest != 0
        }
        assert len(payload_ids) == 1


class TestRelayAttribution:
    def test_trace_records_relay_on_dissemination_hops(self):
        controller = controller_with(
            ScriptedAttacker(Capability.NONE), n=9, dissemination="tree", fanout=2
        )
        controller.trace.enabled = True
        controller.network.submit(Message(source=0, dest=BROADCAST, payload={"type": "B"}))
        sends = controller.trace.events(kind="send")
        assert len(sends) == 8
        relayed = [e for e in sends if e.fields.get("relay") not in (None, 0)]
        assert relayed, "depth>=2 hops must name their relaying node"
        for event in sends:
            assert event.node == 0  # protocol-level source on every hop

    def test_source_stays_protocol_originator(self):
        controller = controller_with(
            ScriptedAttacker(Capability.NONE), n=9, dissemination="gossip"
        )
        controller.network.submit(Message(source=3, dest=BROADCAST, payload={"type": "B"}))
        assert all(m.source == 3 for _, _, m in drain_deliveries(controller))


class TestSubstreamIsolation:
    def test_gossip_broadcasts_do_not_perturb_unicast_delays(self):
        """Overlay RNG lives on dedicated substreams: interleaving a
        broadcast must not shift the transit-delay stream unicasts draw
        from."""
        plain = controller_with(
            ScriptedAttacker(Capability.NONE), n=9, dissemination="gossip"
        )
        mixed = controller_with(
            ScriptedAttacker(Capability.NONE), n=9, dissemination="gossip"
        )
        mixed.network.submit(Message(source=0, dest=BROADCAST, payload={"type": "B"}))
        a = submit(plain, source=0, dest=1)
        b = submit(mixed, source=0, dest=1)
        assert a.delay == b.delay

    def test_tree_and_gossip_consume_identical_dissemination_draws(self):
        """Both overlays draw the same per-hop delay batch from the same
        substream and attach it to the same heap shape — only the node
        labelling differs (gossip's permutation comes from its own
        substream), so the arrival-time multiset is identical."""
        tree = controller_with(
            ScriptedAttacker(Capability.NONE), n=9, dissemination="tree"
        )
        gossip = controller_with(
            ScriptedAttacker(Capability.NONE), n=9, dissemination="gossip"
        )
        for controller in (tree, gossip):
            controller.network.submit(
                Message(source=0, dest=BROADCAST, payload={"type": "B"})
            )
        t = sorted(time for time, d, _ in drain_deliveries(tree) if d != 0)
        g = sorted(time for time, d, _ in drain_deliveries(gossip) if d != 0)
        assert len(t) == 8
        assert t == g
