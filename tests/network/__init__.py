"""Test package."""
