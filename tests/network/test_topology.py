"""Tests for the reachability topology."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.network.topology import Topology


class TestConstruction:
    def test_default_is_complete(self):
        topo = Topology(5)
        assert topo.is_fully_connected()
        assert topo.graph.number_of_edges() == 10

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(0)

    def test_explicit_edges(self):
        topo = Topology(4, edges=[(0, 1), (2, 3)])
        assert topo.connected(0, 1)
        assert not topo.connected(0, 2)
        assert not topo.is_fully_connected()

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(3, edges=[(0, 5)])


class TestQueries:
    def test_self_always_connected(self):
        topo = Topology(3, edges=[])
        assert topo.connected(1, 1)

    def test_neighbors_sorted(self):
        topo = Topology(4, edges=[(2, 0), (2, 3), (2, 1)])
        assert topo.neighbors(2) == [0, 1, 3]

    def test_components_largest_first(self):
        topo = Topology(5, edges=[(0, 1), (0, 2), (3, 4)])
        components = topo.components()
        assert components[0] == {0, 1, 2}
        assert components[1] == {3, 4}

    def test_out_of_range_query_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(3).connected(0, 3)


class TestMutation:
    def test_cut_and_restore(self):
        topo = Topology(3)
        topo.cut(0, 1)
        assert not topo.connected(0, 1)
        topo.restore(0, 1)
        assert topo.connected(0, 1)

    def test_cut_idempotent(self):
        topo = Topology(3)
        topo.cut(0, 1)
        topo.cut(0, 1)
        assert not topo.connected(0, 1)

    def test_cut_between_groups(self):
        topo = Topology(6)
        removed = topo.cut_between([0, 1, 2], [3, 4, 5])
        assert removed == 9
        assert len(topo.components()) == 2
        # within-group connectivity intact
        assert topo.connected(0, 1) and topo.connected(3, 4)

    def test_restore_all(self):
        topo = Topology(4)
        topo.cut_between([0, 1], [2, 3])
        topo.restore_all()
        assert topo.is_fully_connected()

    def test_restore_self_loop_ignored(self):
        topo = Topology(3)
        topo.restore(1, 1)
        assert not topo.graph.has_edge(1, 1)
