"""Tests for the network module: broadcast expansion, loopback, metrics."""

from __future__ import annotations

from repro import Message
from repro.attacks.base import Capability
from repro.core.message import BROADCAST

from tests.attacks.support import ScriptedAttacker, controller_with, pending_deliveries, submit


class TestBroadcast:
    def test_broadcast_expands_to_all_nodes(self):
        controller = controller_with(ScriptedAttacker(Capability.NONE), n=5)
        controller.network.submit(Message(source=2, dest=BROADCAST, payload={"type": "B"}))
        deliveries = pending_deliveries(controller)
        assert sorted(m.dest for m in deliveries) == [0, 1, 2, 3, 4]

    def test_broadcast_counts_exclude_loopback(self):
        controller = controller_with(ScriptedAttacker(Capability.NONE), n=5)
        controller.network.submit(Message(source=2, dest=BROADCAST, payload={"type": "B"}))
        assert controller.metrics.counts.sent == 4

    def test_broadcast_copies_are_independent(self):
        tampered = []

        def tamper(self, message):
            if self.ctx.controls_message(message) and message.dest == 1:
                message.payload["evil"] = True
                tampered.append(message.dest)
            return [message]

        attacker = ScriptedAttacker(
            Capability.OBSERVE | Capability.BYZANTINE | Capability.ADAPTIVE, tamper
        )
        controller = controller_with(attacker, n=4)
        controller.attacker_ctx.corrupt(2)
        controller.clock.advance_to(1.0)
        controller.network.submit(Message(source=2, dest=BROADCAST, payload={"type": "B"}))
        deliveries = {m.dest: m for m in pending_deliveries(controller)}
        assert deliveries[1].payload.get("evil") is True
        assert "evil" not in deliveries[3].payload  # other copies untouched


class TestLoopback:
    def test_loopback_delivered_instantly(self):
        controller = controller_with(ScriptedAttacker(Capability.NONE), n=4)
        controller.clock.advance_to(10.0)
        submit(controller, source=3, dest=3)
        deliveries = pending_deliveries(controller)
        assert len(deliveries) == 1
        assert deliveries[0].deliver_at == 10.0

    def test_loopback_invisible_to_attacker(self):
        attacker = ScriptedAttacker(Capability.OBSERVE)
        controller = controller_with(attacker, n=4)
        submit(controller, source=3, dest=3)
        assert attacker.seen == []

    def test_loopback_not_counted_as_traffic(self):
        controller = controller_with(ScriptedAttacker(Capability.NONE), n=4)
        submit(controller, source=3, dest=3)
        assert controller.metrics.counts.sent == 0


class TestDelayAssignment:
    def test_delay_sampled_from_configured_distribution(self):
        controller = controller_with(
            ScriptedAttacker(Capability.NONE), n=4, mean=100.0, std=0.0
        )
        message = submit(controller)
        assert message.delay == 100.0

    def test_delays_vary_with_distribution(self):
        controller = controller_with(
            ScriptedAttacker(Capability.NONE), n=4, mean=100.0, std=30.0
        )
        delays = {submit(controller).delay for _ in range(10)}
        assert len(delays) > 1

    def test_trace_records_send(self):
        controller = controller_with(ScriptedAttacker(Capability.NONE), n=4)
        controller.trace.enabled = True
        submit(controller, source=0, dest=2, type="PING")
        sends = controller.trace.events(kind="send")
        assert len(sends) == 1
        assert sends[0].fields["msg_type"] == "PING"
        assert sends[0].fields["dest"] == 2


class TestAttackerPassthrough:
    def test_none_return_means_unchanged(self):
        attacker = ScriptedAttacker(Capability.OBSERVE, lambda self, m: None)
        controller = controller_with(attacker, n=4)
        message = submit(controller)
        deliveries = pending_deliveries(controller)
        assert deliveries[0].msg_id == message.msg_id

    def test_every_wire_message_passes_attacker(self):
        attacker = ScriptedAttacker(Capability.OBSERVE)
        controller = controller_with(attacker, n=4)
        controller.network.submit(Message(source=0, dest=BROADCAST, payload={"type": "B"}))
        assert len(attacker.seen) == 3  # n-1 wire copies; loopback excluded
