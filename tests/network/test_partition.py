"""Tests for partition specifications."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.network.partition import PartitionSpec


def halves(n=8, start=0.0, end=100.0, mode="drop"):
    return PartitionSpec.halves(n, start=start, end=end, mode=mode)


class TestConstruction:
    def test_halves_are_even_odd(self):
        spec = halves(6)
        assert spec.group_of(0) == spec.group_of(2) == spec.group_of(4)
        assert spec.group_of(1) == spec.group_of(3) == spec.group_of(5)
        assert spec.group_of(0) != spec.group_of(1)

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionSpec.split([[0, 1], [1, 2]], start=0, end=10)

    def test_single_group_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionSpec.split([[0, 1, 2]], start=0, end=10)

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionSpec.split([[0], [1]], start=10, end=10)

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionSpec.split([[0], [1]], start=0, end=10, mode="explode")


class TestSeparation:
    def test_same_group_not_separated(self):
        assert not halves().separated(0, 2)

    def test_cross_group_separated(self):
        assert halves().separated(0, 1)

    def test_self_never_separated(self):
        assert not halves().separated(3, 3)

    def test_unlisted_nodes_are_singletons(self):
        spec = PartitionSpec.split([[0], [1]], start=0, end=10)
        assert spec.separated(5, 6)  # two unlisted nodes
        assert spec.separated(5, 0)  # unlisted vs listed
        assert not spec.separated(5, 5)

    def test_three_way_partition(self):
        spec = PartitionSpec.split([[0, 1], [2, 3], [4, 5]], start=0, end=10)
        assert spec.separated(0, 2)
        assert spec.separated(2, 4)
        assert not spec.separated(4, 5)


class TestTiming:
    def test_active_window_half_open(self):
        spec = halves(start=10.0, end=20.0)
        assert not spec.active_at(9.999)
        assert spec.active_at(10.0)
        assert spec.active_at(19.999)
        assert not spec.active_at(20.0)


@given(
    n=st.integers(min_value=2, max_value=64),
    a=st.integers(min_value=0, max_value=63),
    b=st.integers(min_value=0, max_value=63),
)
def test_property_halves_separation_is_parity(n, a, b):
    a, b = a % n, b % n
    spec = PartitionSpec.halves(n)
    expected = (a % 2 != b % 2) and a != b
    assert spec.separated(a, b) == expected


@given(st.integers(min_value=2, max_value=64))
def test_property_halves_cover_all_nodes(n):
    spec = PartitionSpec.halves(n)
    covered = set().union(*spec.groups)
    assert covered == set(range(n))
