"""Tests for delay distributions and the delay model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import NetworkConfig
from repro.core.errors import ConfigurationError
from repro.network.delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LogNormalDelay,
    NormalDelay,
    PoissonDelay,
    UniformDelay,
    available_distributions,
    make_sampler,
    register_distribution,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestSamplers:
    def test_constant(self, rng):
        sampler = ConstantDelay(100.0)
        assert all(sampler.sample(rng) == 100.0 for _ in range(10))

    @pytest.mark.parametrize(
        "cls", [UniformDelay, NormalDelay, LogNormalDelay]
    )
    def test_mean_and_std_match_target(self, cls, rng):
        sampler = cls(200.0, 40.0)
        samples = np.array([sampler.sample(rng) for _ in range(20_000)])
        assert samples.mean() == pytest.approx(200.0, rel=0.05)
        assert samples.std() == pytest.approx(40.0, rel=0.10)

    def test_exponential_mean(self, rng):
        sampler = ExponentialDelay(150.0)
        samples = np.array([sampler.sample(rng) for _ in range(20_000)])
        assert samples.mean() == pytest.approx(150.0, rel=0.05)

    def test_poisson_mean_and_integrality(self, rng):
        sampler = PoissonDelay(30.0)
        samples = [sampler.sample(rng) for _ in range(5_000)]
        assert np.mean(samples) == pytest.approx(30.0, rel=0.1)
        assert all(s == int(s) for s in samples)

    def test_lognormal_requires_positive_mean(self):
        with pytest.raises(ConfigurationError):
            LogNormalDelay(0.0, 10.0)

    def test_exponential_requires_positive_mean(self):
        with pytest.raises(ConfigurationError):
            ExponentialDelay(0.0)

    def test_describe_mentions_parameters(self):
        assert "250" in NormalDelay(250.0, 50.0).describe()


class TestRegistry:
    def test_builtins_available(self):
        names = available_distributions()
        for name in ("constant", "uniform", "normal", "lognormal", "exponential", "poisson"):
            assert name in names

    def test_make_sampler_from_config(self):
        sampler = make_sampler(NetworkConfig(distribution="lognormal", mean=100, std=20))
        assert isinstance(sampler, LogNormalDelay)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sampler(NetworkConfig(distribution="no-such"))

    def test_register_custom_and_reject_duplicates(self):
        register_distribution("test-fixed-7", lambda mean, std: ConstantDelay(7.0))
        sampler = make_sampler(NetworkConfig(distribution="test-fixed-7", mean=1.0))
        assert sampler.sample(np.random.default_rng(0)) == 7.0
        with pytest.raises(ConfigurationError):
            register_distribution("test-fixed-7", lambda mean, std: ConstantDelay(8.0))


class TestDelayModel:
    def test_min_delay_floor(self, rng):
        config = NetworkConfig(distribution="normal", mean=5.0, std=100.0, min_delay=2.0)
        model = DelayModel(config, rng)
        assert all(model.sample_delay(0.0) >= 2.0 for _ in range(500))

    def test_max_delay_cap(self, rng):
        config = NetworkConfig(mean=100.0, std=500.0, max_delay=150.0)
        model = DelayModel(config, rng)
        assert all(model.sample_delay(0.0) <= 150.0 for _ in range(500))

    def test_unbounded_when_no_cap(self, rng):
        config = NetworkConfig(mean=100.0, std=100.0)
        model = DelayModel(config, rng)
        assert max(model.sample_delay(0.0) for _ in range(2_000)) > 300.0

    def test_pre_gst_inflation(self, rng):
        config = NetworkConfig(
            distribution="constant", mean=100.0, std=0.0,
            gst=1_000.0, pre_gst_factor=10.0, max_delay=120.0,
        )
        model = DelayModel(config, rng)
        # Before GST: inflated and NOT capped.
        assert model.sample_delay(0.0) == 1000.0
        # After GST: normal and capped.
        assert model.sample_delay(1_000.0) == 100.0

    def test_describe_mentions_regime(self):
        config = NetworkConfig(max_delay=500.0)
        model = DelayModel(config, np.random.default_rng(0))
        assert "bounded" in model.describe()
        unbounded = DelayModel(NetworkConfig(), np.random.default_rng(0))
        assert "async" in unbounded.describe()


@settings(max_examples=30, deadline=None)
@given(
    mean=st.floats(min_value=1.0, max_value=1e4),
    std=st.floats(min_value=0.0, max_value=1e3),
    now=st.floats(min_value=0, max_value=1e6),
)
def test_property_delays_respect_floor(mean, std, now):
    config = NetworkConfig(mean=mean, std=std, min_delay=1.0)
    model = DelayModel(config, np.random.default_rng(0))
    for _ in range(20):
        assert model.sample_delay(now) >= 1.0
