"""Recorder tests: runner wiring, serial/parallel equivalence, concurrent
writes, and the fingerprint-neutrality contract against the golden table."""

from __future__ import annotations

import threading

import pytest

from repro.core.results import result_fingerprint
from repro.core.runner import repeat_simulation, run_simulation, sweep
from repro.store import ExperimentStore, StoreRecorder, offset_recorder
from tests.conftest import quick_config
from tests.core.test_golden_determinism import GOLDEN, golden_config


@pytest.fixture
def store(tmp_path) -> ExperimentStore:
    handle = ExperimentStore(tmp_path / "exp.sqlite")
    yield handle
    handle.close()


class TestRunnerWiring:
    def test_serial_repeat_records_every_run(self, store):
        config = quick_config()
        recorder = StoreRecorder.open(
            store, "serial", "run", config, 3, labels=["a", "b", "c"]
        )
        results = repeat_simulation(config, 3, recorder=recorder)
        recorder.finish()

        rows = store.runs(recorder.experiment_id)
        assert [row.run_index for row in rows] == [0, 1, 2]
        assert [row.label for row in rows] == ["a", "b", "c"]
        assert [row.fingerprint for row in rows] == [
            result_fingerprint(result) for result in results
        ]
        assert store.experiment(recorder.experiment_id).status == "complete"

    def test_parallel_repeat_records_identically(self, store):
        config = quick_config()
        serial = StoreRecorder.open(store, "serial", "run", config, 4)
        repeat_simulation(config, 4, recorder=serial)
        serial.finish()

        parallel = StoreRecorder.open(store, "parallel", "run", config, 4)
        repeat_simulation(config, 4, jobs=2, recorder=parallel)
        parallel.finish()

        diff = store.diff(serial.experiment_id, parallel.experiment_id)
        assert diff.identical, diff.summary()

    def test_parallel_recording_is_live_not_batched(self, store):
        """Progress counters advance run by run, not once at the end."""
        config = quick_config()
        recorder = StoreRecorder.open(store, "live", "run", config, 4)
        seen: list[int] = []

        def spy(run_index, entry):
            recorder(run_index, entry)
            seen.append(store.experiment(recorder.experiment_id).done_runs)

        repeat_simulation(config, 4, jobs=2, recorder=spy)
        assert seen == [1, 2, 3, 4]

    def test_serial_sweep_uses_global_indices(self, store):
        config = quick_config()
        recorder = StoreRecorder.open(store, "sweep", "sweep", config, 4)
        sweep(config, [{"lam": 400.0}, {"lam": 800.0}], repetitions=2,
              recorder=recorder)
        recorder.finish()
        rows = store.runs(recorder.experiment_id)
        assert [row.run_index for row in rows] == [0, 1, 2, 3]
        assert [row.config["lam"] for row in rows] == [
            400.0, 400.0, 800.0, 800.0,
        ]

    def test_serial_and_parallel_sweep_record_identically(self, store):
        config = quick_config()
        variations = [{"lam": 400.0}, {"lam": 800.0}]
        serial = StoreRecorder.open(store, "s", "sweep", config, 4)
        sweep(config, variations, repetitions=2, recorder=serial)
        serial.finish()
        parallel = StoreRecorder.open(store, "p", "sweep", config, 4)
        sweep(config, variations, repetitions=2, jobs=2, recorder=parallel)
        parallel.finish()
        assert store.diff(serial.experiment_id, parallel.experiment_id).identical

    def test_offset_recorder_shifts_indices(self, store):
        recorder = StoreRecorder.open(store, "o", "run", quick_config(), 4)
        shifted = offset_recorder(recorder, 2)
        shifted(0, run_simulation(quick_config()))
        assert [row.run_index for row in store.runs(recorder.experiment_id)] \
            == [2]


class TestConcurrentWrites:
    def test_two_threads_share_one_store(self, store):
        """Two fleets recording into the same sqlite file concurrently —
        the dashboard scenario with several sweeps in flight."""
        config = quick_config()
        recorders = [
            StoreRecorder.open(store, f"fleet-{i}", "run", config, 3)
            for i in range(2)
        ]
        errors: list[Exception] = []

        def fleet(recorder):
            try:
                repeat_simulation(config, 3, jobs=2, recorder=recorder)
                recorder.finish()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=fleet, args=(recorder,))
            for recorder in recorders
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        for recorder in recorders:
            row = store.experiment(recorder.experiment_id)
            assert (row.status, row.done_runs) == ("complete", 3)
        assert store.diff(
            recorders[0].experiment_id, recorders[1].experiment_id
        ).identical


class TestFingerprintNeutrality:
    def test_golden_digest_unchanged_with_store_attached(self, store):
        """Recording must never perturb a run: every stored fingerprint
        equals the golden digest of the same configuration."""
        protocols = sorted(GOLDEN)
        recorder = StoreRecorder.open(
            store, "golden", "run", golden_config(protocols[0]),
            len(protocols), labels=protocols,
        )
        for index, protocol in enumerate(protocols):
            result = run_simulation(golden_config(protocol))
            recorder(index, result)
        recorder.finish()

        rows = store.runs(recorder.experiment_id)
        assert [row.fingerprint for row in rows] == [
            GOLDEN[protocol] for protocol in protocols
        ]

    def test_recorder_on_parallel_run_matches_golden(self, store):
        recorder = StoreRecorder.open(
            store, "golden-parallel", "run", golden_config("pbft"), 2
        )
        repeat_simulation(
            golden_config("pbft"), 2, jobs=2, recorder=recorder
        )
        recorder.finish()
        # Repetition seeds are seed+0, seed+1: slot 0 is the golden config.
        assert store.runs(recorder.experiment_id)[0].fingerprint \
            == GOLDEN["pbft"]
