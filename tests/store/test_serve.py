"""Dashboard server tests: endpoint JSON schemas, trace-backed analysis,
degradation without traces, and 404 behavior — all over a real socket."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.runner import run_simulation
from repro.serve import create_server
from repro.store import ExperimentStore, StoreRecorder
from tests.conftest import quick_config


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One populated store behind a live server, shared by the module."""
    tmp = tmp_path_factory.mktemp("serve")
    store_path = str(tmp / "exp.sqlite")
    trace_path = str(tmp / "run0.jsonl")

    config = quick_config(num_decisions=2, record_trace=True)
    traced = run_simulation(config)
    with open(trace_path, "w", encoding="utf-8") as handle:
        handle.write(traced.trace.to_jsonl())

    store = ExperimentStore(store_path)
    recorder = StoreRecorder.open(
        store, "served", "run", config, 2, trace_paths={0: trace_path}
    )
    recorder(0, traced)
    recorder(1, run_simulation(config.replace(seed=config.seed + 1)))
    recorder.finish()
    open_recorder = StoreRecorder.open(  # a second, still-running experiment
        store, "in-flight", "run", config, 5
    )
    open_recorder(0, traced)
    store.close()

    server = create_server(store_path, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def get_json(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path) as response:
        assert response.headers["Content-Type"].startswith("application/json")
        return json.load(response)


class TestEndpoints:
    def test_page_is_html_with_embedded_script(self, served):
        with urllib.request.urlopen(served + "/") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/html")
            page = response.read().decode()
        assert "<script>" in page
        assert "/api/experiments" in page  # the page drives the JSON API

    def test_meta_schema(self, served):
        data = get_json(served, "/api/meta")
        assert set(data) == {"store", "schema_version", "version"}
        assert isinstance(data["schema_version"], int)

    def test_experiments_schema(self, served):
        data = get_json(served, "/api/experiments")
        assert set(data) == {"experiments"}
        assert len(data["experiments"]) == 2
        for row in data["experiments"]:
            assert {"id", "name", "kind", "status", "total_runs",
                    "done_runs", "failed_runs", "stalled_runs",
                    "progress"} <= set(row)
        # Newest first: the in-flight experiment leads.
        assert data["experiments"][0]["status"] == "running"
        assert data["experiments"][0]["progress"] == pytest.approx(0.2)

    def test_experiment_detail_schema(self, served):
        data = get_json(served, "/api/experiments/1")
        assert set(data) == {"experiment", "runs", "artifacts"}
        assert data["experiment"]["status"] == "complete"
        assert len(data["runs"]) == 2
        run = data["runs"][0]
        assert {"id", "run_index", "status", "seed", "fingerprint",
                "latency_per_decision", "trace_path"} <= set(run)
        assert run["trace_path"]  # run 0 carries the trace pointer

    def test_run_schema(self, served):
        data = get_json(served, "/api/runs/1")
        assert set(data) == {"run"}
        assert data["run"]["id"] == 1
        assert data["run"]["fingerprint"]

    def test_analysis_from_stored_trace(self, served):
        data = get_json(served, "/api/runs/1/analysis")
        assert data["available"] is True
        assert {"report", "quorums", "critical_paths", "phases"} <= set(data)
        assert data["report"]["decides"] > 0
        assert data["quorums"], "pbft decisions must yield quorum timelines"
        for quorum in data["quorums"]:
            assert {"slot", "node", "msg_type", "quorum_size",
                    "first_arrival", "closed_at", "straggler",
                    "wasted"} <= set(quorum)
        for path in data["critical_paths"]:
            assert {"slot", "node", "hops", "duration", "steps"} <= set(path)
            assert path["steps"], "critical paths carry their hop chain"
        assert data["phases"]["totals"], "pbft annotates phases"
        for entry in data["phases"]["per_view"]:
            assert {"view", "node", "durations"} <= set(entry)

    def test_analysis_degrades_without_trace(self, served):
        data = get_json(served, "/api/runs/2/analysis")
        assert data == {"available": False, "reason": "run recorded no trace"}

    def test_diff_schema(self, served):
        data = get_json(served, "/api/experiments/1/diff/2")
        assert set(data) == {"a", "b", "identical", "rows"}
        assert data["identical"] is False  # 2 vs 5 slots can't all match
        assert all({"run_index", "a", "b", "match"} <= set(row)
                   for row in data["rows"])

    def test_unknown_ids_are_json_404(self, served):
        for path in ("/api/experiments/99", "/api/runs/99",
                     "/api/runs/99/analysis", "/api/experiments/1/diff/99"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get_json(served, path)
            assert excinfo.value.code == 404
            assert "error" in json.load(excinfo.value)

    def test_unknown_route_is_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(served, "/api/nope")
        assert excinfo.value.code == 404


class TestCreateServer:
    def test_rejects_schema_mismatch_up_front(self, tmp_path):
        import sqlite3

        from repro.store import SCHEMA_VERSION, StoreSchemaError

        path = str(tmp_path / "future.sqlite")
        ExperimentStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreSchemaError):
            create_server(path, port=0)


@pytest.fixture(scope="module")
def served_health(tmp_path_factory):
    """A store whose runs carry health reports, behind a live server."""
    from repro.faults import parse_faults_spec
    from repro.workload import parse_workload_spec

    tmp = tmp_path_factory.mktemp("serve_health")
    store_path = str(tmp / "health.sqlite")
    config = quick_config(num_decisions=1).replace(
        workload=parse_workload_spec("rate:60,clients:6,batch:8,duration:2000"),
        faults=parse_faults_spec("delay=0.7x6"),
        allow_horizon=True,
    )
    store = ExperimentStore(store_path)
    recorder = StoreRecorder.open(store, "monitored", "run", config, 2)
    recorder(0, run_simulation(config, health=250.0))
    recorder(1, run_simulation(config.replace(seed=config.seed + 1), health=250.0))
    recorder.finish()
    plain = StoreRecorder.open(store, "unmonitored", "run", config, 1)
    plain(0, run_simulation(quick_config()))
    plain.finish()
    store.close()

    server = create_server(store_path, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestHealthEndpoint:
    def test_schema_and_timeline(self, served_health):
        data = get_json(served_health, "/api/experiments/1/health")
        assert set(data) == {"monitored_runs", "anomaly_total", "min_fairness",
                             "detectors", "anomalies"}
        assert data["monitored_runs"] == 2
        assert data["anomaly_total"] > 0
        assert 0.0 <= data["min_fairness"] <= 1.0
        assert "starvation" in data["detectors"]
        assert sum(data["detectors"].values()) == data["anomaly_total"]
        times = [a["time"] for a in data["anomalies"]]
        assert times == sorted(times)  # one merged fleet timeline
        for anomaly in data["anomalies"]:
            assert {"time", "detector", "severity", "nodes", "clients",
                    "evidence", "run_index", "run_id"} <= set(anomaly)

    def test_unmonitored_experiment_reports_empty(self, served_health):
        data = get_json(served_health, "/api/experiments/2/health")
        assert data["monitored_runs"] == 0
        assert data["anomaly_total"] == 0
        assert data["min_fairness"] is None
        assert data["anomalies"] == []

    def test_run_rows_carry_health_columns(self, served_health):
        data = get_json(served_health, "/api/experiments/1")
        for run in data["runs"]:
            assert run["anomaly_count"] > 0
            assert run["health"]["anomaly_count"] == run["anomaly_count"]

    def test_unknown_experiment_is_404(self, served_health):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(served_health, "/api/experiments/99/health")
        assert excinfo.value.code == 404

    def test_page_renders_health_panel(self, served_health):
        with urllib.request.urlopen(served_health + "/") as response:
            page = response.read().decode()
        assert "healthView" in page  # dashboard wires the health endpoint
        assert "/health" in page
