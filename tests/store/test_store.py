"""Unit tests for the sqlite experiment store: round trips, schema
versioning, progress counters, and fingerprint diffing."""

from __future__ import annotations

import sqlite3

import pytest

from repro.core.results import RunFailure, result_fingerprint
from repro.core.runner import run_simulation
from repro.store import (
    SCHEMA_VERSION,
    ExperimentStore,
    StoreError,
    StoreSchemaError,
)
from tests.conftest import quick_config


@pytest.fixture
def store(tmp_path) -> ExperimentStore:
    handle = ExperimentStore(tmp_path / "exp.sqlite")
    yield handle
    handle.close()


def _result(seed: int = 1, **kwargs):
    return run_simulation(quick_config(seed=seed, **kwargs))


def _failure(seed: int = 1, run_index: int = 0) -> RunFailure:
    return RunFailure(
        config=quick_config(seed=seed),
        kind="error",
        error_type="ValueError",
        message="synthetic",
        run_index=run_index,
        traceback="Traceback: synthetic",
    )


class TestRoundTrip:
    def test_result_row_round_trips(self, store):
        config = quick_config()
        result = _result()
        experiment_id = store.create_experiment("rt", "run", config, 1)
        run_id = store.record_run(experiment_id, 0, result, label="rep 0")

        row = store.run(run_id)
        assert row.run_index == 0
        assert row.label == "rep 0"
        assert row.status == "ok"
        assert row.seed == config.seed
        assert row.protocol == config.protocol
        assert row.config == config.to_dict()
        assert row.fingerprint == result_fingerprint(result)
        assert row.terminated is True
        assert row.stalled is False
        assert row.latency == result.latency
        assert row.latency_per_decision == result.latency_per_decision
        assert row.messages == result.messages
        assert row.messages_per_decision == result.messages_per_decision
        assert row.events_processed == result.events_processed
        assert row.max_view == result.max_view
        assert row.failure is None

    def test_failure_row_round_trips(self, store):
        experiment_id = store.create_experiment("rt", "run", quick_config(), 1)
        run_id = store.record_run(experiment_id, 0, _failure())
        row = store.run(run_id)
        assert row.status == "failed"
        assert row.failed
        assert row.fingerprint is None
        assert row.latency is None
        assert row.failure["error_type"] == "ValueError"
        assert row.failure["message"] == "synthetic"

    def test_progress_counters_update_per_run(self, store):
        experiment_id = store.create_experiment("p", "run", quick_config(), 3)
        assert store.experiment(experiment_id).done_runs == 0
        store.record_run(experiment_id, 0, _result())
        assert store.experiment(experiment_id).done_runs == 1
        store.record_run(experiment_id, 1, _failure(run_index=1))
        row = store.experiment(experiment_id)
        assert (row.done_runs, row.failed_runs) == (2, 1)
        assert row.running  # still open until finish_experiment

    def test_finish_experiment_status_inference(self, store):
        ok = store.create_experiment("ok", "run", quick_config(), 1)
        store.record_run(ok, 0, _result())
        store.finish_experiment(ok)
        assert store.experiment(ok).status == "complete"

        bad = store.create_experiment("bad", "run", quick_config(), 1)
        store.record_run(bad, 0, _failure())
        store.finish_experiment(bad)
        assert store.experiment(bad).status == "failed"

    def test_duplicate_run_index_rejected(self, store):
        experiment_id = store.create_experiment("d", "run", quick_config(), 2)
        store.record_run(experiment_id, 0, _result())
        with pytest.raises(StoreError):
            store.record_run(experiment_id, 0, _result())

    def test_signals_summary_round_trips(self, store):
        from repro.core.config import AttackConfig

        config = quick_config(
            attack=AttackConfig(name="adaptive", params={"signal": "busiest"})
        )
        result = run_simulation(config)
        assert result.signals_summary is not None
        experiment_id = store.create_experiment("s", "run", config, 1)
        run_id = store.record_run(experiment_id, 0, result)
        assert store.run(run_id).signals == result.signals_summary

    def test_trace_path_round_trip_and_missing(self, store, tmp_path):
        experiment_id = store.create_experiment("t", "run", quick_config(), 2)
        trace = str(tmp_path / "trace.jsonl")
        with_trace = store.record_run(
            experiment_id, 0, _result(), trace_path=trace
        )
        without = store.record_run(experiment_id, 1, _result(seed=2))
        assert store.trace_path(with_trace) == trace
        with pytest.raises(StoreError):
            store.trace_path(without)

    def test_artifacts_round_trip(self, store):
        experiment_id = store.create_experiment("a", "mine", quick_config(), 1)
        store.record_artifact(
            experiment_id, "mining-winner", name="mined-001",
            path="out.json", payload={"score": 12.5},
        )
        rows = store.artifacts(experiment_id)
        assert len(rows) == 1
        assert rows[0].kind == "mining-winner"
        assert rows[0].payload == {"score": 12.5}
        assert rows[0].path == "out.json"

    def test_set_progress_overwrites_counters(self, store):
        experiment_id = store.create_experiment("m", "mine", quick_config(), 5)
        store.set_progress(experiment_id, 3)
        assert store.experiment(experiment_id).done_runs == 3
        store.set_progress(experiment_id, 4, total_runs=8)
        row = store.experiment(experiment_id)
        assert (row.done_runs, row.total_runs) == (4, 8)

    def test_experiments_listed_newest_first(self, store):
        first = store.create_experiment("one", "run", quick_config(), 1)
        second = store.create_experiment("two", "run", quick_config(), 1)
        assert [row.id for row in store.experiments()] == [second, first]

    def test_unknown_ids_raise(self, store):
        with pytest.raises(StoreError):
            store.experiment(99)
        with pytest.raises(StoreError):
            store.run(99)
        with pytest.raises(StoreError):
            store.diff(1, 2)


class TestPersistence:
    def test_store_survives_reopen(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        store = ExperimentStore(path)
        experiment_id = store.create_experiment("p", "run", quick_config(), 1)
        run_id = store.record_run(experiment_id, 0, _result())
        fingerprint = store.run(run_id).fingerprint
        store.close()

        reopened = ExperimentStore(path)
        try:
            assert reopened.run(run_id).fingerprint == fingerprint
            assert reopened.experiment(experiment_id).name == "p"
        finally:
            reopened.close()


class TestReadOnlyOpen:
    def test_create_false_rejects_missing_path(self, tmp_path):
        missing = tmp_path / "missing.sqlite"
        with pytest.raises(StoreError, match="does not exist"):
            ExperimentStore(missing, create=False)
        assert not missing.exists()

    def test_create_false_opens_existing_store(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        ExperimentStore(path).close()
        store = ExperimentStore(path, create=False)
        assert store.experiments() == []
        store.close()


class TestSchemaVersioning:
    def test_schema_version_recorded(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        ExperimentStore(path).close()
        conn = sqlite3.connect(path)
        try:
            value = conn.execute(
                "SELECT value FROM store_meta WHERE key = 'schema_version'"
            ).fetchone()[0]
        finally:
            conn.close()
        assert int(value) == SCHEMA_VERSION

    def test_future_schema_rejected(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        ExperimentStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreSchemaError):
            ExperimentStore(path)

    def test_non_store_database_rejected(self, tmp_path):
        path = tmp_path / "other.sqlite"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE unrelated (x)")
        conn.commit()
        conn.close()
        with pytest.raises(StoreSchemaError):
            ExperimentStore(path)


class TestDiff:
    def test_identical_experiments_diff_clean(self, store):
        a = store.create_experiment("a", "run", quick_config(), 2)
        b = store.create_experiment("b", "run", quick_config(), 2)
        for experiment_id in (a, b):
            store.record_run(experiment_id, 0, _result(seed=1))
            store.record_run(experiment_id, 1, _result(seed=2))
        diff = store.diff(a, b)
        assert diff.identical
        assert diff.mismatches == []
        assert "IDENTICAL" in diff.summary()

    def test_differing_seed_shows_up(self, store):
        a = store.create_experiment("a", "run", quick_config(), 1)
        b = store.create_experiment("b", "run", quick_config(), 1)
        store.record_run(a, 0, _result(seed=1))
        store.record_run(b, 0, _result(seed=3))
        diff = store.diff(a, b)
        assert not diff.identical
        assert len(diff.mismatches) == 1
        assert diff.rows[0].a != diff.rows[0].b

    def test_missing_slot_is_a_mismatch(self, store):
        a = store.create_experiment("a", "run", quick_config(), 2)
        b = store.create_experiment("b", "run", quick_config(), 2)
        store.record_run(a, 0, _result(seed=1))
        store.record_run(a, 1, _result(seed=2))
        store.record_run(b, 0, _result(seed=1))
        diff = store.diff(a, b)
        assert not diff.identical
        assert [row.run_index for row in diff.mismatches] == [1]

    def test_failed_run_never_matches(self, store):
        a = store.create_experiment("a", "run", quick_config(), 1)
        b = store.create_experiment("b", "run", quick_config(), 1)
        store.record_run(a, 0, _failure())
        store.record_run(b, 0, _failure())
        assert not store.diff(a, b).identical


class TestHealthColumns:
    """Schema v3: run-health report persisted alongside each run."""

    def test_health_report_round_trips(self, store):
        result = run_simulation(quick_config(), health=True)
        assert result.health is not None
        experiment_id = store.create_experiment("health", "run", quick_config(), 1)
        run_id = store.record_run(experiment_id, 0, result)

        row = store.run(run_id)
        assert row.health == result.health.to_dict()
        assert row.anomaly_count == result.health.anomaly_count
        assert row.min_fairness == result.health.min_fairness

    def test_unmonitored_run_stores_nulls(self, store):
        result = _result()
        assert result.health is None
        experiment_id = store.create_experiment("plain", "run", quick_config(), 1)
        run_id = store.record_run(experiment_id, 0, result)

        row = store.run(run_id)
        assert row.health is None
        assert row.anomaly_count is None
        assert row.min_fairness is None

    def test_failure_row_has_no_health(self, store):
        experiment_id = store.create_experiment("fail", "run", quick_config(), 1)
        run_id = store.record_run(experiment_id, 0, _failure())
        row = store.run(run_id)
        assert row.health is None
        assert row.anomaly_count is None
        assert row.min_fairness is None

    def test_anomalous_run_round_trips_events(self, store):
        from repro.faults import parse_faults_spec
        from repro.workload import parse_workload_spec

        config = quick_config(num_decisions=1).replace(
            workload=parse_workload_spec("rate:60,clients:6,batch:8,duration:2000"),
            faults=parse_faults_spec("delay=0.7x6"),
            allow_horizon=True,
        )
        result = run_simulation(config, health=250.0)
        assert result.health.anomaly_count > 0
        experiment_id = store.create_experiment("anomalous", "run", config, 1)
        row = store.run(store.record_run(experiment_id, 0, result))
        assert row.anomaly_count == result.health.anomaly_count
        assert row.min_fairness == pytest.approx(result.health.min_fairness)
        assert row.health["events"] == [e.to_dict() for e in result.health.events]
