"""CLI tests for the experiment-store surface: ``--store`` on run/sweep,
the ``experiments`` subcommands, store run-ids in ``inspect``, and
``mine --check``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.store import ExperimentStore

RUN_ARGS = ["--protocol", "pbft", "-n", "4", "--mean", "50", "--std", "10",
            "--lam", "500", "--decisions", "1"]


@pytest.fixture
def store_path(tmp_path) -> str:
    return str(tmp_path / "exp.sqlite")


def _recorded(store_path: str, experiment_id: int):
    store = ExperimentStore(store_path)
    try:
        return (
            store.experiment(experiment_id),
            store.runs(experiment_id),
        )
    finally:
        store.close()


class TestRunStore:
    def test_run_records_one_experiment(self, store_path, capsys):
        assert main(["run", *RUN_ARGS, "--store", store_path]) == 0
        experiment, runs = _recorded(store_path, 1)
        assert experiment.kind == "run"
        assert experiment.status == "complete"
        assert (experiment.done_runs, experiment.total_runs) == (1, 1)
        assert len(runs) == 1
        assert runs[0].fingerprint
        assert f"store: experiment 1 -> {store_path}" \
            in capsys.readouterr().err

    def test_run_records_trace_pointer(self, store_path, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(
            ["run", *RUN_ARGS, "--store", store_path, "--trace-out", trace]
        ) == 0
        _experiment, runs = _recorded(store_path, 1)
        assert runs[0].trace_path == trace

    def test_store_does_not_change_output_fingerprint(self, store_path,
                                                      capsys):
        assert main(["run", *RUN_ARGS, "--seed", "2022", "--json"]) == 0
        bare = json.loads(capsys.readouterr().out)
        assert main(["run", *RUN_ARGS, "--seed", "2022", "--json",
                     "--store", store_path]) == 0
        with_store = json.loads(capsys.readouterr().out)
        bare.pop("wall_clock_seconds")
        with_store.pop("wall_clock_seconds")
        assert bare == with_store


class TestSweepStore:
    def test_sweep_records_grid(self, store_path, capsys):
        assert main([
            "sweep", *RUN_ARGS, "--param", "lam", "--values", "400,800",
            "--reps", "2", "--jobs", "2", "--store", store_path,
        ]) == 0
        experiment, runs = _recorded(store_path, 1)
        assert experiment.kind == "sweep"
        assert experiment.status == "complete"
        assert experiment.total_runs == 4
        assert [run.label for run in runs] == [
            "lam=400.0 rep 0", "lam=400.0 rep 1",
            "lam=800.0 rep 0", "lam=800.0 rep 1",
        ]
        assert [run.config["lam"] for run in runs] == [
            400.0, 400.0, 800.0, 800.0,
        ]


class TestExperimentsCommands:
    def _populate(self, store_path: str) -> None:
        assert main(["run", *RUN_ARGS, "--store", store_path]) == 0
        assert main(["run", *RUN_ARGS, "--store", store_path]) == 0
        assert main(["run", *RUN_ARGS, "--seed", "9",
                     "--store", store_path]) == 0

    def test_list(self, store_path, capsys):
        self._populate(store_path)
        assert main(["experiments", "list", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "pbft run" in out
        assert "complete" in out

    def test_list_json(self, store_path, capsys):
        self._populate(store_path)
        capsys.readouterr()
        assert main(["experiments", "list", "--store", store_path,
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["experiments"]) == 3

    def test_show(self, store_path, capsys):
        self._populate(store_path)
        assert main(["experiments", "show", "1", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "experiment 1: pbft run" in out
        assert "1/1 runs" in out

    def test_diff_identical_exit_zero(self, store_path, capsys):
        self._populate(store_path)
        assert main(["experiments", "diff", "1", "2",
                     "--store", store_path]) == 0
        assert "IDENTICAL" in capsys.readouterr().out

    def test_diff_mismatch_exit_two(self, store_path, capsys):
        self._populate(store_path)
        assert main(["experiments", "diff", "1", "3",
                     "--store", store_path]) == 2
        assert "differ" in capsys.readouterr().out

    def test_missing_store_errors(self, tmp_path, capsys):
        missing = str(tmp_path / "nope" / "exp.sqlite")
        assert main(["experiments", "list", "--store", missing]) == 1
        assert "error:" in capsys.readouterr().err

    def test_browsing_never_creates_a_store(self, tmp_path, capsys):
        # A typo'd path in a directory that exists must error, not
        # materialize an empty database.
        missing = str(tmp_path / "typo.sqlite")
        assert main(["experiments", "list", "--store", missing]) == 1
        assert "does not exist" in capsys.readouterr().err
        assert not (tmp_path / "typo.sqlite").exists()


class TestInspectStoreRunId:
    def _run_with_trace(self, store_path: str, tmp_path) -> str:
        trace = str(tmp_path / "t.jsonl")
        assert main(["run", *RUN_ARGS, "--store", store_path,
                     "--trace-out", trace]) == 0
        return trace

    def test_store_prefixed_run_id(self, store_path, tmp_path, capsys):
        self._run_with_trace(store_path, tmp_path)
        assert main(["inspect", "store:1", "--store", store_path]) == 0
        assert "trace:" in capsys.readouterr().out

    def test_bare_run_id_with_store_flag(self, store_path, tmp_path, capsys):
        self._run_with_trace(store_path, tmp_path)
        capsys.readouterr()
        assert main(["inspect", "1", "--store", store_path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["decides"] > 0

    def test_run_without_trace_errors(self, store_path, capsys):
        assert main(["run", *RUN_ARGS, "--store", store_path]) == 0
        capsys.readouterr()
        assert main(["inspect", "store:1", "--store", store_path]) == 1
        assert "error:" in capsys.readouterr().err


class TestMineCheckCLI:
    def _make_artifact(self, tmp_path) -> str:
        path = str(tmp_path / "artifact.json")
        code = main([
            "mine", *RUN_ARGS, "--generations", "1", "--population", "2",
            "--out", path,
        ])
        assert code == 0
        return path

    def test_check_fresh_artifact_passes(self, tmp_path, capsys):
        path = self._make_artifact(tmp_path)
        capsys.readouterr()
        assert main(["mine", "--check", path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_detects_tampered_ratio(self, tmp_path, capsys):
        path = self._make_artifact(tmp_path)
        with open(path, encoding="utf-8") as handle:
            artifact = json.load(handle)
        artifact["winner"]["median_latency"] *= 2
        artifact["winner"]["ratio_vs_baseline"] *= 2
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle)
        capsys.readouterr()
        assert main(["mine", "--check", path]) == 2
        assert "DRIFT" in capsys.readouterr().out

    def test_check_json_output(self, tmp_path, capsys):
        path = self._make_artifact(tmp_path)
        capsys.readouterr()
        assert main(["mine", "--check", path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["fresh_ratio"] == pytest.approx(data["stored_ratio"])


class TestServeCLIParsing:
    def test_serve_rejects_missing_store_file(self, tmp_path, capsys):
        missing = str(tmp_path / "sub" / "exp.sqlite")
        assert main(["serve", "--store", missing, "--port", "0"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_serve_never_creates_a_store(self, tmp_path, capsys):
        missing = str(tmp_path / "typo.sqlite")
        assert main(["serve", "--store", missing, "--port", "0"]) == 1
        assert "does not exist" in capsys.readouterr().err
        assert not (tmp_path / "typo.sqlite").exists()
