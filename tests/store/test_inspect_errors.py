"""Regression tests: ``repro inspect`` diagnoses bad trace references.

Both failure arms used to surface a raw ``FileNotFoundError`` from the
trace reader; they must instead explain what the user got wrong:

* a bare run id without ``--store`` is a filesystem path that does not
  exist — the error points at the ``store:<id>`` syntax;
* a stored run whose recorded trace pointer names a deleted file says so
  (run id and the stale pointer), instead of an open() traceback.
"""

from __future__ import annotations

import os

import pytest

from repro.cli import main

RUN_ARGS = ["--protocol", "pbft", "-n", "4", "--mean", "50", "--std", "10",
            "--lam", "500", "--decisions", "1"]


@pytest.fixture
def store_path(tmp_path) -> str:
    return str(tmp_path / "exp.sqlite")


def _store_one_run(store_path: str, trace: str | None = None) -> None:
    args = ["run", *RUN_ARGS, "--store", store_path]
    if trace is not None:
        args += ["--trace-out", trace]
    assert main(args) == 0


def test_bare_run_id_without_store_hints_at_store_syntax(capsys):
    assert main(["inspect", "42"]) == 1
    err = capsys.readouterr().err
    assert "trace file '42' does not exist" in err
    assert "store:42" in err
    assert "--store" in err
    assert "Traceback" not in err


def test_nonexistent_path_fails_cleanly(capsys):
    assert main(["inspect", "no/such/trace.jsonl"]) == 1
    err = capsys.readouterr().err
    assert "trace file 'no/such/trace.jsonl' does not exist" in err
    assert "store:" not in err  # the hint is for run-id-shaped arguments


def test_deleted_trace_pointer_is_diagnosed(store_path, tmp_path, capsys):
    trace = str(tmp_path / "t.jsonl")
    _store_one_run(store_path, trace=trace)
    capsys.readouterr()
    os.remove(trace)
    assert main(["inspect", "store:1", "--store", store_path]) == 1
    err = capsys.readouterr().err
    assert "run 1 has no stored trace on disk" in err
    assert repr(trace) in err
    assert "moved or deleted" in err
    assert "Traceback" not in err


def test_run_without_trace_pointer_is_diagnosed(store_path, capsys):
    _store_one_run(store_path)  # no --trace-out: no pointer recorded
    capsys.readouterr()
    assert main(["inspect", "store:1", "--store", store_path]) == 1
    err = capsys.readouterr().err
    assert "run 1 recorded no trace pointer" in err
    assert "--trace-out" in err


def test_bare_run_id_with_store_reads_the_stored_trace(store_path, tmp_path,
                                                       capsys):
    trace = str(tmp_path / "t.jsonl")
    _store_one_run(store_path, trace=trace)
    capsys.readouterr()
    assert main(["inspect", "1", "--store", store_path]) == 0
    assert "trace:" in capsys.readouterr().out
