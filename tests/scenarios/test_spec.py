"""Tests for the declarative scenario spec: grammar, round-trip, validation."""

from __future__ import annotations

import json

import pytest

from repro.core.config import FaultSpec
from repro.core.errors import ConfigurationError
from repro.core.runner import run_simulation
from repro.core.results import result_fingerprint
from repro.scenarios import ScenarioSpec, load_scenario, parse_scenario_spec
from repro.scenarios.spec import AttackClause

from tests.conftest import quick_config


class TestGrammar:
    def test_attack_clause_with_params(self):
        spec = parse_scenario_spec("targeted-delay=factor:4.0,extra_delay:500")
        assert len(spec.attacks) == 1
        clause = spec.attacks[0]
        assert clause.attack == "targeted-delay"
        assert clause.params == {"factor": 4.0, "extra_delay": 500}

    def test_window_suffix(self):
        spec = parse_scenario_spec("failstop=count:1@5000:20000")
        clause = spec.attacks[0]
        assert clause.start == 5000.0
        assert clause.end == 20000.0

    def test_value_types(self):
        spec = parse_scenario_spec(
            "targeted-delay=targets:1+2+3,factor:4,quiet:true,mode:abc"
        )
        params = spec.attacks[0].params
        assert params["targets"] == [1, 2, 3]
        assert params["factor"] == 4
        assert params["quiet"] is True
        assert params["mode"] == "abc"

    def test_fault_clause_mixed_in(self):
        spec = parse_scenario_spec("targeted-delay=factor:2; loss=0.05@0:10000")
        assert len(spec.attacks) == 1
        assert len(spec.faults) == 1
        assert spec.faults[0].kind == "loss"
        assert spec.faults[0].rate == 0.05

    def test_fault_preset_clause(self):
        spec = parse_scenario_spec("lossy-network")
        assert spec.faults, "fault preset should expand into fault clauses"

    def test_unknown_clause_names_all_namespaces(self):
        with pytest.raises(ConfigurationError, match="neither an attack"):
            parse_scenario_spec("no-such-thing=x:1")

    def test_bad_parameter_syntax(self):
        with pytest.raises(ConfigurationError, match="key:value"):
            parse_scenario_spec("targeted-delay=factor")

    def test_empty_parameter_list(self):
        with pytest.raises(ConfigurationError, match="empty parameter list"):
            parse_scenario_spec("targeted-delay=")


class TestRoundTrip:
    SPECS = [
        "targeted-delay=factor:4.0",
        "targeted-delay=targets:0+2,factor:3.0; loss=0.05",
        "partition=start:1000.0,end:9000.0; pbft-equivocation",
        "adaptive=action:delay,signal:critical,k:2,factor:6.0",
        "failstop=count:1@2000:",
    ]

    @pytest.mark.parametrize("text", SPECS)
    def test_json_round_trip_is_byte_identical(self, text):
        spec = parse_scenario_spec(text)
        encoded = spec.to_json()
        again = ScenarioSpec.from_json(encoded).to_json()
        assert encoded == again

    @pytest.mark.parametrize("text", SPECS)
    def test_dict_round_trip_preserves_clauses(self, text):
        spec = parse_scenario_spec(text)
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert [c.describe() for c in clone.attacks] == [
            c.describe() for c in spec.attacks
        ]

    def test_python_and_json_forms_run_fingerprint_identical(self):
        python_spec = ScenarioSpec(
            name="rt",
            attacks=[
                AttackClause(
                    attack="targeted-delay", params={"factor": 3.0}
                ),
            ],
            faults=[FaultSpec(kind="loss", rate=0.02, end=4000.0)],
        )
        json_spec = ScenarioSpec.from_json(python_spec.to_json())
        base = quick_config(n=4, seed=5, stall_timeout=20000.0)
        fp_a = result_fingerprint(run_simulation(python_spec.apply(base)))
        fp_b = result_fingerprint(run_simulation(json_spec.apply(base)))
        assert fp_a == fp_b

    def test_scenario_file_round_trip(self, tmp_path):
        spec = parse_scenario_spec("targeted-delay=factor:2.5; loss=0.01")
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        loaded = load_scenario(str(path))
        assert loaded.to_json() == spec.to_json()


class TestValidation:
    def test_budget_overrun_rejected(self):
        spec = parse_scenario_spec("failstop=count:1; pbft-equivocation")
        config = quick_config(n=4)  # f = 1 for pbft
        with pytest.raises(ConfigurationError, match="demands 2 corruptions"):
            spec.apply(config)

    def test_windowed_static_corruption_rejected(self):
        # pbft-equivocation corrupts but is a *static* attacker (no
        # ADAPTIVE): giving it a delayed activation window must be illegal.
        spec = parse_scenario_spec("pbft-equivocation@5000")
        with pytest.raises(ConfigurationError, match="ADAPTIVE"):
            spec.apply(quick_config(n=4))

    def test_windowed_adaptive_corruption_allowed(self):
        # failstop declares ADAPTIVE precisely so mid-run crashes are legal.
        spec = parse_scenario_spec("failstop=count:1@5000")
        spec.validate(quick_config(n=4))
        spec = parse_scenario_spec("adaptive=action:corrupt,budget:1@5000")
        spec.validate(quick_config(n=4))

    def test_relay_targeting_needs_tree(self):
        spec = parse_scenario_spec("targeted-delay=targets:relays,factor:4")
        with pytest.raises(ConfigurationError, match="dissemination='tree'"):
            spec.apply(quick_config(n=8))
        spec.validate(quick_config(n=8, dissemination="tree"))

    def test_allow_cap_rejects_excess_capability(self):
        spec = parse_scenario_spec("failstop=count:1")
        spec.allow = ["network", "observe"]
        with pytest.raises(ConfigurationError, match="allow list"):
            spec.apply(quick_config(n=4))

    def test_malformed_window_rejected(self):
        spec = ScenarioSpec(
            attacks=[AttackClause(attack="targeted-delay", start=50.0, end=10.0)]
        )
        with pytest.raises(ConfigurationError, match="end must be > start"):
            spec.validate(quick_config(n=4))

    def test_unknown_attack_rejected(self):
        spec = ScenarioSpec(attacks=[AttackClause(attack="no-such-attack")])
        with pytest.raises(ConfigurationError):
            spec.validate(quick_config(n=4))

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario keys"):
            ScenarioSpec.from_dict({"name": "x", "bogus": 1})
        with pytest.raises(ConfigurationError, match="unknown attack clause"):
            ScenarioSpec.from_dict(
                {"attacks": [{"attack": "failstop", "when": 3}]}
            )

    def test_apply_refuses_non_null_base_attack(self):
        from repro import AttackConfig

        spec = parse_scenario_spec("targeted-delay=factor:2")
        config = quick_config(n=4, attack=AttackConfig(name="failstop"))
        with pytest.raises(ConfigurationError, match="on top of attack"):
            spec.apply(config)

    def test_apply_compiles_to_scenario_attack_and_faults(self):
        spec = parse_scenario_spec("targeted-delay=factor:2; loss=0.05")
        applied = spec.apply(quick_config(n=4))
        assert applied.attack.name == "scenario"
        assert applied.attack.params == spec.to_dict()
        assert applied.faults.specs[-1].kind == "loss"
        # The compiled config survives its own serialization (replayability).
        encoded = json.dumps(applied.to_dict(), sort_keys=True)
        from repro import SimulationConfig

        assert SimulationConfig.from_dict(json.loads(encoded)) == applied
