"""Tests for mining-artifact regression checking (``repro mine --check``)."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.scenarios import check_artifact, mine
from tests.conftest import quick_config


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory) -> str:
    """One tiny mined artifact shared by the module's checks."""
    path = str(tmp_path_factory.mktemp("mine") / "artifact.json")
    report = mine(
        quick_config(), generations=1, population=2, search_seed=7
    )
    assert report.winner is not None
    report.write(path)
    return path


def _tampered_copy(source: str, dest: str, mutate) -> str:
    with open(source, encoding="utf-8") as handle:
        artifact = json.load(handle)
    mutate(artifact)
    with open(dest, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle)
    return dest


class TestCheckArtifact:
    def test_fresh_artifact_reproduces(self, artifact_path):
        check = check_artifact(artifact_path)
        assert check.ok
        assert check.drift == pytest.approx(0.0)
        assert check.baseline_fingerprints_ok
        assert check.winner_fingerprints_ok
        assert "OK" in check.summary()

    def test_ratio_regression_detected(self, artifact_path, tmp_path):
        # Claim the attack was twice as strong as it actually is: a fresh
        # re-score must flag the ratio drift (and the winner fingerprints,
        # which were not touched, still match).
        def inflate(artifact):
            artifact["winner"]["median_latency"] *= 2
            artifact["winner"]["ratio_vs_baseline"] *= 2

        tampered = _tampered_copy(
            artifact_path, str(tmp_path / "tampered.json"), inflate
        )
        check = check_artifact(tampered)
        assert not check.ok
        assert check.drift == pytest.approx(-0.5)
        assert check.winner_fingerprints_ok
        assert "DRIFT" in check.summary()

    def test_improvement_beyond_tolerance_also_flags(self, artifact_path,
                                                     tmp_path):
        """Drift is two-sided: a stronger-than-recorded attack means the
        stored claim is stale too."""
        def halve(artifact):
            artifact["winner"]["median_latency"] /= 2
            artifact["winner"]["ratio_vs_baseline"] /= 2

        weaker = _tampered_copy(
            artifact_path, str(tmp_path / "weaker.json"), halve
        )
        check = check_artifact(weaker)
        assert check.drift == pytest.approx(1.0)
        assert not check.ok

    def test_tolerance_widens_acceptance(self, artifact_path, tmp_path):
        def nudge(artifact):
            artifact["winner"]["median_latency"] *= 1.03
            artifact["winner"]["ratio_vs_baseline"] *= 1.03

        nudged = _tampered_copy(
            artifact_path, str(tmp_path / "nudged.json"), nudge
        )
        assert check_artifact(nudged, tolerance=0.05).ok
        assert not check_artifact(nudged, tolerance=0.01).ok

    def test_fingerprint_mismatch_detected(self, artifact_path, tmp_path):
        def relocate(artifact):
            artifact["baseline"]["fingerprints"][0] = "0" * 64

        moved = _tampered_copy(
            artifact_path, str(tmp_path / "moved.json"), relocate
        )
        check = check_artifact(moved)
        assert not check.baseline_fingerprints_ok
        assert not check.ok
        assert "MISMATCH" in check.summary()

    def test_winnerless_artifact_rejected(self, artifact_path, tmp_path):
        def drop_winner(artifact):
            artifact["winner"] = None

        empty = _tampered_copy(
            artifact_path, str(tmp_path / "empty.json"), drop_winner
        )
        with pytest.raises(ConfigurationError):
            check_artifact(empty)

    def test_non_artifact_rejected(self, tmp_path):
        bogus = str(tmp_path / "bogus.json")
        with open(bogus, "w", encoding="utf-8") as handle:
            json.dump({"kind": "something-else"}, handle)
        with pytest.raises(ConfigurationError):
            check_artifact(bogus)

    def test_to_dict_is_json_serializable(self, artifact_path):
        check = check_artifact(artifact_path)
        data = json.loads(json.dumps(check.to_dict()))
        assert data["ok"] is True
        assert data["drift"] == pytest.approx(0.0)


@pytest.mark.slow
class TestCommittedArtifacts:
    """The repo's committed worst cases must keep reproducing."""

    @pytest.mark.parametrize("name", ["relay-chokehold-tree.json"])
    def test_committed_artifact_reproduces(self, name):
        check = check_artifact(f"artifacts/mining/{name}")
        assert check.ok, check.summary()
