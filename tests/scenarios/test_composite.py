"""Tests for the ``"scenario"`` composite attacker.

The misbehaving children used here are registered under underscore-prefixed
names: real attackers never start with ``_``, and the registry keeps such
test doubles out of ``available_attacks()``.
"""

from __future__ import annotations

import pytest

from repro.attacks.base import Attacker, Capability, REDACTED_PAYLOAD
from repro.attacks.registry import register_attack
from repro.core.errors import CapabilityError
from repro.core.runner import run_simulation
from repro.core.results import result_fingerprint
from repro.scenarios import ScenarioSpec, parse_scenario_spec
from repro.scenarios.spec import AttackClause

from tests.conftest import quick_config


@register_attack("_test-peeker")
class _Peeker(Attacker):
    """Records the payloads it sees; holds only NETWORK (no OBSERVE)."""

    capabilities = Capability.NETWORK
    seen_payloads: list[dict] = []

    def attack(self, message):
        type(self).seen_payloads.append(dict(message.payload))
        return None


@register_attack("_test-sneaky-dropper")
class _SneakyDropper(Attacker):
    """Declares only OBSERVE but tries to drop every message."""

    capabilities = Capability.OBSERVE

    def attack(self, message):
        return []


@register_attack("_test-sneaky-editor")
class _SneakyEditor(Attacker):
    """Declares only NETWORK but edits payloads it cannot see."""

    capabilities = Capability.NETWORK

    def attack(self, message):
        message.payload["evil"] = True
        return [message]


@register_attack("_test-timer-child")
class _TimerChild(Attacker):
    """Sets a named timer at setup and records the name it fires with."""

    capabilities = Capability.NETWORK
    fired: list[str] = []

    def setup(self):
        self.ctx.set_timer(100.0, "probe", tag=7)

    def on_timer(self, timer):
        type(self).fired.append(timer.name)
        assert timer.data == {"tag": 7}

    def attack(self, message):
        return None


def _run(text_or_spec, **config_kwargs):
    spec = (
        text_or_spec
        if isinstance(text_or_spec, ScenarioSpec)
        else parse_scenario_spec(text_or_spec)
    )
    config_kwargs.setdefault("stall_timeout", 20000.0)
    config = quick_config(**config_kwargs)
    return run_simulation(spec.apply(config))


class TestComposition:
    def test_single_clause_behaves_like_the_attack_itself(self):
        from repro import AttackConfig

        direct = run_simulation(
            quick_config(
                n=4,
                seed=3,
                attack=AttackConfig(
                    name="targeted-delay", params={"factor": 4.0}
                ),
            )
        )
        composed = _run("targeted-delay=factor:4.0", n=4, seed=3)
        # Same victims, same slowdown direction; fingerprints differ only
        # because the attacker names (and RNG stream names) differ.
        assert composed.terminated and direct.terminated
        assert composed.latency > 0

    def test_two_network_clauses_compose(self):
        solo = _run("targeted-delay=factor:2.0", n=4, seed=3)
        both = _run(
            "targeted-delay=factor:2.0; targeted-delay=factor:3.0",
            n=4,
            seed=3,
        )
        assert both.latency > solo.latency

    def test_corruption_and_partition_compose(self):
        result = _run(
            "pbft-equivocation; partition=start:0.0,end:2000.0,mode:delay,factor:3.0",
            n=4,
            seed=9,
        )
        assert result.terminated
        assert len(result.faulty) == 1

    def test_composite_run_is_deterministic(self):
        text = "adaptive=action:delay,signal:critical,factor:4.0; loss=0.02"
        fp_a = result_fingerprint(_run(text, n=4, seed=11))
        fp_b = result_fingerprint(_run(text, n=4, seed=11))
        assert fp_a == fp_b

    def test_shared_corruption_budget_across_clauses(self):
        # Two corrupting clauses demanding 1 each under f=2 are legal and
        # draw from one shared ledger: two distinct victims overall.
        spec = parse_scenario_spec("failstop=nodes:6; pbft-equivocation")
        result = _run(spec, protocol="pbft", n=7, seed=2)
        assert result.faulty == frozenset({0, 6})


class TestActivationWindows:
    def test_windowed_clause_only_acts_inside_window(self):
        _Peeker.seen_payloads = []
        spec = ScenarioSpec(
            attacks=[
                AttackClause(
                    attack="_test-peeker", start=50.0, end=100000.0
                )
            ]
        )
        result = _run(spec, n=4, seed=1)
        assert result.terminated
        assert _Peeker.seen_payloads, "clause never activated"

    def test_clause_after_the_run_never_activates(self):
        _Peeker.seen_payloads = []
        spec = ScenarioSpec(
            attacks=[AttackClause(attack="_test-peeker", start=10_000_000.0)]
        )
        result = _run(spec, n=4, seed=1)
        assert result.terminated
        assert _Peeker.seen_payloads == []


class TestPerChildEnforcement:
    def test_child_without_observe_sees_redacted_payloads(self):
        _Peeker.seen_payloads = []
        spec = ScenarioSpec(attacks=[AttackClause(attack="_test-peeker")])
        result = _run(spec, n=4, seed=1)
        assert result.terminated
        assert _Peeker.seen_payloads
        assert all(p == REDACTED_PAYLOAD for p in _Peeker.seen_payloads)

    def test_child_drop_without_network_raises(self):
        spec = ScenarioSpec(
            attacks=[AttackClause(attack="_test-sneaky-dropper")]
        )
        with pytest.raises(CapabilityError, match="NETWORK"):
            _run(spec, n=4, seed=1)

    def test_child_payload_edit_without_observe_raises(self):
        spec = ScenarioSpec(
            attacks=[AttackClause(attack="_test-sneaky-editor")]
        )
        with pytest.raises(CapabilityError, match="redacted payload"):
            _run(spec, n=4, seed=1)

    def test_error_names_the_offending_clause(self):
        spec = ScenarioSpec(
            attacks=[
                AttackClause(attack="targeted-delay", params={"factor": 2.0}),
                AttackClause(attack="_test-sneaky-dropper"),
            ]
        )
        with pytest.raises(CapabilityError, match=r"clause #1 \(_test-sneaky-dropper\)"):
            _run(spec, n=4, seed=1)


class TestTimerRouting:
    def test_child_timers_round_trip_through_the_prefix(self):
        _TimerChild.fired = []
        spec = ScenarioSpec(attacks=[AttackClause(attack="_test-timer-child")])
        result = _run(spec, n=4, seed=1)
        assert result.terminated
        assert _TimerChild.fired == ["probe"]

    def test_sibling_rng_streams_are_independent(self):
        # Two identical clauses must not share RNG draws: their streams are
        # namespaced by clause index.
        spec = parse_scenario_spec(
            "targeted-delay=targets:0+1,factor:2.0;"
            "targeted-delay=targets:2+3,factor:2.0"
        )
        config = quick_config(n=4, seed=6, stall_timeout=20000.0)
        applied = spec.apply(config)
        from repro import Controller

        controller = Controller(applied)
        streams = {
            controller.attacker._child_ctxs[0].rng("x"),
            controller.attacker._child_ctxs[1].rng("x"),
        }
        assert len(streams) == 2
