"""Tests for the worst-case mining harness."""

from __future__ import annotations

import json

import pytest

from repro.attacks.base import Attacker, Capability
from repro.attacks.registry import register_attack
from repro.core.errors import ConfigurationError
from repro.scenarios import (
    ScenarioSpec,
    load_artifact,
    mine,
    parse_scenario_spec,
    replay_winner,
    winner_config,
)
from repro.scenarios.spec import AttackClause

from tests.conftest import quick_config


@register_attack("_test-exploder")
class _Exploder(Attacker):
    """Raises mid-run — a spec that kills its own evaluation."""

    capabilities = Capability.NETWORK

    def attack(self, message):
        raise RuntimeError("boom")


def _base(**kwargs):
    kwargs.setdefault("n", 4)
    kwargs.setdefault("seed", 3)
    kwargs.setdefault("stall_timeout", 5000.0)
    return quick_config(**kwargs)


def _tiny_mine(base=None, **kwargs):
    kwargs.setdefault("generations", 2)
    kwargs.setdefault("population", 3)
    kwargs.setdefault("search_seed", 4)
    return mine(base or _base(), **kwargs)


class TestMineBasics:
    def test_finds_a_winner_worse_than_baseline(self):
        report = _tiny_mine()
        assert report.winner is not None
        assert report.winner.median_latency > report.baseline_latency
        assert report.ratio_vs_baseline > 1.0
        assert len(report.lineage) == 6

    def test_same_search_seed_mines_the_same_winner(self):
        a = _tiny_mine()
        b = _tiny_mine()
        assert a.winner.spec == b.winner.spec
        assert a.winner.fingerprints == b.winner.fingerprints
        assert [e.spec for e in a.lineage] == [e.spec for e in b.lineage]

    def test_candidates_respect_the_corruption_budget(self):
        report = _tiny_mine(generations=3, population=6)
        base = _base()
        f = ScenarioSpec().resolve_f(base)
        for entry in report.lineage:
            spec = ScenarioSpec.from_dict(entry.spec)
            assert spec.corruption_demand(f) <= f

    def test_non_null_base_attack_rejected(self):
        from repro import AttackConfig

        base = _base(attack=AttackConfig(name="failstop"))
        with pytest.raises(ConfigurationError, match="null-attack base"):
            _tiny_mine(base)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown mining objective"):
            _tiny_mine(objective="latency-max")


class TestGracefulDegradation:
    def test_stalling_spec_is_recorded_unfit_not_fatal(self):
        # A zero-window full partition under pbft n=4 (f=1) kills liveness:
        # the run stalls.  The harness must score it unfit and keep going.
        staller = ScenarioSpec(
            name="staller",
            attacks=[
                AttackClause(
                    attack="partition",
                    params={"start": 0.0, "end": 10_000_000.0, "mode": "drop"},
                )
            ],
        )
        report = _tiny_mine(seed_specs=[staller])
        entry = next(e for e in report.lineage if e.spec["name"] == "staller")
        assert entry.stalled >= 1
        assert not entry.fit
        assert "stalled" in entry.unfit_reason
        assert report.winner is not None
        assert report.winner.spec["name"] != "staller"

    def test_crashing_spec_is_recorded_unfit_not_fatal(self):
        exploder = ScenarioSpec(
            name="exploder",
            attacks=[AttackClause(attack="_test-exploder")],
        )
        report = _tiny_mine(seed_specs=[exploder])
        entry = next(e for e in report.lineage if e.spec["name"] == "exploder")
        assert entry.failures == 1
        assert not entry.fit
        assert "boom" in entry.unfit_reason
        assert report.winner is not None

    def test_invalid_spec_is_recorded_unfit_not_fatal(self):
        greedy = parse_scenario_spec("failstop=count:3")  # f=1 at n=4
        greedy.name = "greedy"
        report = _tiny_mine(seed_specs=[greedy])
        entry = next(e for e in report.lineage if e.spec["name"] == "greedy")
        assert not entry.fit
        assert "invalid spec" in entry.unfit_reason
        assert report.winner is not None


class TestRefineMode:
    def test_refine_requires_seed_specs(self):
        with pytest.raises(ConfigurationError, match="refine mode"):
            _tiny_mine(refine=True)

    def test_refine_preserves_clause_structure(self):
        seed = parse_scenario_spec("targeted-delay=targets:0+1,factor:2.0")
        seed.name = "shape"
        report = _tiny_mine(seed_specs=[seed], refine=True, generations=3)
        for entry in report.lineage:
            spec = ScenarioSpec.from_dict(entry.spec)
            assert len(spec.attacks) == 1
            assert spec.attacks[0].attack == "targeted-delay"
            assert spec.attacks[0].params["targets"] == [0, 1]
        assert report.winner is not None


class TestObjectives:
    def test_stall_objective_rewards_stalling_specs(self):
        staller = ScenarioSpec(
            name="staller",
            attacks=[
                AttackClause(
                    attack="partition",
                    params={"start": 0.0, "end": 10_000_000.0, "mode": "drop"},
                )
            ],
        )
        report = _tiny_mine(seed_specs=[staller], objective="stall")
        entry = next(e for e in report.lineage if e.spec["name"] == "staller")
        assert entry.fit
        assert entry.score >= 1.0
        assert report.winner.score >= 1.0

    def test_first_decision_objective_scores_every_spec(self):
        report = _tiny_mine(objective="first-decision")
        assert report.winner is not None
        assert report.winner.first_decision > 0


class TestThroughputObjective:
    """``--objective throughput``: minimize committed tx/s under an
    open-loop workload."""

    @staticmethod
    def _workload_base():
        from repro import WorkloadConfig

        return _base(
            lam=1000.0,
            mean=250.0,
            std=50.0,
            workload=WorkloadConfig(
                rate=30.0, clients=10, duration=2000.0, batch=16,
                batch_timeout=500.0,
            ),
        )

    def test_requires_a_workload_base(self):
        report = _tiny_mine(objective="throughput")  # no workload configured
        assert report.winner is None
        assert all(not entry.fit for entry in report.lineage)
        assert all(
            "throughput objective requires" in entry.unfit_reason
            for entry in report.lineage
        )

    def test_two_generation_mine_is_deterministic_and_replays_exactly(
        self, tmp_path
    ):
        """The 2-generation harness proof: same search seed mines the same
        winner twice, the winner genuinely depresses committed tx/s below
        the unattacked baseline, and the written artifact replays
        fingerprint-exact (the fingerprint covers the workload roll-up, so
        the replay re-proves request conservation under the attack)."""
        from repro import run_simulation

        a = mine(
            self._workload_base(), objective="throughput",
            generations=2, population=3, search_seed=7,
        )
        b = mine(
            self._workload_base(), objective="throughput",
            generations=2, population=3, search_seed=7,
        )
        assert a.winner is not None
        assert a.winner.spec == b.winner.spec
        assert a.winner.fingerprints == b.winner.fingerprints

        # score = -committed tx/s: the winner's mined throughput must fall
        # below what the unattacked base sustains.
        baseline = run_simulation(a.base_config)
        assert baseline.workload is not None
        assert -a.winner.score < baseline.workload.committed_tx_s

        path = tmp_path / "throughput-artifact.json"
        a.write(str(path))
        artifact = load_artifact(str(path))
        assert artifact["objective"] == "throughput"
        result, fingerprint, expected = replay_winner(artifact)
        assert fingerprint == expected
        assert result.workload is not None


class TestArtifacts:
    def test_artifact_round_trip_and_replay(self, tmp_path):
        report = _tiny_mine()
        path = tmp_path / "artifact.json"
        report.write(str(path))
        artifact = load_artifact(str(path))
        assert artifact["kind"] == "repro-mining-artifact"
        assert artifact["winner"]["spec"] == report.winner.spec
        result, fingerprint, expected = replay_winner(artifact)
        assert fingerprint == expected

    def test_artifact_is_canonical_json(self, tmp_path):
        report = _tiny_mine()
        path = tmp_path / "artifact.json"
        report.write(str(path))
        text = path.read_text()
        assert text == json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"

    def test_winner_config_carries_scenario_attack(self, tmp_path):
        report = _tiny_mine()
        path = tmp_path / "artifact.json"
        report.write(str(path))
        config = winner_config(load_artifact(str(path)))
        assert config.attack.name == "scenario"
        assert config.attack.params == report.winner.spec

    def test_non_artifact_file_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ConfigurationError, match="not a mining artifact"):
            load_artifact(str(path))
