"""Tests for scenario presets and the committed mining artifacts.

The two mined presets are promises: their spec dicts must stay
byte-identical to the committed artifacts' ``winner.spec``, and replaying
either winner — in this process or a fresh one — must reproduce the
artifact's recorded ``result_fingerprint`` exactly.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.errors import ConfigurationError
from repro.core.results import SimulationResult, result_fingerprint
from repro.scenarios import (
    available_scenarios,
    get_scenario,
    load_artifact,
    load_scenario,
    replay_winner,
    winner_config,
)

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "artifacts", "mining")

MINED = {
    "worst-case-pbft-n32": "worst-case-pbft-n32.json",
    "relay-chokehold-tree": "relay-chokehold-tree.json",
}


def _artifact(preset: str) -> dict:
    return load_artifact(os.path.join(ARTIFACT_DIR, MINED[preset]))


class TestRegistry:
    def test_builtin_presets_listed_sorted(self):
        names = available_scenarios()
        assert names == sorted(names)
        for name in ("adaptive-chaser", *MINED):
            assert name in names

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigurationError, match="unknown scenario preset"):
            get_scenario("no-such-preset")

    def test_load_scenario_resolves_presets_first(self):
        assert load_scenario("adaptive-chaser").to_dict() == get_scenario(
            "adaptive-chaser"
        ).to_dict()


class TestMinedArtifacts:
    @pytest.mark.parametrize("preset", sorted(MINED))
    def test_preset_is_byte_identical_to_artifact_winner(self, preset):
        artifact = _artifact(preset)
        preset_json = json.dumps(get_scenario(preset).to_dict(), sort_keys=True)
        winner_json = json.dumps(artifact["winner"]["spec"], sort_keys=True)
        assert preset_json == winner_json

    @pytest.mark.parametrize("preset", sorted(MINED))
    def test_artifact_meets_the_mining_bar(self, preset):
        artifact = _artifact(preset)
        assert artifact["winner"]["ratio_vs_baseline"] >= 2.0
        assert artifact["baseline"]["median_latency"] > 0

    def test_pbft_artifact_searched_at_least_twenty_specs(self):
        artifact = _artifact("worst-case-pbft-n32")
        assert len(artifact["lineage"]) >= 20
        assert artifact["base_config"]["protocol"] == "pbft"
        assert artifact["base_config"]["n"] == 32

    def test_tree_artifact_winner_targets_relays(self):
        artifact = _artifact("relay-chokehold-tree")
        clause = artifact["winner"]["spec"]["attacks"][0]
        assert clause["params"]["targets"] == "relays"
        assert artifact["base_config"]["network"]["dissemination"] == "tree"

    @pytest.mark.parametrize("preset", sorted(MINED))
    def test_winner_replays_to_recorded_fingerprint(self, preset):
        _, fingerprint, expected = replay_winner(_artifact(preset))
        assert fingerprint == expected

    def test_winner_replays_identically_in_a_fresh_process(self):
        # ParallelRunner workers are freshly spawned interpreters: this is
        # the artifact's cross-process replayability contract.
        from repro.parallel import ParallelRunner

        artifact = _artifact("worst-case-pbft-n32")
        config = winner_config(artifact)
        (entry,) = ParallelRunner(jobs=1).map([config])
        assert isinstance(entry, SimulationResult)
        assert result_fingerprint(entry) == artifact["winner"]["fingerprints"][0]
