"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest

from repro import AttackConfig, NetworkConfig, SimulationConfig

try:
    from hypothesis import HealthCheck, settings

    # Pinned deterministic profile for CI: derandomized example generation
    # and no deadline/health-check flakiness from loaded shared runners.
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    if os.environ.get("HYPOTHESIS_PROFILE"):
        settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])
except ImportError:  # pragma: no cover - hypothesis is a test extra
    pass


def quick_config(
    protocol: str = "pbft",
    n: int = 4,
    seed: int = 1,
    mean: float = 50.0,
    std: float = 10.0,
    lam: float = 500.0,
    num_decisions: int = 1,
    attack: AttackConfig | None = None,
    max_delay: float | None = None,
    dissemination: str = "full",
    fanout: int = 0,
    **kwargs,
) -> SimulationConfig:
    """A small, fast simulation configuration for unit tests."""
    return SimulationConfig(
        protocol=protocol,
        n=n,
        lam=lam,
        network=NetworkConfig(
            mean=mean,
            std=std,
            max_delay=max_delay,
            dissemination=dissemination,
            fanout=fanout,
        ),
        attack=attack or AttackConfig(),
        num_decisions=num_decisions,
        seed=seed,
        **kwargs,
    )


@pytest.fixture
def pbft_config() -> SimulationConfig:
    return quick_config()


def sync_config(protocol: str, **kwargs) -> SimulationConfig:
    """Config for synchronous protocols: delays bounded below lambda."""
    kwargs.setdefault("max_delay", 0.99 * kwargs.get("lam", 500.0))
    return quick_config(protocol=protocol, **kwargs)
