"""Tests for Bracha's asynchronous binary agreement."""

from __future__ import annotations

import pytest

from repro import run_simulation

from tests.conftest import quick_config


def asyncba(**kwargs):
    kwargs.setdefault("protocol", "async-ba")
    kwargs.setdefault("n", 7)
    return quick_config(**kwargs)


class TestTermination:
    def test_mixed_inputs_terminate(self):
        result = run_simulation(asyncba())
        assert result.terminated
        assert result.decided_values[0] in (0, 1)

    def test_unanimous_inputs_decide_round_one(self):
        result = run_simulation(
            asyncba(protocol_params={"unanimous": True}, record_trace=True)
        )
        assert result.terminated
        assert result.decided_values[0] == 1
        rounds = {e.fields["round"] for e in result.trace.events(kind="round")}
        assert max(rounds) <= 2, "unanimous inputs decide in the first round"

    def test_explicit_inputs_respected(self):
        result = run_simulation(
            asyncba(protocol_params={"inputs": [0] * 7})
        )
        assert result.decided_values[0] == 0

    def test_validity(self):
        """The decision must be some node's input (here: all inputs 1)."""
        result = run_simulation(asyncba(protocol_params={"inputs": [1] * 7}))
        assert result.decided_values[0] == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_probabilistic_termination_across_seeds(self, seed):
        result = run_simulation(asyncba(seed=seed, max_time=600_000.0))
        assert result.terminated


class TestAsynchrony:
    def test_no_timers_used(self):
        result = run_simulation(asyncba(record_trace=True))
        assert result.trace.events(kind="timer") == []

    def test_lambda_irrelevant(self):
        """The latency of async BA must not depend on lambda at all."""
        a = run_simulation(asyncba(lam=100.0, seed=3))
        b = run_simulation(asyncba(lam=10_000.0, seed=3))
        assert a.latency == b.latency

    def test_latency_tracks_network_speed(self):
        fast = run_simulation(asyncba(mean=10.0, std=2.0, seed=3))
        slow = run_simulation(asyncba(mean=100.0, std=20.0, seed=3))
        assert slow.latency > fast.latency * 3

    def test_survives_unbounded_delays(self):
        result = run_simulation(
            asyncba(mean=100.0, std=150.0, max_time=600_000.0)
        )
        assert result.terminated

    def test_coin_reported_when_rounds_disagree(self):
        """With adversarially mixed inputs, some seeds need the coin."""
        used_coin = False
        for seed in range(8):
            result = run_simulation(asyncba(seed=seed, record_trace=True))
            if result.trace.events(kind="coin"):
                used_coin = True
                break
        assert used_coin, "mixed inputs should exercise the common coin sometimes"
