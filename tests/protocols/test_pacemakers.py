"""Unit tests for the pacemaker timeout policies."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.protocols.pacemakers import (
    AdaptiveTimeoutPolicy,
    PerNodeDoublingPolicy,
    ViewDoublingPolicy,
)


class TestViewDoubling:
    def test_duration_indexed_by_view(self):
        policy = ViewDoublingPolicy(base=100.0)
        assert policy.duration_of(1) == 100.0
        assert policy.duration_of(2) == 200.0
        assert policy.duration_of(5) == 1600.0

    def test_views_before_anchor_are_base(self):
        policy = ViewDoublingPolicy(base=100.0)
        policy.on_commit(10)
        assert policy.duration_of(3) == 100.0
        assert policy.duration_of(10) == 100.0
        assert policy.duration_of(12) == 400.0

    def test_anchor_monotone(self):
        policy = ViewDoublingPolicy(base=100.0)
        policy.on_commit(10)
        policy.on_commit(4)  # stale commit cannot move the anchor back
        assert policy.anchor == 10

    def test_exponent_capped(self):
        policy = ViewDoublingPolicy(base=1.0, max_doublings=5)
        assert policy.duration_of(1000) == 32.0

    def test_bad_base_rejected(self):
        with pytest.raises(ConfigurationError):
            ViewDoublingPolicy(base=0.0)

    def test_bad_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            ViewDoublingPolicy(base=1.0, max_doublings=0)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_property_durations_double(self, view):
        policy = ViewDoublingPolicy(base=10.0, max_doublings=24)
        if view - 1 < 24:
            assert policy.duration_of(view + 1) == 2 * policy.duration_of(view)


class TestPerNodeDoubling:
    def test_doubles_on_timeout(self):
        policy = PerNodeDoublingPolicy(base=100.0)
        assert policy.current() == 100.0
        policy.on_timeout()
        assert policy.current() == 200.0
        policy.on_timeout()
        assert policy.current() == 400.0

    def test_progress_resets(self):
        policy = PerNodeDoublingPolicy(base=100.0)
        for _ in range(4):
            policy.on_timeout()
        policy.on_progress()
        assert policy.current() == 100.0

    def test_cap(self):
        policy = PerNodeDoublingPolicy(base=1.0, max_doublings=3)
        for _ in range(10):
            policy.on_timeout()
        assert policy.current() == 8.0

    def test_bad_base_rejected(self):
        with pytest.raises(ConfigurationError):
            PerNodeDoublingPolicy(base=-1.0)


class TestAdaptiveTimeout:
    def test_doubles_on_timeout(self):
        policy = AdaptiveTimeoutPolicy(base=100.0)
        policy.on_timeout()
        assert policy.current() == 200.0

    def test_decays_on_commit_with_floor(self):
        policy = AdaptiveTimeoutPolicy(base=100.0, decay=0.5)
        for _ in range(3):
            policy.on_timeout()  # 800
        policy.on_commit()
        assert policy.current() == 400.0
        for _ in range(5):
            policy.on_commit()
        assert policy.current() == 100.0  # floored at base

    def test_settles_instead_of_oscillating(self):
        """The Fig. 5 mechanism: with a working point above base, repeated
        success keeps the timeout near the working point, not at base."""
        policy = AdaptiveTimeoutPolicy(base=100.0, decay=0.9)
        for _ in range(3):
            policy.on_timeout()
        before = policy.current()
        policy.on_commit()
        assert policy.current() > before * 0.8

    def test_bad_decay_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveTimeoutPolicy(base=1.0, decay=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveTimeoutPolicy(base=1.0, decay=1.5)
