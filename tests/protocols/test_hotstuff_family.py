"""Behavioural tests for HotStuff+NS and LibraBFT."""

from __future__ import annotations

import pytest

from repro import AttackConfig, run_simulation
from repro.core.errors import ConfigurationError

from tests.conftest import quick_config


def hs(**kwargs):
    kwargs.setdefault("protocol", "hotstuff-ns")
    kwargs.setdefault("num_decisions", 5)
    return quick_config(**kwargs)


def libra(**kwargs):
    kwargs.setdefault("protocol", "librabft")
    kwargs.setdefault("num_decisions", 5)
    return quick_config(**kwargs)


class TestHappyPath:
    @pytest.mark.parametrize("factory", [hs, libra])
    def test_pipelined_decisions(self, factory):
        result = run_simulation(factory())
        assert result.terminated
        # At least the required five slots; the pipeline may overshoot by a
        # slot on the terminating event.
        assert set(range(5)) <= set(result.decided_values)

    @pytest.mark.parametrize("factory", [hs, libra])
    def test_linear_message_usage(self, factory):
        """Chained HotStuff sends ~2n messages per view (proposal broadcast
        plus votes to one leader) — far below PBFT's ~2n^2."""
        result = run_simulation(factory(n=10))
        per_decision = result.messages_per_decision
        assert per_decision < 4 * 10

    def test_identical_behaviour_without_timeouts(self):
        """With generous timeouts the pacemakers never fire, so both
        protocols reduce to the same chained core."""
        a = run_simulation(hs(seed=4))
        b = run_simulation(libra(seed=4))
        assert a.latency == b.latency
        assert a.messages == b.messages

    def test_chain_values_sequential(self):
        result = run_simulation(hs())
        for slot, value in result.decided_values.items():
            assert f"slot={slot}" in value


class TestSynchronizers:
    def test_unknown_synchronizer_rejected(self):
        with pytest.raises(ConfigurationError):
            run_simulation(hs(protocol_params={"synchronizer": "telepathy"}))

    @pytest.mark.parametrize("synchronizer", ["per-node", "view-indexed"])
    def test_both_synchronizers_terminate(self, synchronizer):
        result = run_simulation(hs(protocol_params={"synchronizer": synchronizer}))
        assert result.terminated

    def test_underestimated_timeout_causes_timeouts(self):
        """lam far below the delay forces view timeouts; progress must
        still be made (the struggle resolves)."""
        result = run_simulation(
            hs(n=7, lam=20.0, mean=50.0, std=10.0, record_trace=True, max_time=600_000.0)
        )
        assert result.terminated
        timeout_entries = [
            e for e in result.trace.events(kind="view") if e.fields.get("via") == "timeout"
        ]
        assert timeout_entries, "some views must be entered by timeout"

    def test_view_indexed_growth_is_shared(self):
        result = run_simulation(
            hs(
                n=7, lam=20.0, mean=50.0, std=10.0, max_time=600_000.0,
                protocol_params={"synchronizer": "view-indexed"},
            )
        )
        assert result.terminated


class TestFailStopResilience:
    def test_hotstuff_survives_crashed_leader(self):
        # n=5, not 4: with n=4 round-robin a single dead node owns every
        # fourth view AND collects the preceding view's votes, so three
        # consecutive QCs (the chained commit rule) can never form.
        result = run_simulation(
            hs(
                n=5,
                attack=AttackConfig(name="failstop", params={"nodes": [1]}),
                max_time=600_000.0,
            )
        )
        assert result.terminated

    def test_librabft_survives_crashed_leader(self):
        result = run_simulation(
            libra(
                n=5,
                attack=AttackConfig(name="failstop", params={"nodes": [1]}),
                max_time=600_000.0,
            )
        )
        assert result.terminated

    def test_librabft_timeout_certificates_fire(self):
        result = run_simulation(
            libra(
                n=5,
                attack=AttackConfig(name="failstop", params={"nodes": [1]}),
                max_time=600_000.0,
                record_trace=True,
            )
        )
        tc_entries = [
            e for e in result.trace.events(kind="view") if e.fields.get("via") == "tc"
        ]
        assert tc_entries, "rounds with a crashed leader advance via TC"

    def test_librabft_recovers_faster_than_hotstuff_after_outage(self):
        """The Fig. 6 mechanism in miniature: after a partition, HotStuff+NS
        waits out accumulated back-off; LibraBFT's TC forms promptly."""
        attack = AttackConfig(name="partition", params={"end": 5_000.0})
        slow = run_simulation(hs(n=5, attack=attack, max_time=600_000.0))
        fast = run_simulation(libra(n=5, attack=attack, max_time=600_000.0))
        assert fast.terminated and slow.terminated
        assert fast.latency <= slow.latency
