"""Tests for the ADD+ family (v1/v2/v3)."""

from __future__ import annotations

import pytest

from repro import AttackConfig, run_simulation

from tests.conftest import sync_config

VARIANTS = ["add-v1", "add-v2", "add-v3"]
#: Iteration length in lambdas, per variant (propose..resolve schedule).
ITERATION_LAMBDAS = {"add-v1": 3, "add-v2": 4, "add-v3": 3}


def add(variant, **kwargs):
    kwargs.setdefault("n", 7)
    kwargs.setdefault("lam", 200.0)
    return sync_config(variant, **kwargs)


class TestHappyPath:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_decides_in_one_iteration(self, variant):
        config = add(variant)
        result = run_simulation(config)
        assert result.terminated
        expected = ITERATION_LAMBDAS[variant] * config.lam
        assert result.latency == pytest.approx(expected)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_latency_scales_with_lambda(self, variant):
        """Synchronous protocols are clocked off lambda (Fig. 4)."""
        small = run_simulation(add(variant, lam=100.0))
        large = run_simulation(add(variant, lam=300.0))
        assert large.latency == pytest.approx(3 * small.latency)

    def test_v1_leader_is_round_robin(self):
        result = run_simulation(add("add-v1"))
        assert "proposer=0" in result.decided_values[0]

    @pytest.mark.parametrize("variant", ["add-v2", "add-v3"])
    def test_vrf_leaders_vary_with_seed(self, variant):
        proposers = {
            run_simulation(add(variant, seed=seed)).decided_values[0]
            for seed in range(6)
        }
        assert len(proposers) > 1, "VRF election should pick different leaders"


class TestFailStop:
    def test_v1_crashed_scheduled_leader_costs_iterations(self):
        crashed = run_simulation(
            add("add-v1", attack=AttackConfig(name="failstop", params={"nodes": [0]}))
        )
        clean = run_simulation(add("add-v1"))
        assert crashed.latency == pytest.approx(clean.latency * 2)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_tolerates_minority_failstop(self, variant):
        result = run_simulation(
            add(
                variant,
                n=7,
                attack=AttackConfig(name="failstop", params={"count": 3}),
                max_time=600_000.0,
            )
        )
        assert result.terminated


class TestAttacks:
    def test_static_attack_delays_v1_linearly(self):
        budget = 3
        result = run_simulation(
            add(
                "add-v1",
                attack=AttackConfig(name="add-static", params={"count": budget}),
                max_time=600_000.0,
            )
        )
        clean = run_simulation(add("add-v1"))
        assert result.latency == pytest.approx(clean.latency * (budget + 1))

    @pytest.mark.parametrize("variant", ["add-v2", "add-v3"])
    def test_static_attack_harmless_against_vrf(self, variant):
        result = run_simulation(
            add(
                variant,
                attack=AttackConfig(name="add-static", params={"count": 3}),
                max_time=600_000.0,
            )
        )
        clean = run_simulation(add(variant))
        # One unlucky iteration is possible; linear-in-f delay is not.
        assert result.latency <= clean.latency * 2

    def test_adaptive_attack_burns_v2_budget(self):
        budget = 3
        result = run_simulation(
            add(
                "add-v2",
                attack=AttackConfig(name="add-adaptive", params={"budget": budget}),
                max_time=600_000.0,
            )
        )
        clean = run_simulation(add("add-v2"))
        assert result.latency == pytest.approx(clean.latency * (budget + 1))
        assert len(result.faulty) == budget

    def test_adaptive_attack_fails_against_v3(self):
        """The prepare round: corruption comes too late to retract the
        winning proposal (no-after-the-fact-removal)."""
        result = run_simulation(
            add(
                "add-v3",
                attack=AttackConfig(name="add-adaptive", params={"budget": 3}),
                max_time=600_000.0,
            )
        )
        clean = run_simulation(add("add-v3"))
        assert result.latency == pytest.approx(clean.latency)

    def test_adaptive_attacker_corrupts_the_actual_winner(self):
        result = run_simulation(
            add(
                "add-v2",
                attack=AttackConfig(name="add-adaptive", params={"budget": 1}),
                max_time=600_000.0,
                record_trace=True,
            )
        )
        assert result.terminated
        corruptions = result.trace.events(kind="corrupt")
        assert len(corruptions) == 1


class TestLocking:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_agreement_under_lossy_phases(self, variant):
        """Delays close to the bound stress the phase windows; locking must
        keep honest nodes agreed (regression test for the lock-respecting
        vote rule)."""
        for seed in range(3):
            result = run_simulation(
                add(
                    variant,
                    mean=190.0,
                    std=60.0,
                    seed=seed,
                    max_time=1_800_000.0,
                )
            )
            values = {d.value for d in result.decisions}
            assert len(values) == 1
