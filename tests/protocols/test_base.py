"""Tests for protocol base helpers: VoteCounter, quorum sizes, resilience."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import Controller
from repro.core.errors import ConfigurationError
from repro.protocols import VoteCounter, get_protocol

from tests.conftest import quick_config


class TestVoteCounter:
    def test_counts_distinct_voters(self):
        votes = VoteCounter()
        assert votes.add("k", 0) == 1
        assert votes.add("k", 1) == 2
        assert votes.add("k", 1) == 2  # duplicate voter ignored

    def test_keys_independent(self):
        votes = VoteCounter()
        votes.add("a", 0)
        votes.add("b", 0)
        assert votes.count("a") == 1
        assert votes.count("b") == 1

    def test_count_missing_key_is_zero(self):
        assert VoteCounter().count("nope") == 0

    def test_voters_and_has_voted(self):
        votes = VoteCounter()
        votes.add("k", 3)
        votes.add("k", 5)
        assert votes.voters("k") == frozenset({3, 5})
        assert votes.has_voted("k", 3)
        assert not votes.has_voted("k", 4)

    def test_best_returns_max(self):
        votes = VoteCounter()
        for voter in range(3):
            votes.add("popular", voter)
        votes.add("niche", 9)
        assert votes.best() == ("popular", 3)

    def test_best_empty_is_none(self):
        assert VoteCounter().best() is None

    def test_best_tie_deterministic(self):
        a, b = VoteCounter(), VoteCounter()
        for counter in (a, b):
            counter.add("x", 0)
            counter.add("y", 1)
        assert a.best() == b.best()

    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 20)),
            max_size=100,
        )
    )
    def test_property_count_equals_distinct_voters(self, entries):
        votes = VoteCounter()
        for key, voter in entries:
            votes.add(key, voter)
        for key in ("a", "b", "c"):
            expected = len({v for k, v in entries if k == key})
            assert votes.count(key) == expected


class TestQuorums:
    def test_quorum_sizes(self):
        controller = Controller(quick_config(n=16, f=5))
        node = controller.nodes[0]
        assert node.quorum("byzantine") == 11
        assert node.quorum("available") == 11
        assert node.quorum("plurality") == 6

    def test_unknown_quorum_kind(self):
        controller = Controller(quick_config(n=4))
        with pytest.raises(ValueError):
            controller.nodes[0].quorum("magic")


class TestResilience:
    @pytest.mark.parametrize(
        "protocol,n,expected",
        [
            ("pbft", 16, 5),
            ("pbft", 4, 1),
            ("hotstuff-ns", 16, 5),
            ("async-ba", 16, 5),
            ("algorand", 16, 5),  # partition resilience costs n/3
            ("add-v1", 16, 7),  # synchronous: minority
            ("add-v2", 17, 8),
            ("add-v3", 4, 1),
        ],
    )
    def test_max_resilience(self, protocol, n, expected):
        assert get_protocol(protocol).max_resilience(n) == expected

    def test_check_resilience_rejects_excess(self):
        with pytest.raises(ConfigurationError):
            get_protocol("pbft").check_resilience(16, 6)

    def test_check_resilience_accepts_bound(self):
        get_protocol("add-v1").check_resilience(16, 7)

    def test_proposal_values_distinct_per_proposer(self):
        controller = Controller(quick_config(n=4))
        a = controller.nodes[0].proposal_value(0, 1)
        b = controller.nodes[1].proposal_value(0, 1)
        assert a != b

    def test_metadata_declared(self):
        for name in ("pbft", "hotstuff-ns", "librabft"):
            cls = get_protocol(name)
            assert cls.responsive
        for name in ("add-v1", "add-v2", "add-v3", "algorand"):
            assert not get_protocol(name).responsive
        for name in ("hotstuff-ns", "librabft"):
            assert get_protocol(name).pipelined
