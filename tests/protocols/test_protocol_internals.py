"""Deeper behavioural tests of protocol-internal mechanisms."""

from __future__ import annotations

import pytest

from repro import AttackConfig, run_simulation
from repro.core.config import NetworkConfig, SimulationConfig

from tests.conftest import quick_config, sync_config


class TestPBFTViewChangeInternals:
    def test_view_change_messages_emitted(self):
        config = quick_config(
            n=4,
            attack=AttackConfig(name="failstop", params={"nodes": [0]}),
            record_trace=True,
        )
        result = run_simulation(config)
        sends = result.trace.events(kind="send")
        kinds = {e.fields["msg_type"] for e in sends}
        assert "VIEW-CHANGE" in kinds and "NEW-VIEW" in kinds

    def test_prepared_value_reproposed_after_view_change(self):
        """If any replica prepared in the old view, the new leader must
        re-propose that value (PBFT's safety-critical view-change rule).
        We force this with a leader crash *after* the pre-prepare round."""
        config = quick_config(
            n=4,
            attack=AttackConfig(name="failstop", params={"nodes": [0], "at": 130.0}),
            mean=50.0,
            std=5.0,
            max_time=600_000.0,
        )
        result = run_simulation(config)
        assert result.terminated
        # Whatever was decided, it is one agreed value (safety) and it is
        # the crashed leader's proposal iff anyone prepared it in view 0.
        values = {d.value for d in result.decisions if d.slot == 0}
        assert len(values) == 1

    def test_new_view_comes_from_new_leader(self):
        config = quick_config(
            n=4,
            attack=AttackConfig(name="failstop", params={"nodes": [0]}),
            record_trace=True,
        )
        result = run_simulation(config)
        new_views = [
            e for e in result.trace.events(kind="send")
            if e.fields["msg_type"] == "NEW-VIEW"
        ]
        assert new_views and all(e.node == 1 for e in new_views)


class TestLibraBFTRetransmission:
    def test_timeout_votes_retransmitted_while_stuck(self):
        """During a partition no TC can form; replicas must keep
        rebroadcasting their timeout votes at a fixed cadence."""
        config = quick_config(
            protocol="librabft",
            n=5,
            num_decisions=3,
            attack=AttackConfig(name="partition", params={"end": 4_000.0}),
            record_trace=True,
            max_time=600_000.0,
        )
        result = run_simulation(config)
        timeouts = [
            e for e in result.trace.events(kind="send")
            if e.fields["msg_type"] == "TIMEOUT" and e.time < 4_000.0
        ]
        per_node = {}
        for e in timeouts:
            per_node[e.node] = per_node.get(e.node, 0) + 1
        assert max(per_node.values()) > 4, "votes must be retransmitted"


class TestAlgorandBottomSwitch:
    def test_bottom_voters_switch_to_certified_value(self):
        """After a partition, bottom next-voters must adopt the other
        side's certified value (the f+1 switch rule) so periods advance."""
        config = sync_config(
            "algorand",
            n=7,
            lam=500.0,
            attack=AttackConfig(
                name="partition",
                params={"groups": [[0, 1, 2, 3], [4, 5, 6]], "end": 6_000.0},
            ),
            record_trace=True,
            max_time=600_000.0,
        )
        result = run_simulation(config)
        assert result.terminated
        values = {d.value for d in result.decisions}
        assert len(values) == 1


class TestAsyncBAThresholds:
    def test_progress_requires_quorum(self):
        """With only n - f - 1 live nodes, async BA cannot even finish a
        phase: the run must stall (liveness loss, no crash)."""
        config = quick_config(
            protocol="async-ba",
            n=7,  # f = 2, quorum n - f = 5
            attack=AttackConfig(name="failstop", params={"nodes": [4, 5, 6]}),
            f=2,
            max_time=30_000.0,
            allow_horizon=True,
        )
        # 3 crashes > f: the attacker budget check must reject this...
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_simulation(config)

    def test_tolerates_exactly_f_crashes(self):
        config = quick_config(
            protocol="async-ba",
            n=7,
            attack=AttackConfig(name="failstop", params={"count": 2}),
            max_time=600_000.0,
        )
        assert run_simulation(config).terminated


class TestGSTBehaviour:
    def test_pbft_rides_out_unstable_prefix(self):
        """Pre-GST delays are 20x: PBFT should churn views before GST and
        settle after it — and always stay safe."""
        config = SimulationConfig(
            protocol="pbft",
            n=7,
            lam=500.0,
            network=NetworkConfig(
                mean=50.0, std=10.0, gst=5_000.0, pre_gst_factor=20.0
            ),
            num_decisions=3,
            seed=4,
            record_trace=True,
            max_time=600_000.0,
        )
        result = run_simulation(config)
        assert result.terminated
        assert result.max_view >= 1, "pre-GST instability should cost views"
        values_per_slot: dict[int, set] = {}
        for d in result.decisions:
            values_per_slot.setdefault(d.slot, set()).add(d.value)
        assert all(len(v) == 1 for v in values_per_slot.values())
