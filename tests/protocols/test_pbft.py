"""Tests for PBFT: happy path, view changes, safety mechanics."""

from __future__ import annotations

import pytest

from repro import AttackConfig, run_simulation

from tests.conftest import quick_config


def pbft(**kwargs):
    kwargs.setdefault("protocol", "pbft")
    return quick_config(**kwargs)


class TestHappyPath:
    def test_single_decision(self):
        result = run_simulation(pbft())
        assert result.terminated
        assert result.decided_values[0].startswith("value(")

    def test_leader_zero_proposes_slot_zero(self):
        result = run_simulation(pbft())
        assert "proposer=0" in result.decided_values[0]

    def test_three_phase_latency(self):
        """One decision needs pre-prepare + prepare + commit: about three
        network hops, well under one timeout at mean=50ms, lam=500ms."""
        result = run_simulation(pbft(mean=50.0, std=5.0))
        assert 100.0 < result.latency < 500.0

    def test_quadratic_message_usage(self):
        """PBFT sends ~2n^2 messages per decision."""
        result = run_simulation(pbft(n=10))
        expected = 9 + 2 * 10 * 9  # pre-prepare + prepare + commit
        assert result.messages == pytest.approx(expected, rel=0.1)

    def test_multi_slot_smr(self):
        result = run_simulation(pbft(num_decisions=5))
        assert sorted(result.decided_values) == [0, 1, 2, 3, 4]

    def test_no_view_change_in_happy_path(self):
        result = run_simulation(pbft(record_trace=True))
        views = {e.fields["view"] for e in result.trace.events(kind="view")}
        assert views == {0}


class TestViewChange:
    def test_crashed_leader_triggers_view_change(self):
        config = pbft(
            n=4,
            attack=AttackConfig(name="failstop", params={"nodes": [0]}),
            record_trace=True,
        )
        result = run_simulation(config)
        assert result.terminated
        views = {e.fields["view"] for e in result.trace.events(kind="view")}
        assert 1 in views, "nodes must move to view 1"
        assert "proposer=1" in result.decided_values[0], "leader 1 re-proposes"

    def test_view_change_latency_includes_timeout(self):
        config = pbft(n=4, attack=AttackConfig(name="failstop", params={"nodes": [0]}))
        result = run_simulation(config)
        assert result.latency > config.lam  # must wait out the view timer

    def test_two_crashed_leaders(self):
        config = pbft(
            n=7,
            attack=AttackConfig(name="failstop", params={"nodes": [0, 1]}),
        )
        result = run_simulation(config)
        assert result.terminated
        assert "proposer=2" in result.decided_values[0]

    def test_mid_run_crash_after_first_decision(self):
        config = pbft(
            n=7,
            num_decisions=3,
            attack=AttackConfig(name="failstop", params={"nodes": [0], "at": 400.0}),
            max_time=60_000.0,
        )
        result = run_simulation(config)
        assert result.terminated
        assert len(result.decided_values) == 3

    def test_timeout_doubles_across_view_changes(self):
        """With two crashed leaders the second view change waits 2x lam."""
        one = run_simulation(
            pbft(n=7, attack=AttackConfig(name="failstop", params={"nodes": [0]}))
        )
        two = run_simulation(
            pbft(n=7, attack=AttackConfig(name="failstop", params={"nodes": [0, 1]}))
        )
        # view changes cost lam then 2*lam: the gap must exceed one lam.
        assert two.latency - one.latency > 500.0 * 0.9


class TestSafetyMechanics:
    def test_safety_under_equivocation(self):
        """A corrupted leader equivocates; honest nodes must still agree."""
        config = pbft(
            n=4,
            attack=AttackConfig(name="pbft-equivocation", params={"target": 0}),
            max_time=120_000.0,
        )
        result = run_simulation(config)
        assert result.terminated
        values = {d.value for d in result.decisions if d.slot == 0}
        assert len(values) == 1, "equivocation must not split honest decisions"

    def test_commit_carries_value_for_laggards(self):
        result = run_simulation(pbft(record_trace=True))
        assert result.terminated  # smoke: the value-carrying commit works

    def test_decides_under_jittery_network(self):
        result = run_simulation(pbft(mean=200.0, std=150.0, lam=1000.0, max_time=600_000.0))
        assert result.terminated
