"""Test package."""
