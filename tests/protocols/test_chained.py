"""White-box tests for the chained-HotStuff core: block tree, commit rule."""

from __future__ import annotations

from repro.crypto.quorum import make_qc
from repro.protocols.chained import Block, BlockTree, GENESIS_DIGEST


def block(digest, parent, view, qc_view=None, qc_ref=None, height=1):
    qc = make_qc(qc_view, qc_ref, frozenset(range(3))) if qc_ref is not None else None
    return Block(digest=digest, parent=parent, view=view, value=f"v-{digest}",
                 qc=qc, height=height)


class TestBlockTree:
    def test_contains_genesis(self):
        tree = BlockTree()
        assert GENESIS_DIGEST in tree
        assert len(tree) == 1

    def test_add_and_get(self):
        tree = BlockTree()
        b = block("b1", GENESIS_DIGEST, 1, 0, GENESIS_DIGEST)
        tree.add(b)
        assert tree.get("b1") is b

    def test_first_block_wins_for_digest(self):
        tree = BlockTree()
        first = block("b1", GENESIS_DIGEST, 1)
        second = block("b1", GENESIS_DIGEST, 2)
        tree.add(first)
        tree.add(second)
        assert tree.get("b1").view == 1

    def test_get_none(self):
        assert BlockTree().get(None) is None
        assert BlockTree().get("missing") is None

    def test_ancestors_walk(self):
        tree = BlockTree()
        tree.add(block("b1", GENESIS_DIGEST, 1))
        tree.add(block("b2", "b1", 2, height=2))
        chain = [b.digest for b in tree.ancestors("b2")]
        assert chain == ["b2", "b1", GENESIS_DIGEST]

    def test_ancestors_stop_at_gap(self):
        tree = BlockTree()
        tree.add(block("b2", "missing-parent", 2, height=2))
        chain = [b.digest for b in tree.ancestors("b2")]
        assert chain == ["b2"]

    def test_extends(self):
        tree = BlockTree()
        tree.add(block("b1", GENESIS_DIGEST, 1))
        tree.add(block("b2", "b1", 2, height=2))
        tree.add(block("c1", GENESIS_DIGEST, 3))  # fork
        assert tree.extends("b2", "b1")
        assert tree.extends("b2", GENESIS_DIGEST)
        assert not tree.extends("c1", "b1")

    def test_everything_extends_genesis(self):
        tree = BlockTree()
        assert tree.extends("even-unknown", GENESIS_DIGEST)


class TestCommitRule:
    """Drive the three-chain rule through a real replica instance."""

    def _replica(self):
        from repro import Controller
        from tests.conftest import quick_config

        controller = Controller(quick_config(protocol="hotstuff-ns", n=4))
        return controller.nodes[0]

    def _wire(self, replica, digest, parent, view, qc_view, qc_ref, height):
        b = Block(
            digest=digest, parent=parent, view=view, value=f"v-{digest}",
            qc=make_qc(qc_view, qc_ref, frozenset(range(3))), height=height,
        )
        replica.tree.add(b)
        return b

    def test_consecutive_three_chain_commits(self):
        replica = self._replica()
        self._wire(replica, "b1", GENESIS_DIGEST, 1, 0, GENESIS_DIGEST, 1)
        self._wire(replica, "b2", "b1", 2, 1, "b1", 2)
        self._wire(replica, "b3", "b2", 3, 2, "b2", 3)
        carrier = self._wire(replica, "b4", "b3", 4, 3, "b3", 4)
        decided = []
        replica.decide = lambda slot, value: decided.append((slot, value))
        replica._apply_commit_rules(carrier)
        assert decided == [(0, "v-b1")]

    def test_gap_in_views_blocks_commit(self):
        replica = self._replica()
        self._wire(replica, "b1", GENESIS_DIGEST, 1, 0, GENESIS_DIGEST, 1)
        self._wire(replica, "b2", "b1", 2, 1, "b1", 2)
        self._wire(replica, "b3", "b2", 5, 2, "b2", 3)  # view jump: 2 -> 5
        carrier = self._wire(replica, "b4", "b3", 6, 5, "b3", 4)
        decided = []
        replica.decide = lambda slot, value: decided.append((slot, value))
        replica._apply_commit_rules(carrier)
        assert decided == []

    def test_lock_advances_on_two_chain(self):
        replica = self._replica()
        self._wire(replica, "b1", GENESIS_DIGEST, 1, 0, GENESIS_DIGEST, 1)
        self._wire(replica, "b2", "b1", 2, 1, "b1", 2)
        carrier = self._wire(replica, "b3", "b2", 3, 2, "b2", 3)
        replica._apply_commit_rules(carrier)
        assert replica.locked_qc.ref == "b1"

    def test_commit_includes_skipped_ancestors(self):
        """Committing a block decides any uncommitted ancestors first."""
        replica = self._replica()
        self._wire(replica, "a", GENESIS_DIGEST, 1, 0, GENESIS_DIGEST, 1)
        self._wire(replica, "b1", "a", 2, 1, "a", 2)
        self._wire(replica, "b2", "b1", 3, 2, "b1", 3)
        self._wire(replica, "b3", "b2", 4, 3, "b2", 4)
        carrier = self._wire(replica, "b4", "b3", 5, 4, "b3", 5)
        decided = []
        replica.decide = lambda slot, value: decided.append((slot, value))
        replica._apply_commit_rules(carrier)
        # b1 commits via the chain (b1,b2,b3 consecutive): ancestors a, b1.
        assert decided == [(0, "v-a"), (1, "v-b1")]
