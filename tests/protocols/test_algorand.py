"""Tests for Algorand Agreement."""

from __future__ import annotations

import pytest

from repro import AttackConfig, run_simulation

from tests.conftest import sync_config


def algorand(**kwargs):
    kwargs.setdefault("n", 7)
    kwargs.setdefault("lam", 500.0)
    return sync_config("algorand", **kwargs)


class TestHappyPath:
    def test_decides_in_first_period(self):
        result = run_simulation(algorand(record_trace=True))
        assert result.terminated
        periods = {e.fields["view"] for e in result.trace.events(kind="view")}
        assert periods == {0}

    def test_latency_is_lambda_bound(self):
        """Soft-votes fire at 2*lambda: latency is a multiple of lambda,
        not of the network delay (non-responsive)."""
        result = run_simulation(algorand(mean=20.0, std=4.0))
        assert result.latency > 2 * 500.0

    def test_leader_is_lowest_credential(self):
        """All honest nodes adopt the same VRF-elected proposal."""
        result = run_simulation(algorand())
        values = {d.value for d in result.decisions}
        assert len(values) == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_deterministic_and_live_across_seeds(self, seed):
        result = run_simulation(algorand(seed=seed))
        assert result.terminated


class TestFaults:
    def test_tolerates_failstop_third(self):
        result = run_simulation(
            algorand(
                n=7,  # f = 2
                attack=AttackConfig(name="failstop", params={"count": 2}),
                max_time=600_000.0,
            )
        )
        assert result.terminated

    def test_partition_resilience(self):
        """Algorand holds position during a partition and recovers after
        the heal — no exponential back-off accumulates."""
        heal = 10_000.0
        result = run_simulation(
            algorand(
                n=7,
                attack=AttackConfig(name="partition", params={"end": heal}),
                max_time=600_000.0,
                record_trace=True,
            )
        )
        assert result.terminated
        assert result.latency < heal + 20 * 500.0

    def test_safety_across_partition(self):
        result = run_simulation(
            algorand(
                n=7,
                attack=AttackConfig(name="partition", params={"end": 10_000.0}),
                max_time=600_000.0,
            )
        )
        values = {d.value for d in result.decisions}
        assert len(values) == 1
