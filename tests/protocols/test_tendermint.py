"""Tests for the Tendermint extension protocol."""

from __future__ import annotations

import pytest

from repro import AttackConfig, run_simulation

from tests.conftest import quick_config


def tm(**kwargs):
    kwargs.setdefault("protocol", "tendermint")
    kwargs.setdefault("n", 7)
    return quick_config(**kwargs)


class TestHappyPath:
    def test_three_hop_decision(self):
        result = run_simulation(tm(mean=50.0, std=5.0))
        assert result.terminated
        # propose + prevote + precommit: about three network hops.
        assert 120.0 < result.latency < 400.0

    def test_multi_height_smr(self):
        result = run_simulation(tm(num_decisions=4))
        assert sorted(result.decided_values) == [0, 1, 2, 3]

    def test_proposer_rotates_per_height(self):
        result = run_simulation(tm(num_decisions=3))
        proposers = {
            result.decided_values[h].split("proposer=")[1][0] for h in range(3)
        }
        assert len(proposers) == 3

    def test_quadratic_message_usage(self):
        """Prevote and precommit are all-to-all: ~2n^2 per height."""
        result = run_simulation(tm(n=10))
        assert result.messages == pytest.approx(2 * 10 * 9 + 9, rel=0.15)

    def test_responsive_to_lambda(self):
        fast = run_simulation(tm(lam=500.0, seed=3))
        slow = run_simulation(tm(lam=2_000.0, seed=3))
        assert fast.latency == slow.latency


class TestRounds:
    def test_crashed_proposer_forces_new_round(self):
        result = run_simulation(
            tm(
                attack=AttackConfig(name="failstop", params={"nodes": [0]}),
                record_trace=True,
                max_time=600_000.0,
            )
        )
        assert result.terminated
        assert result.max_view >= 1  # at least one round change at height 0

    def test_round_timeout_grows_linearly(self):
        """Two consecutive dead proposers cost lam*(1) + lam*(1.5)."""
        one = run_simulation(
            tm(attack=AttackConfig(name="failstop", params={"nodes": [0]}),
               max_time=600_000.0)
        )
        two = run_simulation(
            tm(attack=AttackConfig(name="failstop", params={"nodes": [0, 1]}),
               max_time=600_000.0)
        )
        extra = two.latency - one.latency
        assert 0.8 * 1.5 * 500.0 < extra < 2.5 * 1.5 * 500.0

    def test_locking_prevents_disagreement_under_partition(self):
        result = run_simulation(
            tm(
                attack=AttackConfig(name="partition", params={"end": 3_000.0}),
                num_decisions=2,
                max_time=600_000.0,
            )
        )
        per_slot: dict[int, set] = {}
        for d in result.decisions:
            per_slot.setdefault(d.slot, set()).add(d.value)
        assert all(len(v) == 1 for v in per_slot.values())


class TestRegistryIntegration:
    def test_listed_as_available(self):
        from repro import available_protocols

        assert "tendermint" in available_protocols()

    def test_runs_on_baseline_engine(self):
        from repro.baseline import run_baseline_simulation

        result = run_baseline_simulation(tm(n=4, mean=50.0, std=5.0))
        assert result.terminated

    def test_validates_across_engines(self):
        from repro.baseline import run_baseline_simulation
        from repro.validator import compare_decisions, replay_simulation

        config = tm(n=4, mean=50.0, std=5.0, record_trace=True)
        ground_truth = run_baseline_simulation(config)
        replayed = replay_simulation(config, ground_truth.trace)
        assert compare_decisions(ground_truth.trace, replayed.trace).matches
