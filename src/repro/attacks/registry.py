"""Attack registry.

Attacks register under a stable name used by ``AttackConfig``.  Importing
:mod:`repro.attacks` registers the reference attacks (the paper's three,
plus the extensions)."""

from __future__ import annotations

from typing import Callable, Type, TypeVar

from ..core.config import AttackConfig
from ..core.errors import ConfigurationError
from .base import Attacker

_REGISTRY: dict[str, Type[Attacker]] = {}

A = TypeVar("A", bound=Type[Attacker])


def register_attack(name: str) -> Callable[[A], A]:
    """Class decorator: register an attacker under ``name``."""

    def decorator(cls: A) -> A:
        if name in _REGISTRY:
            raise ConfigurationError(f"attack {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def get_attack(name: str) -> Type[Attacker]:
    """Look up an attacker class by registry name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown attack {name!r}; available: {available_attacks()}"
        ) from None


def make_attacker(config: AttackConfig) -> Attacker:
    """Instantiate the attacker described by ``config``."""
    return get_attack(config.name)(config.params)


def available_attacks() -> list[str]:
    """Sorted names of every registered attack."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def _ensure_builtins() -> None:
    from . import (  # noqa: F401
        add_adaptive,
        add_static,
        equivocation,
        failstop,
        null,
        partition,
        targeted_delay,
    )
