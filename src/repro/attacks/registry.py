"""Attack registry.

Attacks register under a stable name used by ``AttackConfig``.  Importing
:mod:`repro.attacks` registers the reference attacks (the paper's three,
plus the extensions)."""

from __future__ import annotations

from typing import Callable, Type, TypeVar

from ..core.config import AttackConfig
from ..core.errors import ConfigurationError
from .base import Attacker

_REGISTRY: dict[str, Type[Attacker]] = {}

A = TypeVar("A", bound=Type[Attacker])


def register_attack(name: str) -> Callable[[A], A]:
    """Class decorator: register an attacker under ``name``.

    A leading underscore in ``name`` registers the attacker as *unlisted*
    (same convention as the protocol registry): usable from configurations,
    invisible to :func:`available_attacks` — so scripted test doubles never
    leak into the CLI listing or error messages.
    """

    def decorator(cls: A) -> A:
        if name in _REGISTRY:
            raise ConfigurationError(f"attack {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def get_attack(name: str) -> Type[Attacker]:
    """Look up an attacker class by registry name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown attack {name!r}; available: {available_attacks()}"
        ) from None


def make_attacker(config: AttackConfig) -> Attacker:
    """Instantiate the attacker described by ``config``."""
    return get_attack(config.name)(config.params)


def available_attacks() -> list[str]:
    """Sorted names of every *listed* registered attack.

    Names starting with an underscore are registered but unlisted: they
    stay resolvable through :func:`get_attack` but are hidden from
    enumeration — and from the ``ConfigurationError`` raised on a typo'd
    attack name, which quotes this listing.
    """
    _ensure_builtins()
    return sorted(name for name in _REGISTRY if not name.startswith("_"))


def _ensure_builtins() -> None:
    from . import (  # noqa: F401
        adaptive,
        add_adaptive,
        add_static,
        equivocation,
        failstop,
        null,
        partition,
        targeted_delay,
    )
    from ..scenarios import composite  # noqa: F401
