"""The benign pass-through attacker (no attack)."""

from __future__ import annotations

from ..core.message import Message
from .base import Attacker, Capability
from .registry import register_attack


@register_attack("null")
class NullAttacker(Attacker):
    """Does nothing: every message passes through untouched.

    Used for all benign-network experiments; also the reference point for
    the capability-enforcement tests (a ``NONE``-capability attacker cannot
    do anything else without raising).
    """

    capabilities = Capability.NONE

    def attack(self, message: Message):  # noqa: D102 - inherited contract
        return None
