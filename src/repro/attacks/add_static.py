"""Static fail-stop attack on ADD+ (paper §IV-C3, Fig. 8 left).

A *static* attacker must pick its victims before the protocol starts.
Against ADD+v1 the leader schedule is public (``k mod n``), so the optimal
static strategy is to fail-stop the first ``f`` scheduled leaders — every
one of their iterations is wasted and termination is delayed by ``f`` full
iterations.

Against ADD+v2/v3 the same attacker is toothless: leaders are drawn by VRF,
whose outputs the attacker cannot evaluate for honest nodes, so each
corrupted node leads only with probability ``f/n`` per iteration and the
protocols keep their expected-constant-round termination.

Note the capability declaration: ``BYZANTINE`` only.  Corrupting a node
after time zero would raise — the framework is what *makes* this attacker
static.

Parameters (``AttackConfig.params``):
    count: how many nodes to corrupt (default ``f``).
    victims: explicit node ids (default ``0..count-1``, which for ADD+v1 is
        exactly the first ``count`` scheduled leaders).
"""

from __future__ import annotations

from ..core.errors import ConfigurationError
from .base import Attacker, Capability
from .registry import register_attack


@register_attack("add-static")
class ADDStaticAttacker(Attacker):
    """Fail-stops a pre-selected set of nodes at time zero."""

    capabilities = Capability.BYZANTINE

    @classmethod
    def corruption_demand(cls, params, f):
        victims = params.get("victims")
        if victims is not None:
            return len(victims)
        return int(params.get("count", f))

    def setup(self) -> None:
        ctx = self.ctx
        victims = self.params.get("victims")
        if victims is None:
            count = int(self.params.get("count", ctx.f))
            victims = list(range(count))
        if len(victims) > ctx.f:
            raise ConfigurationError(
                f"static attack on {len(victims)} nodes exceeds the budget f={ctx.f}"
            )
        for node in victims:
            ctx.crash(int(node))
