"""Network partition attack (paper §III-C, Fig. 6).

Splits the network into subnets for a time window.  Because every message
passes through the attacker module, the partition is a pure packet-filter
rule: cross-subnet messages are dropped — or, in ``delay`` mode, held back
and delivered just after the partition heals (both behaviours the paper
grants its partition attacker).

This attacker needs only the ``NETWORK`` capability: it routes on source,
destination, and time, never on message contents, so it operates on
redacted envelopes.

Parameters (``AttackConfig.params``):
    groups: list of node-id lists defining the subnets (default: even/odd
        halves).
    start: partition start time in ms (default 0).
    end: healing time in ms (default 60000, the paper's Fig. 6 setting).
    mode: ``"drop"`` (default) or ``"delay"``.
    heal_slack: extra ms added when re-timing held messages in ``delay``
        mode (default 10).
"""

from __future__ import annotations

from ..core.message import Message
from ..network.partition import PartitionSpec
from .base import Attacker, Capability
from .registry import register_attack


@register_attack("partition")
class PartitionAttacker(Attacker):
    """Drops or delays cross-subnet traffic during a time window."""

    capabilities = Capability.NETWORK

    def setup(self) -> None:
        params = self.params
        groups = params.get("groups")
        start = float(params.get("start", 0.0))
        end = float(params.get("end", 60_000.0))
        mode = str(params.get("mode", "drop"))
        if groups is None:
            self.spec = PartitionSpec.halves(self.ctx.n, start=start, end=end, mode=mode)
        else:
            self.spec = PartitionSpec.split(
                [list(g) for g in groups], start=start, end=end, mode=mode
            )
        self.heal_slack = float(params.get("heal_slack", 10.0))

    def attack(self, message: Message):
        spec = self.spec
        if not spec.active_at(message.sent_at):
            return None
        if not spec.separated(message.source, message.dest):
            return None
        if spec.mode == "drop":
            return []
        # Hold the message until just after the partition heals, keeping its
        # original transit delay on top of the outage.
        message.delay = (spec.end - message.sent_at) + self.heal_slack + (message.delay or 0.0)
        return [message]
