"""Rushing adaptive attack on ADD+ (paper §IV-C4, Fig. 8 right).

The strongest attacker the paper models: *rushing* (observes every honest
message the moment it enters the network) and *adaptive* (may corrupt nodes
mid-run, within the budget ``f``).

Strategy: watch the leader-election messages of each iteration.  As soon as
every live node's credential for iteration ``k`` has been observed, compute
the winner — the would-be leader — and corrupt it on the spot.  All
messages a corrupted node sends from then on are dropped (the node is
effectively fail-stopped at the worst possible moment).

Outcome, enforced end-to-end by the framework's no-retraction rule:

* **ADD+v2** reveals credentials one phase *before* the proposal.  The
  attacker corrupts the winner in the credential phase; the winner's
  proposal — sent a full ``lambda`` later — is controlled and dropped.
  Every iteration burns one corruption until the budget runs out:
  termination is delayed ~``f`` iterations.
* **ADD+v3** binds credential and proposal in one send.  The attacker still
  corrupts the winner the instant it sees the credential, but the proposal
  was in the very messages it observed — sent at, not after, the corruption
  time — so the drop is illegal and the iteration completes.  Expected
  constant rounds survive the attack.

Parameters (``AttackConfig.params``):
    budget: corruptions to spend (default ``f``).
"""

from __future__ import annotations

from ..core.message import Message
from .base import Attacker, Capability
from .registry import register_attack

#: Message kinds that reveal an ADD+ iteration's leader credential.
_CREDENTIAL_KINDS = ("CREDENTIAL", "PREPARE")


@register_attack("add-adaptive")
class ADDAdaptiveAttacker(Attacker):
    """Corrupts each iteration's VRF winner the moment it is revealed."""

    capabilities = Capability.OBSERVE | Capability.BYZANTINE | Capability.ADAPTIVE

    @classmethod
    def corruption_demand(cls, params, f):
        return int(params.get("budget", f))

    def setup(self) -> None:
        self.budget = int(self.params.get("budget", self.ctx.f))
        self._spent = 0
        # iteration -> {node: credential value}
        self._credentials: dict[int, dict[int, int]] = {}
        self._acted: set[int] = set()

    def attack(self, message: Message):
        # Total control over corrupted senders: silence them entirely.
        if self.ctx.controls_message(message):
            return []
        payload = message.payload
        if payload.get("type") in _CREDENTIAL_KINDS:
            self._observe_credential(message)
            if self.ctx.controls_message(message):
                # We just corrupted this very sender; the no-retraction rule
                # decides whether this message is ours to drop.  It is not:
                # it was sent at (not after) the corruption instant.
                return None
        return None

    def _observe_credential(self, message: Message) -> None:
        payload = message.payload
        credential = payload.get("credential")
        if not isinstance(credential, dict):
            return
        iteration = int(payload.get("iteration", -1))
        if iteration < 0 or iteration in self._acted:
            return
        bucket = self._credentials.setdefault(iteration, {})
        bucket[message.source] = int(credential.get("value", 0))
        live = self.ctx.n - len(self.ctx.corrupted)
        if len(bucket) < live:
            return  # rushing: wait until the full phase is on the wire
        self._acted.add(iteration)
        if self._spent >= self.budget or self.ctx.budget_remaining <= 0:
            return
        winner = min(bucket.items(), key=lambda item: (item[1], item[0]))[0]
        if winner in self.ctx.corrupted:
            return
        self.ctx.corrupt(winner)
        self._spent += 1
