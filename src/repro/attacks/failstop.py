"""Fail-stop attack: a set of nodes silently stops participating.

The paper calls this "the weakest form of Byzantine behavior" (§III-C) and
models it by running ``n - f`` honest nodes out of ``n``.  We express it
through the global attacker: the chosen nodes are corrupted at configurable
times and the attacker never speaks for them, so they simply go dark.

Parameters (``AttackConfig.params``):
    count: number of nodes to fail (default: the configured ``f``).
    nodes: explicit list of node ids to fail (overrides ``count``); a bare
        int is accepted as a one-element list, matching the scenario
        grammar's scalar form (``failstop=nodes:6``).
    at: simulation time (ms) at which the nodes crash.  ``0`` (default)
        crashes them before the protocol starts — the paper's setting for
        Fig. 7.  Non-zero values require no extra configuration: the
        attacker declares the ADAPTIVE capability so mid-run crashes are
        legal under the enforcement rules.
"""

from __future__ import annotations

from ..core.events import TimeEvent
from ..core.errors import ConfigurationError
from .base import Attacker, Capability
from .registry import register_attack


@register_attack("failstop")
class FailStopAttacker(Attacker):
    """Crashes a fixed set of nodes at a fixed time."""

    capabilities = Capability.BYZANTINE | Capability.ADAPTIVE

    @classmethod
    def corruption_demand(cls, params, f):
        nodes = params.get("nodes")
        if nodes is not None:
            return 1 if isinstance(nodes, int) else len(nodes)
        return int(params.get("count", f))

    def setup(self) -> None:
        ctx = self.ctx
        nodes = self.params.get("nodes")
        if isinstance(nodes, int):
            nodes = [nodes]
        if nodes is None:
            count = int(self.params.get("count", ctx.f))
            nodes = list(range(count))
        self._victims = [int(node) for node in nodes]
        if len(self._victims) > ctx.f:
            raise ConfigurationError(
                f"failstop attack on {len(self._victims)} nodes exceeds f={ctx.f}"
            )
        at = float(self.params.get("at", 0.0))
        if at <= 0:
            for node in self._victims:
                ctx.crash(node)
        else:
            ctx.set_timer(at, "failstop-crash")

    def on_timer(self, timer: TimeEvent) -> None:
        if timer.name == "failstop-crash":
            for node in self._victims:
                self.ctx.crash(node)
