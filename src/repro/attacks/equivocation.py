"""Equivocation attack (extension beyond the paper's three attacks).

Corrupts a view's leader at time zero and has it *equivocate*: different
halves of the network receive conflicting proposals for the same slot.
Quorum intersection must prevent both values from being decided; honest
replicas eventually give up on the equivocating leader, change views, and
decide safely — making this the canonical safety stress-test for
quorum-based protocols (we run it against PBFT in tests and benchmarks).

The attacker demonstrates the *insert* capability of the global attacker
model: the corrupted leader's behaviour is synthesized entirely through
``forge`` + ``inject``, exactly as §III-C describes ("controlling a node's
messages is equivalent to controlling its behavior observed by other
nodes").

Parameters (``AttackConfig.params``):
    target: node to corrupt (default 0 — PBFT's view-0 leader).
    slot: consensus slot to attack (default 0).
    view: view to attack (default 0).
    at: injection time in ms (default 1.0).
"""

from __future__ import annotations

from ..core.events import TimeEvent
from .base import Attacker, Capability
from .registry import register_attack


@register_attack("pbft-equivocation")
class EquivocationAttacker(Attacker):
    """A corrupted PBFT leader pre-prepares two conflicting values."""

    capabilities = Capability.OBSERVE | Capability.BYZANTINE

    @classmethod
    def corruption_demand(cls, params, f):
        return 1

    def setup(self) -> None:
        self.target = int(self.params.get("target", 0))
        self.slot = int(self.params.get("slot", 0))
        self.view = int(self.params.get("view", 0))
        self.ctx.corrupt(self.target)
        self.ctx.set_timer(float(self.params.get("at", 1.0)), "equivocate")

    def on_timer(self, timer: TimeEvent) -> None:
        if timer.name != "equivocate":
            return
        ctx = self.ctx
        for dest in range(ctx.n):
            if dest == self.target:
                continue
            value = f"evil-{'A' if dest % 2 == 0 else 'B'}"
            ctx.inject(
                ctx.forge(
                    source=self.target,
                    dest=dest,
                    payload={
                        "type": "PRE-PREPARE",
                        "view": self.view,
                        "slot": self.slot,
                        "value": value,
                        "digest": f"d({value})",
                    },
                )
            )
