"""The abstracted global attacker framework.

This is the paper's central design departure from prior simulators
(§I, §III-A5): instead of instantiating individual Byzantine nodes, a single
*global attacker* sits between the network module and delivery.  Every
message passes through it, so rushing behaviour (acting after seeing honest
messages) comes for free, and adaptive corruption is a first-class operation
rather than a pre-simulation configuration.

The threat model is enforced centrally and explicitly through
*capabilities*:

``OBSERVE``
    read the contents of honest messages in flight (rushing attackers);
    without it the attacker sees only redacted envelopes (source,
    destination, timing).
``NETWORK``
    manipulate the network itself: delay or drop arbitrary messages
    (partition attacks, targeted delay injection).
``BYZANTINE``
    corrupt up to ``f`` nodes and fully control them afterwards: drop or
    rewrite their outgoing messages and forge new ones in their name.
``ADAPTIVE``
    corrupt nodes *during* execution.  Without it corruption is only legal
    at simulation time zero (a static attacker).

Two rules are load-bearing for the paper's Fig. 8 result and are enforced
here rather than in any protocol:

1. **Corruption budget** — at most ``f`` nodes may ever be corrupted.
2. **No after-the-fact retraction** — corrupting a node at time *t* gives
   control only over messages *sent strictly after t*.  Messages already in
   flight are delivered untouched.  This is exactly what separates ADD+v2
   (credential revealed one step before the proposal: the adaptive attacker
   wins the race) from ADD+v3 (credential and proposal bound in the same
   send: too late to retract).
"""

from __future__ import annotations

import copy
import enum
import random
from typing import TYPE_CHECKING, Any, Iterable

from ..core.errors import CapabilityError, CorruptionBudgetError
from ..core.events import ATTACKER_OWNER, TimeEvent
from ..core.message import Message
from ..core.node import TimerHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.config import SimulationConfig
    from ..core.controller import Controller
    from ..network.topology import Topology
    from ..observability.signals import LiveSignals


class Capability(enum.Flag):
    """Attacker capabilities; combine with ``|``."""

    NONE = 0
    OBSERVE = enum.auto()
    NETWORK = enum.auto()
    BYZANTINE = enum.auto()
    ADAPTIVE = enum.auto()


#: Payload substituted when a non-observing attacker inspects honest traffic.
REDACTED_PAYLOAD: dict[str, Any] = {"type": "<redacted>"}


class AttackerContext:
    """The attacker's handle on the simulation, provided by the controller.

    All attacker-side effects (corruption, forgery, timers) go through this
    object so the capability and budget rules live in exactly one place.
    """

    def __init__(self, controller: "Controller", capabilities: Capability) -> None:
        self._controller = controller
        self.capabilities = capabilities
        self._corrupted_since: dict[int, float] = {}

    # -- introspection ---------------------------------------------------------

    @property
    def now(self) -> float:
        return self._controller.clock.now

    @property
    def n(self) -> int:
        return self._controller.n

    @property
    def f(self) -> int:
        return self._controller.f

    @property
    def lam(self) -> float:
        return self._controller.config.lam

    @property
    def config(self) -> "SimulationConfig":
        return self._controller.config

    @property
    def topology(self) -> "Topology":
        return self._controller.network.topology

    def rng(self, name: str = "attacker") -> random.Random:
        """Deterministic random stream for attacker decisions."""
        return self._controller.shared_rng(f"attack.{name}")

    @property
    def signals(self) -> "LiveSignals":
        """Live run-progress signals (see :mod:`repro.observability.signals`).

        Available only to attackers that declare ``wants_signals = True``
        (the controller then maintains the counters) **and** hold the
        ``OBSERVE`` capability: the run's own progress telemetry — who is
        straggling, who keeps closing quorums — is rushing-adversary
        knowledge, reserved for observing attackers.

        Raises:
            CapabilityError: without ``OBSERVE``, or when the attacker did
                not declare ``wants_signals`` (nothing was collected).
        """
        if Capability.OBSERVE not in self.capabilities:
            raise CapabilityError(
                "reading live run signals requires the OBSERVE capability"
            )
        signals = self._controller.signals
        if signals is None:
            raise CapabilityError(
                "live signals were not collected for this run; the attacker "
                "class must declare wants_signals = True"
            )
        return signals

    def overlay_relays(self, root: int) -> tuple[int, ...]:
        """The relay nodes a ``tree`` broadcast from ``root`` routes through.

        Structural knowledge of the dissemination overlay — the set of
        internal (non-root) nodes of the spanning tree every broadcast from
        ``root`` rides.  Delaying exactly these nodes chokes the overlay
        without touching the root itself.  Requires the ``NETWORK``
        capability (it is network-topology knowledge, not message content).

        Returns an empty tuple for ``full`` dissemination (no relays) and
        for ``gossip`` (the relay set is drawn per broadcast — there is no
        static choke point to target).

        Raises:
            CapabilityError: without ``NETWORK``.
        """
        if Capability.NETWORK not in self.capabilities:
            raise CapabilityError(
                "overlay introspection requires the NETWORK capability"
            )
        return self._controller.network.overlay_relays(root)

    # -- corruption ---------------------------------------------------------

    @property
    def corrupted(self) -> frozenset[int]:
        """Nodes corrupted so far (at any time)."""
        return frozenset(self._corrupted_since)

    @property
    def budget_remaining(self) -> int:
        return self.f - len(self._corrupted_since)

    def corrupted_since(self, node: int) -> float | None:
        """Corruption time of ``node``, or ``None`` if honest."""
        return self._corrupted_since.get(node)

    def controls_message(self, message: Message) -> bool:
        """True when the attacker legitimately controls ``message``:
        forged by it, or sent by a node corrupted strictly before the send.
        """
        if message.forged:
            return True
        since = self._corrupted_since.get(message.source)
        return since is not None and since < message.sent_at

    def corrupt(self, node: int) -> None:
        """Corrupt ``node`` from the current instant onward.

        Raises:
            CapabilityError: without ``BYZANTINE``; or when corrupting after
                time zero without ``ADAPTIVE``.
            CorruptionBudgetError: when more than ``f`` nodes would be
                corrupted.
        """
        if Capability.BYZANTINE not in self.capabilities:
            raise CapabilityError("corrupting nodes requires the BYZANTINE capability")
        if node in self._corrupted_since:
            return
        if self.now > 0 and Capability.ADAPTIVE not in self.capabilities:
            raise CapabilityError(
                f"static attacker tried to corrupt node {node} at t={self.now:.1f}; "
                "corruption after start requires the ADAPTIVE capability"
            )
        if len(self._corrupted_since) >= self.f:
            raise CorruptionBudgetError(
                f"corruption budget exhausted (f={self.f}); cannot corrupt node {node}"
            )
        if not 0 <= node < self.n:
            raise CapabilityError(f"no such node: {node}")
        self._corrupted_since[node] = self.now
        self._controller.on_node_corrupted(node)

    def crash(self, node: int) -> None:
        """Fail-stop ``node``: corrupt it and never speak for it.

        Provided for readability in fail-stop attacks; identical to
        :meth:`corrupt` at the framework level (the paper models fail-stop
        as the weakest Byzantine behaviour, §III-C).
        """
        self.corrupt(node)

    # -- forgery ---------------------------------------------------------

    def forge(self, source: int, dest: int, payload: dict[str, Any],
              delay: float | None = None) -> Message:
        """Create a message in a corrupted node's name.

        The message is *not* sent automatically; return it from
        ``Attacker.attack`` or pass it to :meth:`inject`.

        Raises:
            CapabilityError: if ``source`` is not currently corrupted (the
                crypto layer's unforgeability stand-in) or the attacker lacks
                ``BYZANTINE``.
        """
        if Capability.BYZANTINE not in self.capabilities:
            raise CapabilityError("forging messages requires the BYZANTINE capability")
        if source not in self._corrupted_since:
            raise CapabilityError(
                f"cannot forge a message from honest node {source}: "
                "signatures of honest nodes are unforgeable"
            )
        return Message(
            source=source,
            dest=dest,
            payload=copy.deepcopy(payload),
            sent_at=self.now,
            delay=delay,
            forged=True,
        )

    def inject(self, message: Message) -> None:
        """Send a forged message outside of an ``attack`` callback
        (e.g. from an attacker timer)."""
        if not message.forged:
            raise CapabilityError("inject() only accepts messages created by forge()")
        self._controller.network.submit(message)

    # -- timers ------------------------------------------------------------

    def set_timer(self, delay: float, name: str, **data: Any) -> TimerHandle:
        """Register an attacker time event ``delay`` ms from now."""
        return self._controller.register_timer(ATTACKER_OWNER, delay, name, data)

    def cancel_timer(self, handle: TimerHandle) -> None:
        self._controller.cancel_timer(handle)


class Attacker:
    """Base class for attack scenarios.

    Subclasses declare :attr:`capabilities` and override :meth:`attack`
    (per-message interception) and optionally :meth:`setup` (static
    corruption, scheduling timers) and :meth:`on_timer`.

    The paper's customization interface is exactly these two callbacks
    (§III-A5: ``attack`` and ``onTimeEvent``).
    """

    #: Override in subclasses.
    capabilities: Capability = Capability.NONE
    #: Registry name; set by the registry decorator.
    name: str = "abstract"
    #: Declare True to make the controller maintain
    #: :class:`~repro.observability.signals.LiveSignals` for this run
    #: (read them via ``ctx.signals``, which additionally requires
    #: ``OBSERVE``).  Off by default: benign runs collect nothing.
    wants_signals: bool = False

    def __init__(self, params: dict[str, Any] | None = None) -> None:
        self.params = dict(params or {})
        self.ctx: AttackerContext = None  # type: ignore[assignment]

    @classmethod
    def corruption_demand(cls, params: dict[str, Any], f: int) -> int:
        """Upper bound on nodes this attacker will corrupt under ``params``.

        Used by the scenario validator to reject budget overruns at config
        time (the sum of demands across a composed scenario must stay
        within ``f``) instead of mid-run.  Pure-network attackers keep the
        default of ``0``; corrupting attackers override it to mirror how
        they read their parameters.
        """
        return 0

    def bind(self, ctx: AttackerContext) -> None:
        """Called by the controller before the run starts."""
        self.ctx = ctx

    def setup(self) -> None:
        """Called once at time zero, after binding, before any event."""

    def attack(self, message: Message) -> Iterable[Message] | None:
        """Intercept one in-flight message.

        Args:
            message: the message, with its network delay already assigned.
                If the attacker lacks ``OBSERVE`` and does not control the
                message, the payload is redacted.

        Returns:
            ``None`` to pass the message through unchanged (the common
            case), or an iterable of messages to deliver instead: include
            ``message`` (possibly with modified ``delay``/``payload``) to
            keep it, omit it to drop it, and add forged messages to inject.
            Every modification is checked against the capability rules by
            the network module.
        """
        return None

    def on_timer(self, timer: TimeEvent) -> None:
        """Called when an attacker timer fires."""

    def describe(self) -> str:
        return f"{type(self).__name__}({self.params})"
