"""Attack scenarios built on the abstracted global attacker framework."""

from .base import Attacker, AttackerContext, Capability
from .registry import available_attacks, get_attack, make_attacker, register_attack

__all__ = [
    "Attacker", "AttackerContext", "Capability",
    "available_attacks", "get_attack", "make_attacker", "register_attack",
]
