"""Targeted delay-injection attack (extension beyond the paper's three).

A pure network-level adversary that slows traffic involving chosen victims
(or chosen message kinds) by a constant or a multiplier.  Useful for
studying responsiveness claims: a responsive protocol's latency should
track the inflated delays smoothly, while timeout-bound protocols fall off
a cliff once the injected delay crosses ``lambda``.

Reading message *types* requires the ``OBSERVE`` capability, which this
attacker declares only when a type filter is configured — a worked example
of least-privilege attack modelling.

Parameters (``AttackConfig.params``):
    targets: node ids whose traffic (either direction) is slowed
        (default: all nodes), or the string ``"relays"`` to target the
        relay nodes of the tree dissemination overlay rooted at
        ``relay_root`` (overlay-aware targeting; tree mode only — the
        scenario validator rejects it under ``full``/``gossip``).
    relay_root: root whose broadcast tree defines the relay set when
        ``targets="relays"`` (default 0, the usual initial leader).
    extra_delay: milliseconds added to each matching message (default 0).
    factor: multiplier applied to each matching message's delay
        (default 1.0).
    match_type: only slow messages of this payload type (requires
        observation; enabled automatically when set).
"""

from __future__ import annotations

from typing import Any

from ..core.message import Message
from .base import Attacker, Capability
from .registry import register_attack


@register_attack("targeted-delay")
class TargetedDelayAttacker(Attacker):
    """Inflates the delay of matching messages."""

    capabilities = Capability.NETWORK

    def __init__(self, params: dict[str, Any] | None = None) -> None:
        super().__init__(params)
        if self.params.get("match_type") is not None:
            # Filtering on contents needs eyes; declare them up front.
            self.capabilities = Capability.NETWORK | Capability.OBSERVE

    def setup(self) -> None:
        targets = self.params.get("targets")
        if targets == "relays":
            # Overlay-aware targeting: resolve the relay set of the tree
            # broadcast overlay at setup time (the shape is static and
            # RNG-free).  Empty under full/gossip — the validator rejects
            # the configuration before a run gets here.
            root = int(self.params.get("relay_root", 0))
            self.targets: set[int] | None = set(self.ctx.overlay_relays(root))
        else:
            self.targets = None if targets is None else {int(t) for t in targets}
        self.extra_delay = float(self.params.get("extra_delay", 0.0))
        self.factor = float(self.params.get("factor", 1.0))
        self.match_type = self.params.get("match_type")

    def _matches(self, message: Message) -> bool:
        if self.targets is not None:
            if message.source not in self.targets and message.dest not in self.targets:
                return False
        if self.match_type is not None and message.type != self.match_type:
            return False
        return True

    def attack(self, message: Message):
        if not self._matches(message):
            return None
        message.delay = (message.delay or 0.0) * self.factor + self.extra_delay
        return [message]
