"""The adaptive signal-driven adversary.

A generic adaptive attacker that reads the run's **own live signals**
(:class:`~repro.observability.signals.LiveSignals`, maintained by the
controller because this class declares ``wants_signals``) to decide whom to
hurt next: the senders that keep closing quorums (the tail of every
decision's critical path), the current quorum-timeline stragglers, or the
fan-in hot spots.  It periodically re-targets on an attacker timer and acts
through one of two verbs:

* ``action="delay"`` — inflate the transit delay of all traffic touching
  the chosen victims (a pure-``NETWORK`` action; combined with ``OBSERVE``
  for the signals and ``ADAPTIVE`` because targets change mid-run).
* ``action="corrupt"`` — spend the corruption budget on the current most
  critical sender, one victim per tick.  Corruption halts the replica
  (the framework fail-stops it), so this is "crash the node the protocol
  can least afford to lose, again and again".

The attacker draws no randomness at all — target selection is a
deterministic function of the signal counters — and the signals themselves
are maintained without RNG, so benign fingerprints are untouched and every
run with this attacker is a pure function of its configuration.

Re-targeting ticks are capped (``max_ticks``) so the event queue drains
once the protocol stops generating work: the liveness watchdog and the
termination predicate behave exactly as they do under every other attacker.

Parameters (``AttackConfig.params``):
    action: ``"delay"`` (default) or ``"corrupt"``.
    signal: which ranking picks victims — ``"critical"`` (default, quorum-
        closing senders with straggler fallback), ``"stragglers"``,
        ``"busiest"`` (overall delivery fan-in), or ``"fan-in"`` (delivery
        fan-in of one message kind — set ``kind``; falls back to the
        overall ranking until that kind has been seen).
    kind: the message type the ``"fan-in"`` signal ranks by (e.g.
        ``"PREPARE"``; required for that signal).
    k: victims targeted per tick (default 1; ``delay`` action only).
    factor: delay multiplier for matching messages (default 4.0).
    extra_delay: flat ms added to matching messages (default 0).
    period: re-targeting interval in ms (default: the protocol's lambda).
    max_ticks: re-targeting ticks before the attacker goes quiet
        (default 256).
    budget: corruptions to spend under ``action="corrupt"``
        (default ``f``).
"""

from __future__ import annotations

from typing import Any

from ..core.errors import ConfigurationError
from ..core.events import TimeEvent
from ..core.message import Message
from .base import Attacker, Capability
from .registry import register_attack

#: Victim-ranking signals accepted by the ``signal`` parameter.
SIGNALS = ("critical", "stragglers", "busiest", "fan-in")

#: Actions accepted by the ``action`` parameter.
ACTIONS = ("delay", "corrupt")


@register_attack("adaptive")
class AdaptiveAttacker(Attacker):
    """Re-targets delay or corruption using live run signals."""

    capabilities = Capability.OBSERVE | Capability.NETWORK | Capability.ADAPTIVE
    wants_signals = True

    def __init__(self, params: dict[str, Any] | None = None) -> None:
        super().__init__(params)
        action = self.params.get("action", "delay")
        if action not in ACTIONS:
            raise ConfigurationError(
                f"adaptive attacker action must be one of {list(ACTIONS)}, "
                f"got {action!r}"
            )
        if action == "corrupt":
            # Corruption needs BYZANTINE instead of NETWORK: the framework
            # halts corrupted replicas, no message tampering is involved.
            self.capabilities = (
                Capability.OBSERVE | Capability.BYZANTINE | Capability.ADAPTIVE
            )

    @classmethod
    def corruption_demand(cls, params, f):
        if params.get("action", "delay") == "corrupt":
            return int(params.get("budget", f))
        return 0

    def setup(self) -> None:
        params = self.params
        self.action = params.get("action", "delay")
        self.signal = params.get("signal", "critical")
        if self.signal not in SIGNALS:
            raise ConfigurationError(
                f"adaptive attacker signal must be one of {list(SIGNALS)}, "
                f"got {self.signal!r}"
            )
        self.kind = str(params.get("kind", ""))
        if self.signal == "fan-in" and not self.kind:
            raise ConfigurationError(
                "adaptive attacker signal 'fan-in' needs a 'kind' parameter "
                "naming the message type to rank by (e.g. 'PREPARE')"
            )
        self.k = int(params.get("k", 1))
        self.factor = float(params.get("factor", 4.0))
        self.extra_delay = float(params.get("extra_delay", 0.0))
        self.period = float(params.get("period", self.ctx.lam))
        self.max_ticks = int(params.get("max_ticks", 256))
        self.budget = int(params.get("budget", self.ctx.f))
        self._ticks = 0
        self._targets: frozenset[int] = frozenset()
        if self.period <= 0:
            raise ConfigurationError("adaptive attacker period must be > 0 ms")
        if self.max_ticks > 0:
            self.ctx.set_timer(self.period, "adaptive-tick")

    # -- target selection ----------------------------------------------------

    def _pick(self, k: int) -> list[int]:
        signals = self.ctx.signals
        exclude = self.ctx.corrupted
        if self.signal == "stragglers":
            return signals.stragglers(k, exclude=exclude)
        if self.signal == "busiest":
            return signals.busiest_nodes(k, exclude=exclude)
        if self.signal == "fan-in":
            return signals.hottest_by_kind(self.kind, k, exclude=exclude)
        picks = signals.critical_senders(k, exclude=exclude)
        if len(picks) < k:
            # Early in the run no quorum has closed yet; fall back to the
            # stragglers so the attacker is never idle.
            for node in signals.stragglers(k, exclude=exclude):
                if node not in picks:
                    picks.append(node)
                    if len(picks) == k:
                        break
        return picks

    def on_timer(self, timer: TimeEvent) -> None:
        if timer.name != "adaptive-tick":
            return
        self._ticks += 1
        if self.action == "corrupt":
            if self._spend_corruption() and self._ticks < self.max_ticks:
                self.ctx.set_timer(self.period, "adaptive-tick")
            return
        self._targets = frozenset(self._pick(self.k))
        if self._ticks < self.max_ticks:
            self.ctx.set_timer(self.period, "adaptive-tick")

    def _spend_corruption(self) -> bool:
        """Corrupt the current top victim; False once the budget is done."""
        spent = len(self.ctx.corrupted)
        if spent >= min(self.budget, self.ctx.f):
            return False
        picks = self._pick(1)
        if picks:
            self.ctx.corrupt(picks[0])
        return True

    # -- per-message action --------------------------------------------------

    def attack(self, message: Message):
        if self.action != "delay" or not self._targets:
            return None
        if message.source in self._targets or message.dest in self._targets:
            message.delay = (message.delay or 0.0) * self.factor + self.extra_delay
            return [message]
        return None
