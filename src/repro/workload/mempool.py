"""Leader-side mempool: pending requests, ordered, with batch-cut policy.

The mempool is a single global pool (client→leader transmission is
abstracted away, like client identity in the synthetic path): requests
enter at their submit time and leave when a proposer cuts a batch.  A cut
is *ready* when any of three triggers fires:

- **size** — at least ``batch`` requests are pending;
- **timeout** — the oldest pending request has waited at least
  ``batch_timeout`` ms;
- **drain** — every request of the run has been submitted (tail mode: no
  future arrival can top the batch up, so waiting longer only adds
  latency).

Ordering is by ``(submit_time, arrival index)`` — requeued requests (cut
into a batch whose slot decided a different proposal) re-enter at their
original position, so batch contents stay sorted by submission time.
"""

from __future__ import annotations

import heapq

from .arrivals import Request


class Mempool:
    """Pending-request pool with deterministic ordering and cut triggers."""

    def __init__(self, batch: int, batch_timeout: float) -> None:
        self.batch = batch
        self.batch_timeout = batch_timeout
        self._heap: list[tuple[float, int, Request]] = []
        self._drain = False
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, request: Request) -> None:
        """Add ``request`` (new arrival or requeue) to the pool."""
        heapq.heappush(self._heap, (request.submit_time, request.index, request))
        if len(self._heap) > self.max_depth:
            self.max_depth = len(self._heap)

    def mark_drained(self) -> None:
        """All requests of the run are submitted: enable tail cuts."""
        self._drain = True

    def ready(self, now: float) -> bool:
        """True when a batch cut at ``now`` would fire a trigger."""
        if not self._heap:
            return False
        if len(self._heap) >= self.batch:
            return True
        if now - self._heap[0][0] >= self.batch_timeout:
            return True
        return self._drain

    def cut(self, now: float) -> list[Request]:
        """Pop up to ``batch`` oldest requests, or ``[]`` when not ready."""
        if not self.ready(now):
            return []
        take = min(self.batch, len(self._heap))
        return [heapq.heappop(self._heap)[2] for _ in range(take)]
