"""Workload manager: request lifecycle from arrival to decided-at.

One :class:`WorkloadManager` per run owns the arrival schedule, the
mempool, and the batch ledger.  Proposers pull batches through the
controller facade (``env.cut_batch``); the manager hands back a plain
*string tag* — protocols order and vote on tags exactly like synthetic
values (tags stay hashable, so vote-counter keys and block hashes are
untouched) while the manager keeps the tag → requests mapping private.

Lifecycle of a request:

1. **submit** — a controller-owned ``workload-submit`` event fires at the
   request's arrival time and pushes it into the mempool.
2. **cut** — a proposer asks for a batch; ready requests leave the
   mempool and become *in flight* for the proposed slot.  A request is in
   at most one in-flight batch at a time, which is what makes
   exactly-once decision a structural property rather than a protocol
   one.
3. **decide** — on the first honest decision of a slot, the in-flight
   batch whose tag equals the decided value is committed (every request
   gets its decided-at stamp); every other in-flight batch for the slot
   lost a view-change race and its requests are requeued into the
   mempool at their original position.
"""

from __future__ import annotations

from ..core.config import WorkloadConfig
from ..core.results import RequestRecord, ThroughputMetrics
from ..core.rng import RandomSource
from .arrivals import Request, generate_requests
from .mempool import Mempool


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    rank = max(0, min(len(sorted_values) - 1, int(fraction * len(sorted_values))))
    return sorted_values[rank]


class WorkloadManager:
    """Owns requests, mempool and batch ledger for one run."""

    def __init__(self, workload: WorkloadConfig, random_source: RandomSource) -> None:
        self.workload = workload
        self.requests: list[Request] = generate_requests(workload, random_source)
        self.mempool = Mempool(workload.batch, workload.batch_timeout)
        self._submitted = 0
        self._batch_seq = 0
        # tag -> requests it carries (in flight until its slot decides).
        self._batches: dict[str, list[Request]] = {}
        # slot -> tags currently in flight for it (several across views).
        self._inflight: dict[int, list[str]] = {}
        # request index -> (decided_at, slot, batch tag)
        self._decided: dict[int, tuple[float, int, str]] = {}
        self._requeues: dict[int, int] = {}
        self._decided_slots: set[int] = set()
        self._slots_with_requests: set[int] = set()
        self._decided_batch_sizes: list[int] = []
        # Per-client tallies + a lazy pointer over the (submit-ordered)
        # request list, so the health monitor's per-window fairness /
        # oldest-outstanding-wait snapshot is O(clients) amortized, not
        # O(requests) per window.
        self._client_submitted = [0] * workload.clients
        self._client_decided = [0] * workload.clients
        self._health_ptr = 0

    # ------------------------------------------------------------------
    # submission

    def submit(self, index: int) -> None:
        """Deliver the ``index``-th request to the mempool (event hook)."""
        self.mempool.push(self.requests[index])
        self._submitted += 1
        self._client_submitted[self.requests[index].client] += 1
        if self._submitted == len(self.requests):
            self.mempool.mark_drained()

    # ------------------------------------------------------------------
    # batching

    def cut_batch(
        self, proposer: int, slot: int, view: int | None, now: float
    ) -> str | None:
        """Cut a batch for ``slot``, or ``None`` to fall back to synthetic.

        Never cuts for an already-decided slot (a late view change must
        not strand fresh requests in a batch that can no longer win), and
        returns ``None`` while no cut trigger is ready so empty slots stay
        cheap synthetic placeholders.
        """
        if slot in self._decided_slots:
            return None
        batch = self.mempool.cut(now)
        if not batch:
            return None
        suffix = f"/v{view}" if view is not None else ""
        tag = (
            f"batch[b{self._batch_seq}](slot={slot}, "
            f"proposer={proposer}{suffix}, reqs={len(batch)})"
        )
        self._batch_seq += 1
        self._batches[tag] = batch
        self._inflight.setdefault(slot, []).append(tag)
        return tag

    # ------------------------------------------------------------------
    # decisions

    def on_decided(self, slot: int, value: object, now: float) -> None:
        """First-honest-decision hook: commit the winner, requeue losers.

        Idempotent per slot — the controller reports every honest node's
        decision, but request bookkeeping happens once, at the earliest.
        """
        if slot in self._decided_slots:
            return
        self._decided_slots.add(slot)
        for tag in self._inflight.pop(slot, []):
            requests = self._batches.pop(tag)
            if tag == value:
                for request in requests:
                    self._decided[request.index] = (now, slot, tag)
                    self._client_decided[request.client] += 1
                self._slots_with_requests.add(slot)
                self._decided_batch_sizes.append(len(requests))
            else:
                for request in requests:
                    self._requeues[request.index] = (
                        self._requeues.get(request.index, 0) + 1
                    )
                    self.mempool.push(request)

    # ------------------------------------------------------------------
    # run-level state

    def complete(self) -> bool:
        """True when every request has been submitted and decided."""
        return (
            self._submitted == len(self.requests)
            and len(self._decided) == len(self.requests)
        )

    def slots_with_requests(self) -> set[int]:
        """Slots whose decided value carried requests (termination gate)."""
        return self._slots_with_requests

    def health_snapshot(self, now: float) -> dict:
        """Per-client fairness inputs for the health monitor, at ``now``.

        Called once per window close (never per event).  Returns the
        mempool depth, Jain's fairness index over per-client decided
        counts (clients that have submitted nothing are excluded; an
        all-zero ledger is perfectly fair), the oldest outstanding wait
        plus its client, and the clients lagging below half the mean
        decided count — everything the starvation detector consumes and
        exactly what the ``health-sample`` trace event records.
        """
        # Requests are globally sorted by submit time with index == list
        # position, and submission happens in that order, so a forward
        # pointer over decided prefixes finds the oldest outstanding
        # request in amortized O(1).
        decided_map = self._decided
        submitted = self._submitted
        ptr = self._health_ptr
        while ptr < submitted and ptr in decided_map:
            ptr += 1
        self._health_ptr = ptr
        if ptr < submitted:
            oldest = self.requests[ptr]
            max_wait = now - oldest.submit_time
            wait_client: int | None = oldest.client
        else:
            max_wait = 0.0
            wait_client = None

        counts = self._client_decided
        active = [
            client for client, subs in enumerate(self._client_submitted) if subs
        ]
        total = sum(counts[client] for client in active)
        square_sum = sum(counts[client] ** 2 for client in active)
        fairness = (
            (total * total) / (len(active) * square_sum) if square_sum else 1.0
        )
        lagging = [
            client
            for client in active
            if counts[client] * 2 * len(active) < total
        ]
        return {
            "mempool": len(self.mempool),
            "fairness": fairness,
            "max_wait": max_wait,
            "wait_client": wait_client,
            "lagging": lagging,
            "decided": total,
        }

    # ------------------------------------------------------------------
    # results

    def build(self, end_ms: float) -> ThroughputMetrics:
        """Aggregate the ledger into :class:`ThroughputMetrics`."""
        records = []
        latencies: list[float] = []
        per_client: dict[int, list[float]] = {
            client: [0, 0, 0.0] for client in range(self.workload.clients)
        }
        for request in self.requests:
            decided = self._decided.get(request.index)
            record = RequestRecord(
                id=request.id,
                client=request.client,
                submitted_at=request.submit_time,
                decided_at=decided[0] if decided else None,
                slot=decided[1] if decided else None,
                batch=decided[2] if decided else None,
                requeues=self._requeues.get(request.index, 0),
            )
            records.append(record)
            stats = per_client[request.client]
            stats[0] += 1
            if record.latency is not None:
                stats[1] += 1
                stats[2] += record.latency
                latencies.append(record.latency)
        for stats in per_client.values():
            stats[2] = stats[2] / stats[1] if stats[1] else 0.0
        latencies.sort()
        submitted = self._submitted
        decided = len(self._decided)
        # Saturation: either the run ended with undecided requests, or more
        # than half the load was still backlogged when arrivals stopped —
        # the drain rate fell behind the offered rate for the whole window.
        if self.workload.arrival == "trace":
            arrival_end = max(self.workload.trace_times or [0.0])
        else:
            arrival_end = self.workload.duration
        backlog_at_arrival_end = submitted - sum(
            1 for decided_at, _slot, _tag in self._decided.values()
            if decided_at <= arrival_end
        )
        total = len(self.requests)
        saturated = decided < total or (
            total > 0 and backlog_at_arrival_end * 2 > total
        )
        return ThroughputMetrics(
            submitted=submitted,
            decided=decided,
            committed_tx_s=decided / (end_ms / 1000.0) if end_ms > 0 else 0.0,
            latency_mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
            latency_p50_ms=_percentile(latencies, 0.50) if latencies else 0.0,
            latency_p90_ms=_percentile(latencies, 0.90) if latencies else 0.0,
            latency_p99_ms=_percentile(latencies, 0.99) if latencies else 0.0,
            latency_max_ms=latencies[-1] if latencies else 0.0,
            per_client=per_client,
            batches=len(self._decided_batch_sizes),
            max_batch=max(self._decided_batch_sizes, default=0),
            max_queue_depth=self.mempool.max_depth,
            requeues=sum(self._requeues.values()),
            backlog_at_arrival_end=backlog_at_arrival_end,
            saturated=saturated,
            requests=records,
        )
