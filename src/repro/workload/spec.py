"""CLI grammar for workload specs: ``rate:500,clients:100[,batch:64]``.

Keys map onto :class:`~repro.core.config.WorkloadConfig` fields:

========== =============== ==========================================
key        field           meaning
========== =============== ==========================================
rate       rate            aggregate arrival rate (requests/second)
clients    clients         number of open-loop clients
batch      batch           size-trigger for the mempool batch cut
timeout    batch_timeout   timeout-trigger (ms) for the batch cut
duration   duration        arrival window (ms of simulated time)
========== =============== ==========================================

Values are validated by ``WorkloadConfig.validate()`` downstream; this
module only parses the surface grammar.
"""

from __future__ import annotations

from ..core.config import WorkloadConfig
from ..core.errors import ConfigurationError

_KEYS = {
    "rate": ("rate", float),
    "clients": ("clients", int),
    "batch": ("batch", int),
    "timeout": ("batch_timeout", float),
    "duration": ("duration", float),
}


def parse_workload_spec(spec: str) -> WorkloadConfig:
    """Parse ``"rate:500,clients:100,batch:64"`` into a WorkloadConfig."""
    fields: dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition(":")
        key = key.strip()
        if not sep or key not in _KEYS:
            known = ", ".join(sorted(_KEYS))
            raise ConfigurationError(
                f"bad workload spec entry {part!r}: expected key:value "
                f"with key one of {known}"
            )
        field, convert = _KEYS[key]
        try:
            fields[field] = convert(raw.strip())
        except ValueError as exc:
            raise ConfigurationError(
                f"bad workload spec value for {key!r}: {raw.strip()!r}"
            ) from exc
    if not fields:
        raise ConfigurationError(
            "empty workload spec: expected e.g. rate:500,clients:100"
        )
    config = WorkloadConfig(**fields)  # type: ignore[arg-type]
    config.validate()
    return config
