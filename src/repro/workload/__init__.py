"""Open-loop client workload: arrivals, mempool, batching, bookkeeping.

This package turns the simulator from "decide ``num_decisions`` synthetic
blocks" into an open-loop transaction system: Poisson or trace-driven
clients submit requests on dedicated ``workload.{client}`` RNG substreams,
a leader-side mempool batches them (size- and timeout-triggered cuts), and
proposers pull batches so protocols decide real payloads back-to-back.

Everything is opt-in: when ``SimulationConfig.workload`` is ``None`` no
substream is drawn, no event is scheduled and no result field is emitted,
so benign no-client fingerprints are byte-identical to older versions.
"""

from .arrivals import Request, generate_requests
from .manager import WorkloadManager
from .mempool import Mempool
from .spec import parse_workload_spec

__all__ = [
    "Mempool",
    "Request",
    "WorkloadManager",
    "generate_requests",
    "parse_workload_spec",
]
