"""Arrival processes: turn a workload spec into a deterministic request list.

Two processes are supported (see
:data:`~repro.core.config.ARRIVAL_PROCESSES`):

- ``poisson`` — each of ``clients`` open-loop clients submits on its own
  Poisson process at ``rate / clients`` requests per second over
  ``duration`` ms of simulated time.  Every client draws inter-arrival
  gaps from a dedicated ``workload.{client}`` RNG substream, so adding a
  workload never perturbs the protocol, network or fault streams — and
  adding a client never perturbs the other clients.
- ``trace`` — submission times are given explicitly (``trace_times``,
  ms); requests are assigned to clients round-robin.  Deterministic by
  construction, used for replayable stress shapes and tests.

Requests are materialised up front (open-loop clients never wait for
responses, so the full arrival schedule is a pure function of the config)
and sorted into a single global order.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import WorkloadConfig
from ..core.rng import RandomSource


@dataclass(frozen=True)
class Request:
    """One client request, identified for its whole lifecycle.

    Attributes:
        id: stable identifier ``"req{client}.{k}"`` (k-th request of the
            client).
        client: submitting client.
        submit_time: submission time (simulated ms).
        index: position in the global arrival order — the deterministic
            tie-break for mempool ordering.
    """

    id: str
    client: int
    submit_time: float
    index: int


def generate_requests(
    workload: WorkloadConfig, random_source: RandomSource
) -> list[Request]:
    """Materialise the full arrival schedule for ``workload``.

    Returns requests sorted by ``(submit_time, client, id)`` with
    ``index`` assigned in that global order.  Only ``workload.{client}``
    substreams are drawn; an unconfigured workload must never reach this
    function (the controller gates on ``config.workload is None``).
    """
    arrivals: list[tuple[float, int, str]] = []
    if workload.arrival == "trace":
        times = workload.trace_times or []
        per_client_count = [0] * workload.clients
        for position, time in enumerate(times):
            client = position % workload.clients
            request_id = f"req{client}.{per_client_count[client]}"
            per_client_count[client] += 1
            arrivals.append((float(time), client, request_id))
    else:  # poisson — validated upstream
        # Per-client rate in requests per millisecond of simulated time.
        per_client_rate = workload.rate / workload.clients / 1000.0
        for client in range(workload.clients):
            rng = random_source.python(f"workload.{client}")
            now = 0.0
            k = 0
            while True:
                now += rng.expovariate(per_client_rate)
                if now >= workload.duration:
                    break
                arrivals.append((now, client, f"req{client}.{k}"))
                k += 1
    arrivals.sort()
    return [
        Request(id=request_id, client=client, submit_time=time, index=index)
        for index, (time, client, request_id) in enumerate(arrivals)
    ]
