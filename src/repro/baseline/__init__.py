"""The BFTSim-style packet-level baseline simulator (Fig. 2 comparison)."""

from .links import Link, MTU_BYTES, PacketTiming, packetize
from .packetsim import (
    BaselineController,
    DEFAULT_BUDGET_BYTES,
    PacketLevelNetwork,
    run_baseline_simulation,
)

__all__ = [
    "BaselineController", "DEFAULT_BUDGET_BYTES", "Link", "MTU_BYTES",
    "PacketLevelNetwork", "PacketTiming", "packetize",
    "run_baseline_simulation",
]
