"""Link-layer model for the packet-level baseline simulator.

The baseline reproduces BFTSim's cost structure (NSDI'08: P2 dataflow on
top of ns-2), where every protocol message becomes MTU-sized packets pushed
through store-and-forward links with serialization and propagation delay.
This module provides the link primitive: a FIFO transmission queue with
finite bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Maximum transmission unit in bytes (standard Ethernet payload).
MTU_BYTES: int = 1500


@dataclass
class PacketTiming:
    """When a packet's transmission starts and when it fully arrives."""

    start: float
    arrival: float


class Link:
    """A point-to-point FIFO link.

    Args:
        bandwidth_bytes_per_ms: serialization rate (e.g. 125 bytes/us =
            1 Gbit/s would be 125_000 bytes/ms).
        propagation_ms: one-way propagation delay added after the last bit
            is serialized.
    """

    def __init__(self, bandwidth_bytes_per_ms: float, propagation_ms: float) -> None:
        if bandwidth_bytes_per_ms <= 0:
            raise ValueError("bandwidth must be > 0")
        if propagation_ms < 0:
            raise ValueError("propagation delay must be >= 0")
        self.bandwidth = float(bandwidth_bytes_per_ms)
        self.propagation = float(propagation_ms)
        self._free_at = 0.0

    def transmit(self, size_bytes: int, now: float) -> PacketTiming:
        """Queue one packet for transmission at ``now``.

        Store-and-forward: the packet occupies the transmitter for
        ``size / bandwidth`` starting when the link is free, then takes the
        propagation delay to arrive.
        """
        start = max(now, self._free_at)
        serialization = size_bytes / self.bandwidth
        self._free_at = start + serialization
        return PacketTiming(start=start, arrival=self._free_at + self.propagation)

    @property
    def free_at(self) -> float:
        """Time at which the transmitter becomes idle."""
        return self._free_at


def packetize(message_bytes: int) -> list[int]:
    """Split a message into MTU-sized packet payloads (last one partial)."""
    if message_bytes <= 0:
        return [64]  # even empty protocol messages cost headers
    full, rest = divmod(message_bytes, MTU_BYTES)
    sizes = [MTU_BYTES] * full
    if rest:
        sizes.append(rest)
    return sizes
