"""A BFTSim-style packet-level baseline simulator (Fig. 2 comparison).

BFTSim (Singh et al., NSDI'08) — the baseline the paper compares against —
couples a P2 declarative-dataflow engine with the ns-2 packet-level network
simulator.  Its artifact is not available, so this module rebuilds its
*cost structure*, which is all Fig. 2 depends on:

* **Packet-level network.**  Every protocol message is split into MTU-sized
  packets, each pushed hop-by-hop (sender uplink -> switch -> receiver
  downlink) through FIFO links with serialization and propagation delay,
  one simulator event per packet per hop.  A message-level simulator pays
  one event per message; this pays Theta(packets x hops).
* **Dataflow evaluation.**  P2 evaluates declarative rules by joining each
  newly derived tuple against the node's stored tables.  The baseline
  archives one tuple per delivered message and performs the corresponding
  linear scan on every delivery, so per-event work grows with history —
  semi-naive Datalog evaluation, honestly executed.
* **Memory behaviour.**  Every archived tuple is charged
  ``tuple_bytes * n`` virtual bytes (per-peer indexes), against a 4 GiB
  budget (a 2008-class machine).  Exceeding it raises
  :class:`~repro.core.errors.BaselineCapacityError` — the out-of-memory
  failure the paper reports for BFTSim beyond 32 nodes.

The baseline runs the *same* protocol implementations as the main
simulator (they only see the ``NodeEnvironment`` facade), so Fig. 2 is a
pure simulator-architecture comparison — and the validator module can
cross-check traces between the two engines, standing in for the paper's
BFTSim cross-validation (§III-D).

Like BFTSim, the baseline models only benign failures: it accepts the
``null`` and ``failstop`` attacks and rejects everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import SimulationConfig
from ..core.controller import Controller
from ..core.errors import BaselineCapacityError, ConfigurationError
from ..core.events import Event
from ..core.message import BROADCAST, Message, estimate_message_bytes
from ..core.results import SimulationResult
from ..crypto.signatures import canonical
from ..network.delays import DelayModel
from .links import Link, packetize

#: Attacks BFTSim-style simulation can express (benign failures only).
SUPPORTED_ATTACKS = ("null", "failstop")

#: Virtual bytes charged per archived tuple, per node it is indexed for.
#: P2 materializes per-peer dataflow state (session tables, retransmission
#: buffers, rule indexes); 48 KiB per tuple per peer calibrates the model to
#: BFTSim's reported failure point (out-of-memory just past 32 nodes).
TUPLE_BYTES: int = 48 * 1024

#: Default memory budget: a 2008-class 4 GiB machine.
DEFAULT_BUDGET_BYTES: int = 4 * 1024**3

#: Link bandwidth: 1 Gbit/s in bytes per millisecond.
GIGABIT_BYTES_PER_MS: float = 125_000.0

#: Fixed protocol header overhead per message, bytes.
HEADER_BYTES: int = 128


@dataclass(frozen=True)
class PacketHopEvent(Event):
    """One packet finishing one hop."""

    message: Message = None  # type: ignore[assignment]
    packet_index: int = 0
    packet_count: int = 1
    size_bytes: int = 0
    hop: str = "switch"  # "switch" -> at the fabric; "dest" -> at receiver
    residual_delay: float = 0.0  # second-half propagation for the next hop


class PacketLevelNetwork:
    """Star topology: every node has an uplink and a downlink to a switch."""

    def __init__(self, controller: "BaselineController") -> None:
        self._controller = controller
        self.delay_model = DelayModel(
            controller.config.network,
            controller.random_source.numpy("baseline.delay"),
        )
        n = controller.n
        self.uplinks = [Link(GIGABIT_BYTES_PER_MS, 0.0) for _ in range(n)]
        self.downlinks = [Link(GIGABIT_BYTES_PER_MS, 0.0) for _ in range(n)]

    def submit(self, message: Message) -> None:
        now = self._controller.clock.now
        message.sent_at = now
        if message.dest == BROADCAST:
            for dest in range(self._controller.n):
                self._submit_single(message.copy_for(dest))
        else:
            self._submit_single(message)

    def _submit_single(self, message: Message) -> None:
        controller = self._controller
        now = controller.clock.now
        message.msg_id = controller.next_message_id()
        if message.dest == message.source:
            message.delay = 0.0
            controller.schedule_delivery(message)
            return
        controller.metrics.on_sent()
        controller.metrics.on_bytes(estimate_message_bytes(message))
        controller.trace.record(
            now, "send", message.source,
            dest=message.dest, msg_type=message.type, msg_id=message.msg_id,
        )
        # The end-to-end propagation budget for this message, split across
        # the two hops, reproduces the configured delay distribution.
        total_delay = self.delay_model.sample_delay(now)
        half = total_delay / 2.0
        sizes = packetize(HEADER_BYTES + len(canonical(message.payload)))
        uplink = self.uplinks[message.source]
        for index, size in enumerate(sizes):
            timing = uplink.transmit(size, now)
            controller.record_packet_trace(
                timing.start, "enqueue", message, index, size
            )
            controller.queue.push(
                PacketHopEvent(
                    time=timing.arrival + half,
                    message=message,
                    packet_index=index,
                    packet_count=len(sizes),
                    size_bytes=size,
                    hop="switch",
                    residual_delay=half,
                )
            )

    def forward_from_switch(self, event: PacketHopEvent) -> None:
        """Second hop: switch -> destination downlink."""
        downlink = self.downlinks[event.message.dest]
        timing = downlink.transmit(event.size_bytes, event.time)
        self._controller.record_packet_trace(
            event.time, "forward", event.message, event.packet_index, event.size_bytes
        )
        self._controller.queue.push(
            PacketHopEvent(
                time=timing.arrival + event.residual_delay,
                message=event.message,
                packet_index=event.packet_index,
                packet_count=event.packet_count,
                size_bytes=event.size_bytes,
                hop="dest",
                residual_delay=0.0,
            )
        )

    def send_ack(self, event: PacketHopEvent) -> None:
        """Transport-level per-packet acknowledgement (BFTSim ran its
        protocols over TCP in ns-2): a small reverse-path packet through
        both links, one more simulator event per data packet."""
        ack_size = 64
        up = self.uplinks[event.message.dest]
        timing = up.transmit(ack_size, event.time)
        self._controller.queue.push(
            PacketHopEvent(
                time=timing.arrival + self.delay_model.config.min_delay,
                message=event.message,
                packet_index=event.packet_index,
                packet_count=event.packet_count,
                size_bytes=ack_size,
                hop="ack",
                residual_delay=0.0,
            )
        )


@dataclass
class _NodeStore:
    """A node's P2-style tuple archive."""

    tuples: list[str] = field(default_factory=list)

    def insert_and_evaluate(self, tuple_kind: str) -> int:
        """Archive a tuple and run the semi-naive join: scan the existing
        store for tuples of the same kind (quorum-counting rules).  The
        scan is the honest per-event cost of declarative evaluation."""
        matches = sum(1 for kind in self.tuples if kind == tuple_kind)
        self.tuples.append(tuple_kind)
        return matches


class BaselineController(Controller):
    """Controller wired to the packet-level network and tuple stores."""

    def __init__(
        self, config: SimulationConfig, budget_bytes: int = DEFAULT_BUDGET_BYTES
    ) -> None:
        if config.attack.name not in SUPPORTED_ATTACKS:
            raise ConfigurationError(
                f"the baseline simulator models benign failures only "
                f"(attack {config.attack.name!r} unsupported; "
                f"supported: {SUPPORTED_ATTACKS})"
            )
        super().__init__(config)
        self.network = PacketLevelNetwork(self)  # type: ignore[assignment]
        self.budget_bytes = budget_bytes
        self._stores = [_NodeStore() for _ in range(config.n)]
        self._archived_tuples = 0
        self._reassembly: dict[int, int] = {}
        self._packet_trace: list[str] = []

    # -- memory model ---------------------------------------------------------

    @property
    def virtual_bytes(self) -> int:
        """Modelled memory footprint of the archived dataflow state."""
        return self._archived_tuples * TUPLE_BYTES * self.n

    def _charge_tuple(self) -> None:
        self._archived_tuples += 1
        if self.virtual_bytes > self.budget_bytes:
            raise BaselineCapacityError(
                f"baseline out of memory: {self.virtual_bytes / 1024**3:.1f} GiB "
                f"of archived dataflow state exceeds the "
                f"{self.budget_bytes / 1024**3:.1f} GiB budget at n={self.n}"
            )

    # -- event dispatch ---------------------------------------------------------

    def _dispatch(self, event, event_time=None, dest=None) -> None:  # type: ignore[override]
        if isinstance(event, PacketHopEvent):
            if event.hop == "switch":
                self.network.forward_from_switch(event)
            elif event.hop == "ack":
                self.record_packet_trace(
                    event.time, "ack", event.message, event.packet_index, event.size_bytes
                )
            else:
                self._on_packet_at_destination(event)
            return
        super()._dispatch(event, event_time, dest)

    def record_packet_trace(
        self, time: float, action: str, message: Message, index: int, size: int
    ) -> None:
        """Append an ns-2-style trace line for a packet action.

        ns-2 runs with per-packet tracing on; the formatted line is part of
        the baseline's honest per-event cost and its retained state."""
        self._packet_trace.append(
            f"{action} {time:.6f} {message.source} {message.dest} "
            f"{message.type} pkt={index} size={size} id={message.msg_id}"
        )

    def _on_packet_at_destination(self, event: PacketHopEvent) -> None:
        message = event.message
        self.network.send_ack(event)
        self.record_packet_trace(
            event.time, "recv", message, event.packet_index, event.size_bytes
        )
        received = self._reassembly.get(message.msg_id, 0) + 1
        if received < event.packet_count:
            self._reassembly[message.msg_id] = received
            return
        self._reassembly.pop(message.msg_id, None)
        if message.dest in self._halted:
            return
        self._stores[message.dest].insert_and_evaluate(message.type)
        self._charge_tuple()
        self.metrics.on_delivered()
        self.trace.record(
            event.time, "deliver", message.dest,
            source=message.source, msg_type=message.type, msg_id=message.msg_id,
        )
        self.nodes[message.dest].on_message(message)


def run_baseline_simulation(
    config: SimulationConfig, budget_bytes: int = DEFAULT_BUDGET_BYTES
) -> SimulationResult:
    """Run ``config`` on the packet-level baseline engine.

    Raises:
        BaselineCapacityError: when the modelled memory budget is exceeded
            (the paper's BFTSim OOM beyond 32 nodes).
    """
    return BaselineController(config, budget_bytes=budget_bytes).run()
