"""Structured logging for the simulator.

Every subsystem logs through the stdlib :mod:`logging` machinery under the
``repro`` namespace (``repro.controller``, ``repro.network``,
``repro.faults``, ``repro.protocol.n3``, ...), so embedding applications
configure it like any other library's logging.  Two things are added on
top of stock ``logging``:

* **simulated-time stamps** — a :class:`SimLogger` binds a logger to the
  run's clock and stamps every record with the simulation time (ms) at
  which the logged thing happened, which is what you actually want to read
  in a discrete-event simulator ("view change at t=4200ms", not a host
  timestamp);
* **structured fields** — keyword arguments become a ``data`` mapping on
  the record; the JSON formatter emits them as first-class keys, the text
  formatter as trailing ``key=value`` pairs.

By default the ``repro`` logger carries a ``NullHandler`` (library
etiquette: silent unless the host application opts in).  The CLI opts in
via :func:`configure_logging`, wired to ``--log-level`` / ``--log-json``.

Determinism: logging never influences the simulation — no draws, no state;
a run logs the same records at the same simulated times every time, and
``result_fingerprint`` is unaffected at any level.
"""

from __future__ import annotations

import json
import logging as _logging
import sys
from typing import Any, TextIO

#: Root logger namespace for the whole package.
LOGGER_NAME = "repro"

#: Accepted ``--log-level`` names.
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

_logging.getLogger(LOGGER_NAME).addHandler(_logging.NullHandler())

#: The handler installed by :func:`configure_logging` (so reconfiguring
#: replaces it instead of stacking duplicates).
_installed_handler: _logging.Handler | None = None


def get_logger(subsystem: str, node: int | None = None) -> _logging.Logger:
    """The ``repro``-namespaced logger of a subsystem.

    Args:
        subsystem: dotted suffix, e.g. ``"controller"``, ``"network"``.
        node: append a per-node leaf (``repro.protocol.n3``) so per-replica
            output can be filtered with standard logging configuration.
    """
    name = f"{LOGGER_NAME}.{subsystem}" if subsystem else LOGGER_NAME
    if node is not None:
        name = f"{name}.n{node}"
    return _logging.getLogger(name)


class SimLogger:
    """A logger bound to a simulation clock (and optionally a node).

    Thin and allocation-free on the fast path: each level method first asks
    the underlying logger ``isEnabledFor`` and returns immediately when the
    level is off, so per-event debug logging costs one comparison in
    production runs.

    Keyword arguments become structured fields; pass ``sim_time=...`` to
    override the clock's current time (e.g. when logging about a message
    stamped in the past).
    """

    __slots__ = ("logger", "_clock", "_node")

    def __init__(
        self,
        logger: _logging.Logger,
        clock: Any = None,
        node: int | None = None,
    ) -> None:
        self.logger = logger
        self._clock = clock  # anything with a ``.now`` property, or None
        self._node = node

    def _log(self, level: int, message: str, fields: dict[str, Any]) -> None:
        sim_time = fields.pop("sim_time", None)
        if sim_time is None and self._clock is not None:
            sim_time = self._clock.now
        self.logger.log(
            level,
            message,
            extra={"sim_time": sim_time, "sim_node": self._node, "data": fields},
        )

    def debug(self, message: str, **fields: Any) -> None:
        if self.logger.isEnabledFor(_logging.DEBUG):
            self._log(_logging.DEBUG, message, fields)

    def info(self, message: str, **fields: Any) -> None:
        if self.logger.isEnabledFor(_logging.INFO):
            self._log(_logging.INFO, message, fields)

    def warning(self, message: str, **fields: Any) -> None:
        if self.logger.isEnabledFor(_logging.WARNING):
            self._log(_logging.WARNING, message, fields)

    def error(self, message: str, **fields: Any) -> None:
        if self.logger.isEnabledFor(_logging.ERROR):
            self._log(_logging.ERROR, message, fields)


class TextLogFormatter(_logging.Formatter):
    """Human-oriented line format with simulated-time stamps::

        warning repro.controller [t=61000.0ms] liveness watchdog fired reason=...
    """

    def format(self, record: _logging.LogRecord) -> str:
        sim_time = getattr(record, "sim_time", None)
        node = getattr(record, "sim_node", None)
        data = getattr(record, "data", None) or {}
        parts = [record.levelname.lower(), record.name]
        if sim_time is not None:
            parts.append(f"[t={sim_time:.1f}ms]")
        if node is not None:
            parts.append(f"[n{node}]")
        parts.append(record.getMessage())
        parts.extend(f"{key}={value}" for key, value in sorted(data.items()))
        return " ".join(parts)


class JsonLogFormatter(_logging.Formatter):
    """One JSON object per line — machine-ingestable (``--log-json``)."""

    def format(self, record: _logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        sim_time = getattr(record, "sim_time", None)
        if sim_time is not None:
            payload["sim_time_ms"] = sim_time
        node = getattr(record, "sim_node", None)
        if node is not None:
            payload["node"] = node
        data = getattr(record, "data", None)
        if data:
            payload["data"] = data
        return json.dumps(payload, sort_keys=True, default=repr)


def configure_logging(
    level: str = "warning",
    json_lines: bool = False,
    stream: TextIO | None = None,
) -> _logging.Handler:
    """Install (or replace) the package's stream handler.

    Idempotent: calling it again swaps the previously installed handler
    instead of stacking duplicates, so tests and long-lived REPLs can
    reconfigure freely.

    Args:
        level: one of :data:`LOG_LEVELS` (case-insensitive).
        json_lines: emit JSONL records instead of human-readable text.
        stream: destination (default ``sys.stderr`` — stdout stays clean
            for result tables).

    Returns:
        The installed handler (callers may detach it with
        ``logging.getLogger("repro").removeHandler(...)``).
    """
    global _installed_handler
    name = level.lower()
    if name not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; expected one of {LOG_LEVELS}")
    root = _logging.getLogger(LOGGER_NAME)
    if _installed_handler is not None:
        root.removeHandler(_installed_handler)
    handler = _logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter() if json_lines else TextLogFormatter())
    root.addHandler(handler)
    root.setLevel(getattr(_logging, name.upper()))
    _installed_handler = handler
    return handler
