"""Hot-path profiler: where wall-clock time goes inside a run.

The paper's central claims are about simulator *efficiency* (§V: events per
second, scalability with node count).  To optimize the engine we first have
to measure it, so the controller dispatch loop, the network module, and the
fault engine carry opt-in timing hooks around their hot sections (queue
pop, delay sampling, attacker hand-off, fault application, per-protocol
``onMsgEvent``/``onTimeEvent``).

The hooks are ``perf_counter`` reads guarded by a single ``is None`` branch:
with profiling off (the default) the engine pays one pointer comparison per
section, which the overhead benchmark
(``benchmarks/bench_observability_overhead.py``) keeps within noise.

The aggregate is a :class:`RunProfile` attached to
``SimulationResult.profile`` — *outside* the determinism fingerprint, like
``wall_clock_seconds``, because host timing varies between otherwise
identical runs.  Profiles merge (:meth:`RunProfile.merge`), which is how
:class:`~repro.parallel.ParallelRunner` reports fleet-wide throughput for a
whole sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterable, Mapping

#: Profiler section names instrumented by the engine, in dispatch order.
#: (Open set: callers may add their own names via :meth:`Profiler.add`.)
ENGINE_SECTIONS = (
    "queue.pop",
    "network.delay",
    "attacker.attack",
    "attacker.timer",
    "faults.apply",
    "protocol.on_message",
    "protocol.on_timer",
)


@dataclass(frozen=True)
class SectionStats:
    """Accumulated timing of one instrumented section.

    Attributes:
        calls: how many times the section executed.
        seconds: total wall-clock time spent inside it.
    """

    calls: int
    seconds: float

    @property
    def us_per_call(self) -> float:
        """Mean microseconds per call."""
        return (self.seconds / self.calls) * 1e6 if self.calls else 0.0


@dataclass(frozen=True)
class RunProfile:
    """Aggregated hot-path profile of one run (or a merged fleet of runs).

    Excluded from :func:`~repro.core.results.result_fingerprint` — host
    timing is not part of a run's deterministic identity.

    Attributes:
        wall_seconds: total wall-clock time of the run(s); for merged
            profiles this is summed *worker* time (CPU-seconds), not batch
            elapsed time.
        events: events the controller dispatched.
        sim_time_ms: simulated time covered.
        runs: how many runs this profile aggregates (1 for a single run).
        sections: per-section timing, keyed by section name.
    """

    wall_seconds: float
    events: int
    sim_time_ms: float
    runs: int = 1
    sections: dict[str, SectionStats] = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        """Dispatch throughput — the paper's Fig. 2 efficiency metric."""
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def accounted_seconds(self) -> float:
        """Wall time attributed to instrumented sections."""
        return sum(s.seconds for s in self.sections.values())

    @classmethod
    def merge(cls, profiles: Iterable["RunProfile"]) -> "RunProfile":
        """Sum profiles (e.g. every run of a sweep) into a fleet profile."""
        wall = 0.0
        events = 0
        sim_ms = 0.0
        runs = 0
        sections: dict[str, list[float]] = {}
        for profile in profiles:
            wall += profile.wall_seconds
            events += profile.events
            sim_ms += profile.sim_time_ms
            runs += profile.runs
            for name, stats in profile.sections.items():
                cell = sections.setdefault(name, [0, 0.0])
                cell[0] += stats.calls
                cell[1] += stats.seconds
        return cls(
            wall_seconds=wall,
            events=events,
            sim_time_ms=sim_ms,
            runs=runs,
            sections={
                name: SectionStats(calls=int(calls), seconds=seconds)
                for name, (calls, seconds) in sections.items()
            },
        )

    # -- serialization (for ``--profile-out`` / ``repro inspect``) ----------

    def to_dict(self) -> dict[str, Any]:
        return {
            "wall_seconds": self.wall_seconds,
            "events": self.events,
            "sim_time_ms": self.sim_time_ms,
            "runs": self.runs,
            "events_per_second": self.events_per_second,
            "sections": {
                name: {"calls": s.calls, "seconds": s.seconds}
                for name, s in self.sections.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunProfile":
        return cls(
            wall_seconds=float(data["wall_seconds"]),
            events=int(data["events"]),
            sim_time_ms=float(data.get("sim_time_ms", 0.0)),
            runs=int(data.get("runs", 1)),
            sections={
                name: SectionStats(
                    calls=int(s["calls"]), seconds=float(s["seconds"])
                )
                for name, s in dict(data.get("sections", {})).items()
            },
        )

    # -- rendering -----------------------------------------------------------

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"profile: {self.runs} run{'s' if self.runs != 1 else ''}, "
            f"{self.events} events in {self.wall_seconds:.3f}s wall "
            f"({self.events_per_second:,.0f} events/s, "
            f"{self.sim_time_ms:.0f}ms simulated)"
        )

    def format_table(self, top: int | None = None) -> str:
        """Fixed-width per-section table, hottest first.

        Args:
            top: show only the ``top`` hottest sections (``None`` = all);
                a tail line reports what was cut.
        """
        from ..analysis.report import render_table

        ranked = sorted(
            self.sections.items(), key=lambda item: item[1].seconds, reverse=True
        )
        shown = ranked if top is None else ranked[:top]
        wall = self.wall_seconds or 1.0
        rows = [
            (
                name,
                stats.calls,
                f"{stats.seconds:.4f}",
                f"{100.0 * stats.seconds / wall:.1f}%",
                f"{stats.us_per_call:.1f}",
            )
            for name, stats in shown
        ]
        other = self.wall_seconds - self.accounted_seconds
        rows.append(
            ("(unaccounted)", "", f"{max(other, 0.0):.4f}",
             f"{100.0 * max(other, 0.0) / wall:.1f}%", "")
        )
        note = self.summary()
        if top is not None and len(ranked) > top:
            note += f"; +{len(ranked) - top} more sections not shown"
        return render_table(
            "hot-path profile (per-section wall time)",
            ["section", "calls", "seconds", "% wall", "us/call"],
            rows,
            note=note,
        )


class Profiler:
    """Mutable per-run accumulator behind the engine's timing hooks.

    Usage on a hot path (note the ``is None`` guard — with no profiler the
    engine pays one branch)::

        prof = controller.profiler
        if prof is None:
            event = queue.pop()
        else:
            t0 = perf_counter()
            event = queue.pop()
            prof.add("queue.pop", t0)
    """

    __slots__ = ("_sections",)

    def __init__(self) -> None:
        self._sections: dict[str, list[float]] = {}

    def add(self, name: str, started: float) -> None:
        """Charge ``perf_counter() - started`` seconds to section ``name``."""
        elapsed = perf_counter() - started
        cell = self._sections.get(name)
        if cell is None:
            self._sections[name] = [1, elapsed]
        else:
            cell[0] += 1
            cell[1] += elapsed

    def build(self, wall_seconds: float, events: int, sim_time_ms: float) -> RunProfile:
        """Freeze the accumulated sections into a :class:`RunProfile`."""
        return RunProfile(
            wall_seconds=wall_seconds,
            events=events,
            sim_time_ms=sim_time_ms,
            runs=1,
            sections={
                name: SectionStats(calls=int(calls), seconds=seconds)
                for name, (calls, seconds) in self._sections.items()
            },
        )
