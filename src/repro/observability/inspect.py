"""Trace forensics: the analysis engine behind ``repro inspect``.

Reads a JSONL trace (the on-disk format of
:class:`~repro.core.tracing.JsonlSink`, byte-identical to
``Trace.to_jsonl``) in **one streaming pass with bounded memory** — the
accumulators grow with the protocol vocabulary (message types, views,
nodes), never with the event count — and produces a :class:`TraceReport`:

* message-usage accounting that reproduces the run's
  :class:`~repro.core.metrics.MessageCounts` (honest sends, byzantine
  traffic, deliveries, drops, wire bytes);
* a per-view timeline (when each view was first/last entered and by how
  many nodes) — the textual counterpart of the paper's Fig. 9;
* stall forensics: the last honest progress event (decision, view advance,
  or delivery — the controller's liveness-watchdog definition) and a census
  of the silent tail after it, which is what you read when a run ends in a
  :class:`~repro.core.results.StallReport`;
* per-kind and per-timer histograms.

``repro run --trace-out trace.jsonl --profile --profile-out profile.json``
produces the inputs; ``repro inspect trace.jsonl --profile-json
profile.json`` renders report and top-N profile table together.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from ..core.tracing import Trace, open_trace_text

#: Event kinds the controller counts as honest progress (liveness watchdog).
PROGRESS_KINDS = ("decide", "view", "deliver")

#: Event kinds that mean "a message was removed before protocol logic".
DROP_KINDS = ("drop", "env-drop", "env-crash-drop", "env-reject", "suppress")

#: Passive annotation kinds excluded from the silent-tail census.
PASSIVE_KINDS = ("phase", "health", "health-sample")


def iter_trace_file(path: str | os.PathLike[str]) -> Iterator[dict[str, Any]]:
    """Stream the raw event dicts of a JSONL trace file, one at a time.

    Paths ending in ``.gz`` (gzip-compressed sinks) decompress
    transparently — see :func:`~repro.core.tracing.open_trace_text`.
    """
    with open_trace_text(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def iter_events(
    source: str | os.PathLike[str] | Trace | Iterable[Mapping[str, Any]],
) -> Iterable[Mapping[str, Any]]:
    """Event dicts from a file path, a :class:`Trace`, or an iterable.

    The shared input coercion for every trace analysis
    (:func:`analyze_trace`, the causality DAG, the phase analyzer).
    """
    if isinstance(source, Trace):
        return (e.to_dict() for e in source)
    if isinstance(source, (str, os.PathLike)):
        return iter_trace_file(source)
    return source


@dataclass
class MessageKindStats:
    """Per-message-type traffic accumulated over one trace."""

    sends: int = 0
    delivers: int = 0
    bytes: int = 0


@dataclass
class ViewSpan:
    """When a view was active: first/last entry times and distinct nodes."""

    view: int
    first_entry: float
    last_entry: float
    nodes: int


@dataclass
class TraceReport:
    """Everything one streaming pass over a trace established.

    The traffic totals mirror :class:`~repro.core.metrics.MessageCounts`
    exactly: ``sent`` counts honest transmissions (loopback self-deliveries
    never appear as ``send`` events), ``byzantine_sent`` counts forged or
    corrupted-source transmissions, ``delivered`` counts messages actually
    dispatched to a replica.
    """

    events: int = 0
    time_start: float = 0.0
    time_end: float = 0.0
    kind_counts: dict[str, int] = field(default_factory=dict)
    # -- traffic (MessageCounts mirror) --
    sent: int = 0
    byzantine_sent: int = 0
    #: Of ``byzantine_sent``, how many were attacker-*inserted* (forged
    #: ``origin="attacker"`` sends with no honest counterpart) rather than
    #: honest-format sends from a corrupted source.
    inserted: int = 0
    delivered: int = 0
    dropped: dict[str, int] = field(default_factory=dict)
    bytes_sent: int = 0
    message_kinds: dict[str, MessageKindStats] = field(default_factory=dict)
    # -- protocol progress --
    decides: int = 0
    decisions_per_node: dict[int, int] = field(default_factory=dict)
    max_view: int = 0
    views: list[ViewSpan] = field(default_factory=list)
    timer_counts: dict[str, int] = field(default_factory=dict)
    # -- stall forensics --
    last_progress_time: float | None = None
    last_progress_kind: str | None = None
    last_progress_node: int | None = None
    tail_events: int = 0
    tail_census: dict[str, int] = field(default_factory=dict)

    @property
    def total_dropped(self) -> int:
        """Messages removed before protocol logic, all causes summed."""
        return sum(self.dropped.values())

    @property
    def tail_span_ms(self) -> float:
        """Simulated time between the last honest progress and trace end."""
        if self.last_progress_time is None:
            return self.time_end - self.time_start
        return self.time_end - self.last_progress_time

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (``repro inspect --json``)."""
        return {
            "events": self.events,
            "time_start_ms": self.time_start,
            "time_end_ms": self.time_end,
            "kind_counts": dict(sorted(self.kind_counts.items())),
            "sent": self.sent,
            "byzantine_sent": self.byzantine_sent,
            "inserted": self.inserted,
            "delivered": self.delivered,
            "dropped": dict(sorted(self.dropped.items())),
            "bytes_sent": self.bytes_sent,
            "message_kinds": {
                kind: {"sends": s.sends, "delivers": s.delivers, "bytes": s.bytes}
                for kind, s in sorted(self.message_kinds.items())
            },
            "decides": self.decides,
            "decisions_per_node": {
                str(node): count
                for node, count in sorted(self.decisions_per_node.items())
            },
            "max_view": self.max_view,
            "views": [
                {
                    "view": span.view,
                    "first_entry_ms": span.first_entry,
                    "last_entry_ms": span.last_entry,
                    "nodes": span.nodes,
                }
                for span in self.views
            ],
            "timer_counts": dict(sorted(self.timer_counts.items())),
            "stall": {
                "last_progress_ms": self.last_progress_time,
                "last_progress_kind": self.last_progress_kind,
                "last_progress_node": self.last_progress_node,
                "tail_events": self.tail_events,
                "tail_span_ms": self.tail_span_ms,
                "tail_census": dict(sorted(self.tail_census.items())),
            },
        }


def analyze_trace(
    source: str | os.PathLike[str] | Trace | Iterable[Mapping[str, Any]],
) -> TraceReport:
    """One streaming pass over a trace, from a file path, a
    :class:`~repro.core.tracing.Trace`, or an iterable of event dicts."""
    events = iter_events(source)

    report = TraceReport()
    first = True
    # Tail tracking: census of events strictly after the last progress
    # event.  Reset whenever progress happens; by end-of-trace it holds
    # exactly the silent tail.
    tail: dict[str, int] = {}
    view_entries: dict[int, list[Any]] = {}  # view -> [first, last, node_set]

    for event in events:
        time = float(event["time"])
        kind = str(event["kind"])
        node = int(event.get("node", -1))
        report.events += 1
        if first:
            report.time_start = time
            first = False
        report.time_end = max(report.time_end, time)
        report.kind_counts[kind] = report.kind_counts.get(kind, 0) + 1

        if kind == "send":
            if event.get("forged") or event.get("byzantine"):
                report.byzantine_sent += 1
                if event.get("origin") == "attacker":
                    report.inserted += 1
            else:
                report.sent += 1
            size = int(event.get("size", 0))
            report.bytes_sent += size
            stats = report.message_kinds.setdefault(
                str(event.get("msg_type", "?")), MessageKindStats()
            )
            stats.sends += 1
            stats.bytes += size
        elif kind == "deliver":
            report.delivered += 1
            report.message_kinds.setdefault(
                str(event.get("msg_type", "?")), MessageKindStats()
            ).delivers += 1
        elif kind in DROP_KINDS:
            cause = str(event.get("fault", kind))
            report.dropped[cause] = report.dropped.get(cause, 0) + 1
        elif kind == "decide":
            report.decides += 1
            report.decisions_per_node[node] = (
                report.decisions_per_node.get(node, 0) + 1
            )
        elif kind == "view" and "view" in event:
            view = int(event["view"])
            report.max_view = max(report.max_view, view)
            entry = view_entries.get(view)
            if entry is None:
                view_entries[view] = [time, time, {node}]
            else:
                entry[0] = min(entry[0], time)
                entry[1] = max(entry[1], time)
                entry[2].add(node)
        elif kind == "timer":
            name = str(event.get("name", "?"))
            report.timer_counts[name] = report.timer_counts.get(name, 0) + 1

        if kind in PROGRESS_KINDS:
            report.last_progress_time = time
            report.last_progress_kind = kind
            report.last_progress_node = node
            tail = {}
        elif kind not in PASSIVE_KINDS:
            # Phase and health events are passive annotations (a protocol
            # tagging the stage it entered, the health monitor sampling a
            # window); counting them as silent-tail work would misreport a
            # healthy terminating run.
            label = _census_label(kind, event)
            tail[label] = tail.get(label, 0) + 1

    report.tail_census = tail
    report.tail_events = sum(tail.values())
    report.views = [
        ViewSpan(view=view, first_entry=entry[0], last_entry=entry[1],
                 nodes=len(entry[2]))
        for view, entry in sorted(view_entries.items())
    ]
    return report


def _census_label(kind: str, event: Mapping[str, Any]) -> str:
    """Histogram key for stall-tail events (mirrors StallReport's census)."""
    if kind == "timer":
        return f"timer:{event.get('name', '?')}"
    if kind == "send" or kind in DROP_KINDS:
        return f"{kind}:{event.get('msg_type', '?')}"
    return kind


def render_report(
    report: TraceReport,
    top: int = 20,
    profile: "Any | None" = None,
) -> str:
    """Human-readable rendering: summary, message-usage table, view
    timeline, stall forensics, and (when given) the top-N profile table.

    Args:
        report: the analysis to render.
        top: row cap for each table (a tail line reports what was cut).
        profile: optional :class:`~repro.observability.profiler.RunProfile`.
    """
    from ..analysis.report import render_table

    sections: list[str] = []
    span = report.time_end - report.time_start
    sections.append(
        f"trace: {report.events} events over {span:.1f}ms simulated "
        f"({report.time_start:.1f} .. {report.time_end:.1f})"
    )

    # -- message usage --------------------------------------------------
    ranked = sorted(
        report.message_kinds.items(),
        key=lambda item: item[1].sends + item[1].delivers,
        reverse=True,
    )
    rows = [
        (kind, stats.sends, stats.delivers, stats.bytes)
        for kind, stats in ranked[:top]
    ]
    rows.append(("TOTAL", report.sent + report.byzantine_sent,
                 report.delivered, report.bytes_sent))
    note = (
        f"honest sent={report.sent} byzantine={report.byzantine_sent} "
        f"delivered={report.delivered} dropped={report.total_dropped}"
    )
    if report.inserted:
        note += f"; {report.inserted} attacker-inserted"
    if report.dropped:
        causes = " ".join(
            f"{cause}={count}" for cause, count in sorted(report.dropped.items())
        )
        note += f" ({causes})"
    if len(ranked) > top:
        note += f"; +{len(ranked) - top} more message kinds"
    sections.append(render_table(
        "message usage by kind",
        ["msg_type", "sends", "delivers", "bytes"],
        rows,
        note=note,
    ))

    # -- view timeline --------------------------------------------------
    if report.views:
        view_rows = [
            (
                span_.view,
                f"{span_.first_entry:.1f}",
                f"{span_.last_entry:.1f}",
                span_.nodes,
            )
            for span_ in report.views[:top]
        ]
        view_note = f"max view {report.max_view}"
        if len(report.views) > top:
            view_note += f"; +{len(report.views) - top} more views"
        sections.append(render_table(
            "view timeline (per-view entry window)",
            ["view", "first entry (ms)", "last entry (ms)", "nodes"],
            view_rows,
            note=view_note,
        ))

    # -- timers ---------------------------------------------------------
    if report.timer_counts:
        timer_rows = sorted(
            report.timer_counts.items(), key=lambda item: item[1], reverse=True
        )
        sections.append(render_table(
            "timer firings",
            ["timer", "count"],
            timer_rows[:top],
        ))

    # -- stall forensics ------------------------------------------------
    lines = ["stall forensics:"]
    if report.last_progress_time is None:
        lines.append("  no honest progress event (decide/view/deliver) in trace")
    else:
        where = (
            f"node {report.last_progress_node}"
            if report.last_progress_node not in (None, -1)
            else "system"
        )
        lines.append(
            f"  last honest progress: {report.last_progress_kind} by {where} "
            f"at {report.last_progress_time:.1f}ms"
        )
    if report.tail_events:
        lines.append(
            f"  silent tail: {report.tail_events} events over "
            f"{report.tail_span_ms:.1f}ms with no honest progress"
        )
        census = sorted(
            report.tail_census.items(), key=lambda item: item[1], reverse=True
        )
        for label, count in census[:top]:
            lines.append(f"    {label:<28} x{count}")
        if len(census) > top:
            lines.append(f"    ... +{len(census) - top} more tail event labels")
    else:
        lines.append("  trace ends on honest progress (no silent tail)")
    lines.append(
        f"  decisions: {report.decides} total across "
        f"{len(report.decisions_per_node)} nodes"
    )
    sections.append("\n".join(lines))

    # -- profile --------------------------------------------------------
    if profile is not None:
        sections.append(profile.format_table(top=top))

    return "\n\n".join(sections)
