"""Streaming run-health: online anomaly detectors over rolling windows.

Every analyzer the repo had before this module (causality DAG, phase
breakdowns, quorum timelines) runs *post-hoc* on a finished trace; a
million-event fleet run gives no signal until it ends.  The
:class:`HealthMonitor` closes that gap: O(1)-per-event rolling-window
detectors fed straight from the controller dispatch loop, reusing the
same hook plumbing as :class:`~repro.observability.signals.LiveSignals`
and the :class:`~repro.observability.metrics.MetricsRegistry`.

Determinism contract
--------------------
The monitor is OBSERVE-only: it never draws randomness, never schedules
events, and never touches protocol or network state, so enabling it
leaves every golden digest byte-identical.  Its :class:`HealthReport`
lives on :class:`~repro.core.results.SimulationResult` *outside* the
deterministic field set (like ``profile`` and ``run_metrics``), so
``result_fingerprint`` is unchanged by construction.

Online == offline
-----------------
Detector inputs split in two:

* **hook counters** (deliveries per message kind, decisions per node,
  view entries) accumulate from the same events that produce ``deliver``
  / ``decide`` / ``view`` trace records;
* **engine samples** (in-flight message count, mempool depth, per-client
  fairness) are read from live engine state at each window boundary —
  state a raw trace does not contain.

At every window close the online monitor therefore records a
``health-sample`` trace event carrying exactly the engine-state values
the detectors consumed, *before* the boundary-crossing event's own trace
lines (``advance`` runs in the dispatch loop ahead of the dispatch).
:func:`replay_health` rebuilds a monitor from a finished trace by
feeding hook counters from the raw events and closing windows from the
recorded samples — producing *identical* detector state, which the
property suite asserts field by field.  Detection events (kind
``"health"``) are outputs, not inputs: replay ignores them and
re-derives them from the same inputs.

Detectors
---------
``view-storm``
    honest nodes entered at least ``view_storm_threshold`` (default 4)
    *distinct* views within one window in which **no decision landed** —
    views are churning without progress.  Counting distinct views (not
    entries) keeps one fleet-wide view advance (n entries of the same
    view) from reading as a storm, and the no-decision gate keeps
    view-per-slot protocols (chained HotStuff) from reading their normal
    rotation as one.
``straggler``
    some node's total decision count lags the fleet maximum by at least
    ``straggler_lag``; re-reported every window while the lag persists
    (a crashed replica *is* unhealthy for the rest of the run).
``backlog``
    in-flight messages + mempool depth strictly grew across
    ``backlog_windows`` consecutive windows and ended at or above
    ``backlog_min`` — the drain rate fell behind the offered rate.
``fanin-spike``
    one message kind's window delivery count exceeded
    ``fanin_factor`` x its EWMA baseline (warm-up guarded by
    ``fanin_min``).
``starvation``
    Jain's fairness index over per-client decided counts fell below
    ``fairness_threshold``, or the oldest outstanding request waited
    longer than ``starvation_wait_ms`` (default ``10 x window_ms``);
    implicates the lagging clients.  Only fires on workload runs.
"""

from __future__ import annotations

import os
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.controller import Controller
    from ..core.tracing import Trace

__all__ = [
    "DEFAULT_WINDOW_MS",
    "HealthEvent",
    "HealthMonitor",
    "HealthReport",
    "analyze_trace_health",
    "render_health",
    "replay_health",
]

DEFAULT_WINDOW_MS = 500.0

#: Keys a ``health-sample`` trace event may carry besides time/kind/node.
SAMPLE_KEYS = (
    "queue", "mempool", "fairness", "max_wait", "wait_client",
    "lagging", "decided",
)


@dataclass(frozen=True)
class HealthEvent:
    """One anomaly detection: what fired, when, and who is implicated.

    Attributes:
        time: window-close time the detection was evaluated at (ms).
        detector: detector name (``view-storm``, ``straggler``,
            ``backlog``, ``fanin-spike``, ``starvation``).
        severity: ``"warn"`` or ``"critical"``.
        window_start: start of the evaluated window (ms).
        window_end: end of the evaluated window (== ``time``).
        nodes: implicated node ids (sorted, possibly empty).
        clients: implicated client ids (sorted, possibly empty).
        evidence: detector-specific counters behind the call.
    """

    time: float
    detector: str
    severity: str
    window_start: float
    window_end: float
    nodes: tuple[int, ...] = ()
    clients: tuple[int, ...] = ()
    evidence: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "detector": self.detector,
            "severity": self.severity,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "nodes": list(self.nodes),
            "clients": list(self.clients),
            "evidence": dict(self.evidence),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HealthEvent":
        return cls(
            time=float(data["time"]),
            detector=str(data["detector"]),
            severity=str(data["severity"]),
            window_start=float(data["window_start"]),
            window_end=float(data["window_end"]),
            nodes=tuple(int(n) for n in data.get("nodes", ())),
            clients=tuple(int(c) for c in data.get("clients", ())),
            evidence=dict(data.get("evidence", {})),
        )


@dataclass
class HealthReport:
    """Everything the monitor established over one run.

    Attributes:
        window_ms: rolling-window width the detectors evaluated at.
        windows: number of windows closed (including the final partial).
        events: every detection, in evaluation order.
        anomaly_count: ``len(events)``.
        min_fairness: lowest Jain index observed at any window close
            (``None`` on runs without a workload).
        detectors: detection count per detector name.
    """

    window_ms: float
    windows: int
    events: list[HealthEvent] = field(default_factory=list)
    anomaly_count: int = 0
    min_fairness: float | None = None
    detectors: dict[str, int] = field(default_factory=dict)

    @property
    def starved_clients(self) -> tuple[int, ...]:
        """Distinct clients implicated by any starvation detection."""
        clients: set[int] = set()
        for event in self.events:
            if event.detector == "starvation":
                clients.update(event.clients)
        return tuple(sorted(clients))

    def to_dict(self) -> dict[str, Any]:
        return {
            "window_ms": self.window_ms,
            "windows": self.windows,
            "anomaly_count": self.anomaly_count,
            "min_fairness": self.min_fairness,
            "detectors": dict(self.detectors),
            "starved_clients": list(self.starved_clients),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HealthReport":
        events = [HealthEvent.from_dict(e) for e in data.get("events", ())]
        return cls(
            window_ms=float(data["window_ms"]),
            windows=int(data["windows"]),
            events=events,
            anomaly_count=int(data.get("anomaly_count", len(events))),
            min_fairness=(
                float(data["min_fairness"])
                if data.get("min_fairness") is not None
                else None
            ),
            detectors={str(k): int(v) for k, v in data.get("detectors", {}).items()},
        )

    def summary(self) -> str:
        """One line for CLI output: counts per detector plus fairness."""
        if not self.events and self.min_fairness is None:
            return f"healthy ({self.windows} windows, no anomalies)"
        parts = [f"{self.anomaly_count} anomalies in {self.windows} windows"]
        if self.detectors:
            parts.append(
                ", ".join(f"{name}={count}" for name, count in sorted(self.detectors.items()))
            )
        if self.min_fairness is not None:
            parts.append(f"min fairness {self.min_fairness:.3f}")
        return "; ".join(parts)


class HealthMonitor:
    """Online rolling-window anomaly detectors (see module docstring).

    Construct, then either :meth:`bind_engine` (live run — the controller
    does this) or :meth:`bind` + event feeding (offline replay, via
    :func:`replay_health`).  All thresholds are keyword-only so a
    monitor's configuration is always explicit at the call site.
    """

    __slots__ = (
        "window_ms", "view_storm_threshold", "straggler_lag",
        "backlog_windows", "backlog_min", "fanin_factor", "fanin_min",
        "fanin_alpha", "fairness_threshold", "starvation_wait_ms",
        "n", "windows", "events",
        "_decided_per_node", "_decides_in_window",
        "_views_in_window", "_views_entered", "_view_nodes",
        "_kind_in_window", "_kind_ewma", "_depths", "_counts",
        "_min_fairness", "_last_fairness",
        "_window_start", "_next_boundary",
        "_queue", "_workload", "_trace", "_message_event_type",
    )

    def __init__(
        self,
        window_ms: float = DEFAULT_WINDOW_MS,
        *,
        view_storm_threshold: int = 4,
        straggler_lag: int = 2,
        backlog_windows: int = 3,
        backlog_min: int = 8,
        fanin_factor: float = 4.0,
        fanin_min: int = 16,
        fanin_alpha: float = 0.25,
        fairness_threshold: float = 0.5,
        starvation_wait_ms: float | None = None,
    ) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be > 0, got {window_ms}")
        self.window_ms = float(window_ms)
        self.view_storm_threshold = view_storm_threshold
        self.straggler_lag = straggler_lag
        self.backlog_windows = backlog_windows
        self.backlog_min = backlog_min
        self.fanin_factor = fanin_factor
        self.fanin_min = fanin_min
        self.fanin_alpha = fanin_alpha
        self.fairness_threshold = fairness_threshold
        self.starvation_wait_ms = (
            float(starvation_wait_ms)
            if starvation_wait_ms is not None
            else 10.0 * self.window_ms
        )

        self.n = 0
        self.windows = 0
        self.events: list[HealthEvent] = []
        self._decided_per_node: list[int] = []
        self._decides_in_window = 0
        self._views_in_window = 0
        self._views_entered: set[int] = set()
        self._view_nodes: dict[int, int] = {}
        # defaultdict so the engine's fast-path binding (and on_deliver)
        # count with one C-level ``counts[kind] += 1``.
        self._kind_in_window: dict[str, int] = defaultdict(int)
        self._kind_ewma: dict[str, float] = {}
        self._depths: list[float] = []
        self._counts: dict[str, int] = {}
        self._min_fairness: float | None = None
        self._last_fairness = 1.0
        self._window_start = 0.0
        self._next_boundary = self.window_ms
        self._queue = None
        self._workload = None
        self._trace: "Trace | None" = None
        self._message_event_type: type | None = None

    # ------------------------------------------------------------------
    # binding

    def bind(self, n: int) -> None:
        """Allocate per-node state for an ``n``-replica run."""
        self.n = n
        self._decided_per_node = [0] * n

    def bind_engine(self, controller: "Controller") -> None:
        """Attach to a live controller: engine sampling + trace emission.

        When a :class:`~repro.observability.metrics.MetricsRegistry` is
        also active, registers ``health_anomalies`` and (on workload
        runs) ``workload_fairness`` gauges so anomaly and fairness
        series land in every metrics export, Prometheus included.
        """
        from ..core.events import MessageEvent

        self.bind(controller.n)
        self._queue = controller.queue
        self._workload = controller._workload
        self._trace = controller.trace
        self._message_event_type = MessageEvent
        registry = controller.obs_metrics
        if registry is not None:
            registry.gauge("health_anomalies", lambda: float(len(self.events)))
            if self._workload is not None:
                registry.gauge("workload_fairness", lambda: self._last_fairness)

    # ------------------------------------------------------------------
    # O(1) per-event hooks (controller dispatch loop)

    def on_deliver(self, dest: int, source: int, kind: str, now: float) -> None:
        # The live engine inlines this body via a fast-path binding to
        # ``_kind_in_window`` (see Controller.__init__); the hook itself
        # is the replay entry point and must stay equivalent.
        self._kind_in_window[kind] += 1

    def on_decide(self, node: int, now: float) -> None:
        self._decided_per_node[node] += 1
        self._decides_in_window += 1

    def on_view(self, node: int, view: int, now: float) -> None:
        self._views_in_window += 1
        self._views_entered.add(view)
        nodes = self._view_nodes
        nodes[node] = nodes.get(node, 0) + 1

    # ------------------------------------------------------------------
    # window lifecycle

    def advance(self, now: float) -> None:
        """Close every window boundary at or before ``now`` (live path)."""
        while now >= self._next_boundary:
            end = self._next_boundary
            self._sample_and_close(end)

    def finish(self, now: float) -> None:
        """End of run: flush boundaries, then close the final partial window."""
        self.advance(now)
        if now > self._window_start:
            self._sample_and_close(now)

    def _sample_and_close(self, end: float) -> None:
        sample = self._engine_sample(end)
        trace = self._trace
        if trace is not None and trace.enabled:
            trace.record(end, "health-sample", -1, **sample)
        self.close_window(end, sample)

    def _engine_sample(self, end: float) -> dict[str, Any]:
        """Read the engine state a raw trace cannot reconstruct."""
        queue = self._queue
        if queue is not None and self._message_event_type is not None:
            sample: dict[str, Any] = {
                "queue": queue.live_count(self._message_event_type)
            }
        else:
            sample = {"queue": 0}
        workload = self._workload
        if workload is not None:
            sample.update(workload.health_snapshot(end))
        return sample

    def close_window(self, end: float, sample: Mapping[str, Any]) -> None:
        """Evaluate every detector for the window ending at ``end``.

        The single entry point for both the live path (``sample`` freshly
        read from the engine) and offline replay (``sample`` parsed from
        the recorded ``health-sample`` event) — identical inputs through
        identical code is what makes online == offline a structural
        property rather than a testing aspiration.
        """
        start = self._window_start
        self.windows += 1
        self._check_view_storm(start, end)
        self._check_stragglers(start, end)
        self._check_backlog(start, end, sample)
        self._check_fanin(start, end)
        self._check_starvation(start, end, sample)
        self._decides_in_window = 0
        self._views_in_window = 0
        self._views_entered.clear()
        self._view_nodes.clear()
        self._kind_in_window.clear()
        self._window_start = end
        self._next_boundary = end + self.window_ms

    # ------------------------------------------------------------------
    # detectors (each runs once per window close)

    def _check_view_storm(self, start: float, end: float) -> None:
        distinct = len(self._views_entered)
        threshold = self.view_storm_threshold
        if distinct >= threshold and self._decides_in_window == 0:
            self._emit(
                end, "view-storm",
                "critical" if distinct >= 2 * threshold else "warn",
                start,
                nodes=tuple(sorted(self._view_nodes)),
                evidence={
                    "views": sorted(self._views_entered),
                    "entries": self._views_in_window,
                    "threshold": threshold,
                },
            )

    def _check_stragglers(self, start: float, end: float) -> None:
        decided = self._decided_per_node
        if not decided:
            return
        top = max(decided)
        if top == 0:
            return
        lag = self.straggler_lag
        lagging = tuple(
            node for node, count in enumerate(decided) if top - count >= lag
        )
        if lagging:
            worst = top - min(decided)
            self._emit(
                end, "straggler",
                "critical" if worst >= 2 * lag else "warn",
                start,
                nodes=lagging,
                evidence={"fleet_max": top, "max_lag": worst, "threshold": lag},
            )

    def _check_backlog(
        self, start: float, end: float, sample: Mapping[str, Any]
    ) -> None:
        depth = float(sample.get("queue") or 0) + float(sample.get("mempool") or 0)
        depths = self._depths
        depths.append(depth)
        if len(depths) > self.backlog_windows + 1:
            del depths[0]
        if (
            len(depths) == self.backlog_windows + 1
            and depths[-1] >= self.backlog_min
            and all(a < b for a, b in zip(depths, depths[1:]))
        ):
            self._emit(
                end, "backlog",
                "critical" if depths[-1] >= 4 * self.backlog_min else "warn",
                start,
                evidence={
                    "depths": list(depths),
                    "queue": int(sample.get("queue") or 0),
                    "mempool": int(sample.get("mempool") or 0),
                },
            )

    def _check_fanin(self, start: float, end: float) -> None:
        window = self._kind_in_window
        ewma = self._kind_ewma
        factor = self.fanin_factor
        alpha = self.fanin_alpha
        for kind in sorted(set(ewma) | set(window)):
            count = window.get(kind, 0)
            baseline = ewma.get(kind)
            # A baseline below fanin_min / factor is not yet established —
            # typically seeded from a near-empty warm-up window before the
            # first deliveries land — and would flag steady-state traffic
            # as a spike.  Keep folding such windows into the EWMA but do
            # not compare against them.
            if (
                baseline is not None
                and baseline * factor >= self.fanin_min
                and count >= self.fanin_min
                and count > factor * baseline
            ):
                self._emit(
                    end, "fanin-spike",
                    "critical" if count > 2 * factor * baseline else "warn",
                    start,
                    evidence={
                        "msg_type": kind, "count": count, "baseline": baseline,
                        "factor": factor,
                    },
                )
            ewma[kind] = (
                float(count)
                if baseline is None
                else alpha * count + (1.0 - alpha) * baseline
            )

    def _check_starvation(
        self, start: float, end: float, sample: Mapping[str, Any]
    ) -> None:
        fairness = sample.get("fairness")
        if fairness is None:
            return
        fairness = float(fairness)
        self._last_fairness = fairness
        if self._min_fairness is None or fairness < self._min_fairness:
            self._min_fairness = fairness
        decided = int(sample.get("decided") or 0)
        if decided > 0 and fairness < self.fairness_threshold:
            self._emit(
                end, "starvation",
                "critical" if fairness < self.fairness_threshold / 2 else "warn",
                start,
                clients=tuple(int(c) for c in sample.get("lagging") or ()),
                evidence={
                    "fairness": fairness, "decided": decided,
                    "threshold": self.fairness_threshold,
                },
            )
        max_wait = float(sample.get("max_wait") or 0.0)
        if max_wait >= self.starvation_wait_ms:
            wait_client = sample.get("wait_client")
            self._emit(
                end, "starvation",
                "critical" if max_wait >= 2 * self.starvation_wait_ms else "warn",
                start,
                clients=(int(wait_client),) if wait_client is not None else (),
                evidence={
                    "max_wait_ms": max_wait,
                    "threshold_ms": self.starvation_wait_ms,
                },
            )

    def _emit(
        self,
        time: float,
        detector: str,
        severity: str,
        window_start: float,
        *,
        nodes: tuple[int, ...] = (),
        clients: tuple[int, ...] = (),
        evidence: dict[str, Any] | None = None,
    ) -> None:
        event = HealthEvent(
            time=time,
            detector=detector,
            severity=severity,
            window_start=window_start,
            window_end=time,
            nodes=nodes,
            clients=clients,
            evidence=evidence or {},
        )
        self.events.append(event)
        self._counts[detector] = self._counts.get(detector, 0) + 1
        trace = self._trace
        if trace is not None and trace.enabled:
            trace.record(
                time, "health", nodes[0] if nodes else -1,
                detector=detector, severity=severity,
                window_start=window_start,
                nodes=list(nodes), clients=list(clients),
                evidence=evidence or {},
            )

    # ------------------------------------------------------------------
    # results

    def report(self) -> HealthReport:
        return HealthReport(
            window_ms=self.window_ms,
            windows=self.windows,
            events=list(self.events),
            anomaly_count=len(self.events),
            min_fairness=self._min_fairness,
            detectors=dict(sorted(self._counts.items())),
        )

    def state_dict(self) -> dict[str, Any]:
        """Full detector state, for the online == offline property suite."""
        return {
            "window_start": self._window_start,
            "next_boundary": self._next_boundary,
            "windows": self.windows,
            "decided_per_node": list(self._decided_per_node),
            "decides_in_window": self._decides_in_window,
            "views_in_window": self._views_in_window,
            "views_entered": sorted(self._views_entered),
            "view_nodes": dict(self._view_nodes),
            "kind_in_window": dict(self._kind_in_window),
            "kind_ewma": dict(self._kind_ewma),
            "depths": list(self._depths),
            "min_fairness": self._min_fairness,
            "events": [event.to_dict() for event in self.events],
        }


def _sample_fields(event: Mapping[str, Any]) -> dict[str, Any]:
    """The engine-state payload of a recorded ``health-sample`` event."""
    return {key: event[key] for key in SAMPLE_KEYS if key in event}


def replay_health(
    source: "str | os.PathLike[str] | Trace | Iterable[Mapping[str, Any]]",
    n: int,
    **kwargs: Any,
) -> HealthMonitor:
    """Rebuild a :class:`HealthMonitor` from a finished trace.

    Hook counters replay from the raw ``deliver``/``decide``/``view``
    events; windows close from the recorded ``health-sample`` events
    (see module docstring).  Pass the same ``n`` and threshold kwargs as
    the online monitor to get byte-identical detector state.  A trace
    recorded *without* health enabled has no samples, so no windows
    close — replay is only meaningful against health-enabled traces.
    """
    from .inspect import iter_events

    monitor = HealthMonitor(**kwargs)
    monitor.bind(n)
    for event in iter_events(source):
        kind = event.get("kind")
        if kind == "health-sample":
            monitor.close_window(float(event["time"]), _sample_fields(event))
        elif kind == "deliver":
            monitor.on_deliver(
                int(event.get("node", -1)),
                int(event.get("source", -1)),
                str(event.get("msg_type", "")),
                float(event["time"]),
            )
        elif kind == "decide":
            node = int(event.get("node", -1))
            if 0 <= node < monitor.n:
                monitor.on_decide(node, float(event["time"]))
        elif kind == "view" and "view" in event:
            monitor.on_view(
                int(event.get("node", -1)),
                int(event["view"]),
                float(event["time"]),
            )
    return monitor


def analyze_trace_health(
    source: "str | os.PathLike[str] | Trace | Iterable[Mapping[str, Any]]",
) -> dict[str, Any]:
    """Health census of a recorded trace: what the online monitor saw.

    One streaming pass collecting the recorded ``health`` detections and
    ``health-sample`` fairness series — the analysis behind ``repro
    inspect --health``.  Unlike :func:`replay_health` this never
    re-evaluates detectors: it reports exactly what the run emitted.
    """
    from .inspect import iter_events

    detectors: dict[str, int] = {}
    severities: dict[str, int] = {}
    anomalies: list[dict[str, Any]] = []
    samples = 0
    min_fairness: float | None = None
    last_fairness: float | None = None
    for event in iter_events(source):
        kind = event.get("kind")
        if kind == "health-sample":
            samples += 1
            fairness = event.get("fairness")
            if fairness is not None:
                last_fairness = float(fairness)
                if min_fairness is None or last_fairness < min_fairness:
                    min_fairness = last_fairness
        elif kind == "health":
            anomalies.append(dict(event))
            detector = str(event.get("detector", "?"))
            detectors[detector] = detectors.get(detector, 0) + 1
            severity = str(event.get("severity", "?"))
            severities[severity] = severities.get(severity, 0) + 1
    return {
        "samples": samples,
        "anomaly_count": len(anomalies),
        "detectors": dict(sorted(detectors.items())),
        "severities": dict(sorted(severities.items())),
        "min_fairness": min_fairness,
        "last_fairness": last_fairness,
        "anomalies": anomalies,
    }


def _evidence_text(evidence: Mapping[str, Any]) -> str:
    parts = []
    for key in sorted(evidence):
        value = evidence[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.1f}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def render_health(analysis: Mapping[str, Any], top: int = 20) -> str:
    """Human-readable health timeline + census for ``repro inspect``."""
    from ..analysis.report import render_table

    sections: list[str] = []
    anomalies = analysis.get("anomalies") or []
    summary = (
        f"health: {analysis.get('anomaly_count', 0)} anomalies over "
        f"{analysis.get('samples', 0)} window samples"
    )
    min_fairness = analysis.get("min_fairness")
    if min_fairness is not None:
        summary += f"; min fairness {min_fairness:.3f}"
    if not anomalies and not analysis.get("samples"):
        summary += " (no health telemetry recorded — run with --health)"
    sections.append(summary)

    if analysis.get("detectors"):
        rows = [
            (detector, count)
            for detector, count in sorted(analysis["detectors"].items())
        ]
        sections.append(
            render_table("anomaly census", ["detector", "count"], rows)
        )

    if anomalies:
        rows = []
        for event in anomalies[:top]:
            evidence = event.get("evidence") or {}
            who = ""
            if event.get("nodes"):
                who = "n" + ",".join(str(n) for n in event["nodes"])
            if event.get("clients"):
                who += (" " if who else "") + "c" + ",".join(
                    str(c) for c in event["clients"]
                )
            rows.append(
                (
                    f"{float(event.get('time', 0.0)):.1f}",
                    str(event.get("detector", "?")),
                    str(event.get("severity", "?")),
                    who or "—",
                    _evidence_text(evidence),
                )
            )
        note = ""
        if len(anomalies) > top:
            note = f"showing first {top} of {len(anomalies)} anomalies"
        sections.append(
            render_table(
                "anomaly timeline",
                ["time (ms)", "detector", "severity", "implicated", "evidence"],
                rows,
                note=note,
            )
        )
    return "\n\n".join(sections)
