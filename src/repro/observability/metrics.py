"""Simulated-time metrics: counters, gauges, histograms on the sim clock.

The registry is the third telemetry pillar next to trace sinks and the
hot-path profiler: where the profiler measures *host* time, the registry
measures the run itself on the **simulated** clock — queue depth, in-flight
messages, per-node wire bytes, delivery latency — sampled into a timeseries
at fixed simulated-time intervals.

Like every telemetry facility here, the registry is a *run argument*, never
part of the experiment's identity: it is passed to
:func:`repro.core.runner.run_simulation` (``metrics=True`` or an interval in
ms), consumes no randomness, schedules no events (sampling happens lazily
inside the dispatch loop as event timestamps cross interval boundaries), and
leaves ``result_fingerprint`` byte-identical.

The output object, :class:`RunMetrics`, follows the ``RunProfile`` contract:
frozen, picklable (it crosses worker pipes), mergeable across a
:class:`~repro.parallel.engine.ParallelRunner` fleet, and exportable as
JSONL, CSV, and a Prometheus-style text snapshot.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..core.controller import Controller

#: Default sampling interval (simulated ms) when ``metrics=True`` is passed.
DEFAULT_INTERVAL_MS: float = 100.0

#: Default delivery-latency histogram buckets (upper bounds, ms).
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
)


def _escape_label_value(value: Any) -> str:
    """Prometheus exposition-format label escaping (backslash, quote, LF)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def series_name(name: str, labels: dict[str, Any]) -> str:
    """Canonical series key: ``name`` or ``name{k="v",...}`` (sorted keys)."""
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{_escape_label_value(labels[key])}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing value (hot-path friendly: bare float)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """A fixed-bucket distribution (``le`` upper-bound semantics).

    ``bounds`` must be ascending; an implicit ``+Inf`` bucket catches the
    overflow.  ``observe`` is O(log buckets) via bisect.
    """

    __slots__ = ("bounds", "bucket_counts", "total", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds) or len(set(self.bounds)) != len(self.bounds):
            raise ValueError(f"histogram bounds must be strictly ascending: {bounds}")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1


@dataclass(frozen=True)
class HistogramData:
    """Frozen snapshot of a :class:`Histogram` (picklable, mergeable)."""

    bounds: tuple[float, ...]
    bucket_counts: tuple[int, ...]
    total: float
    count: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "total": self.total,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "HistogramData":
        return cls(
            bounds=tuple(data["bounds"]),
            bucket_counts=tuple(data["bucket_counts"]),
            total=float(data["total"]),
            count=int(data["count"]),
        )


class MetricsRegistry:
    """Registry of simulated-time instruments for one run.

    Instruments are registered by name (plus optional labels); re-registering
    an existing series returns the same instrument.  The engine binds its
    standard instruments through :meth:`bind_engine`; protocols and harnesses
    may add their own.

    Sampling: the controller calls :meth:`advance` with each dispatched
    event's timestamp; whenever the timestamp crosses one or more interval
    boundaries, every counter and gauge is appended to the timeseries at the
    boundary time (the recorded value is the state as of the last event at
    or before the boundary — no events are scheduled, nothing perturbs the
    run).  Histograms are kept as end-of-run distributions, not sampled.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL_MS) -> None:
        if interval <= 0:
            raise ValueError(f"metrics interval must be > 0 ms, got {interval}")
        self.interval = float(interval)
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Callable[[], float]] = {}
        self._histograms: dict[str, Histogram] = {}
        #: base metric name -> instrument type, for the Prometheus exporter.
        self._families: dict[str, str] = {}
        self._samples: list[tuple[float, str, float]] = []
        self._next_sample = self.interval
        # Engine fast-path bindings (None until bind_engine).
        self._sent: Counter | None = None
        self._delivered: Counter | None = None
        self._decisions: Counter | None = None
        self._bytes_total: Counter | None = None
        self._node_bytes: list[Counter] = []
        self._latency: Histogram | None = None

    # -- instrument registration ---------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        series = series_name(name, labels)
        instrument = self._counters.get(series)
        if instrument is None:
            instrument = self._counters[series] = Counter()
            self._families.setdefault(name, "counter")
        return instrument

    def gauge(self, name: str, callback: Callable[[], float], **labels: Any) -> None:
        """Register a sampled-on-read instrument (e.g. queue depth)."""
        self._gauges[series_name(name, labels)] = callback
        self._families.setdefault(name, "gauge")

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        **labels: Any,
    ) -> Histogram:
        series = series_name(name, labels)
        instrument = self._histograms.get(series)
        if instrument is None:
            instrument = self._histograms[series] = Histogram(bounds)
            self._families.setdefault(name, "histogram")
        return instrument

    # -- engine binding and hot-path hooks ------------------------------

    def bind_engine(self, controller: "Controller") -> None:
        """Register the standard engine instruments against ``controller``."""
        from ..core.events import MessageEvent

        queue = controller.queue
        self.gauge("queue_depth", lambda: float(len(queue)))
        self.gauge(
            "in_flight_messages",
            lambda: float(queue.live_count(MessageEvent)),
        )
        self._sent = self.counter("messages_sent")
        self._delivered = self.counter("messages_delivered")
        self._decisions = self.counter("decisions")
        self._bytes_total = self.counter("wire_bytes")
        self._node_bytes = [
            self.counter("node_wire_bytes", node=i) for i in range(controller.n)
        ]
        self._latency = self.histogram("delivery_latency_ms")

    def on_send(self, node: int, wire_bytes: int) -> None:
        """Network hook: one wire transmission attributed to ``node``."""
        self._sent.value += 1
        self._bytes_total.value += wire_bytes
        node_bytes = self._node_bytes
        if 0 <= node < len(node_bytes):
            node_bytes[node].value += wire_bytes

    def on_deliver(self, latency_ms: float) -> None:
        """Controller hook: one delivery with the given transit latency."""
        self._delivered.value += 1
        self._latency.observe(latency_ms)

    def on_decide(self) -> None:
        self._decisions.value += 1

    # -- sampling -------------------------------------------------------

    def advance(self, now: float) -> None:
        """Sample at every interval boundary crossed up to ``now``.

        Called once per dispatched event; costs one comparison when no
        boundary was crossed.
        """
        while now >= self._next_sample:
            self._take_sample(self._next_sample)
            self._next_sample += self.interval

    def finish(self, now: float) -> None:
        """Flush boundaries up to ``now`` and take a final end-of-run sample."""
        self.advance(now)
        if not self._samples or self._samples[-1][0] < now:
            self._take_sample(now)

    def _take_sample(self, at: float) -> None:
        samples = self._samples
        for series, counter in self._counters.items():
            samples.append((at, series, counter.value))
        for series, callback in self._gauges.items():
            samples.append((at, series, float(callback())))

    # -- result construction --------------------------------------------

    def build(self, sim_time_ms: float, runs: int = 1) -> "RunMetrics":
        """Freeze the registry into a picklable :class:`RunMetrics`."""
        return RunMetrics(
            interval_ms=self.interval,
            sim_time_ms=float(sim_time_ms),
            runs=runs,
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: float(fn()) for k, fn in self._gauges.items()},
            histograms={
                k: HistogramData(
                    bounds=h.bounds,
                    bucket_counts=tuple(h.bucket_counts),
                    total=h.total,
                    count=h.count,
                )
                for k, h in self._histograms.items()
            },
            samples=tuple(self._samples),
            families=dict(self._families),
        )


def _base_name(series: str) -> str:
    return series.partition("{")[0]


def _with_label(series: str, key: str, value: str) -> str:
    """``series`` with one more label (Prometheus rendering helper)."""
    escaped = _escape_label_value(value)
    base, brace, rest = series.partition("{")
    if not brace:
        return f'{base}{{{key}="{escaped}"}}'
    return f'{base}{{{rest[:-1]},{key}="{escaped}"}}'


@dataclass(frozen=True)
class RunMetrics:
    """Frozen metrics output of one run (or a merged fleet).

    Attributes:
        interval_ms: the sampling interval.
        sim_time_ms: simulated end time (max across merged runs).
        runs: how many runs were merged into this object.
        counters: series -> final cumulative value.
        gauges: series -> final sampled value.
        histograms: series -> end-of-run :class:`HistogramData`.
        samples: the timeseries, as ``(time_ms, series, value)`` tuples in
            sampling order.
        families: base metric name -> instrument type (for exporters).
    """

    interval_ms: float
    sim_time_ms: float
    runs: int
    counters: dict[str, float]
    gauges: dict[str, float]
    histograms: dict[str, HistogramData]
    samples: tuple[tuple[float, str, float], ...]
    families: dict[str, str]

    @classmethod
    def merge(cls, metrics: Iterable["RunMetrics"]) -> "RunMetrics":
        """Combine per-run metrics into fleet totals.

        Counters, gauges, and histogram buckets sum per series; timeseries
        samples sum per ``(time, series)`` point (a point present in only
        some runs — runs end at different simulated times — sums what is
        there).  All inputs must share the sampling interval.
        """
        items = list(metrics)
        if not items:
            raise ValueError("RunMetrics.merge needs at least one input")
        intervals = {m.interval_ms for m in items}
        if len(intervals) != 1:
            raise ValueError(
                f"cannot merge metrics with differing intervals: {sorted(intervals)}"
            )
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, HistogramData] = {}
        families: dict[str, str] = {}
        points: dict[tuple[float, str], float] = {}
        for m in items:
            families.update(m.families)
            for series, value in m.counters.items():
                counters[series] = counters.get(series, 0.0) + value
            for series, value in m.gauges.items():
                gauges[series] = gauges.get(series, 0.0) + value
            for series, data in m.histograms.items():
                existing = histograms.get(series)
                if existing is None:
                    histograms[series] = data
                else:
                    if existing.bounds != data.bounds:
                        raise ValueError(
                            f"histogram {series!r} has mismatched bounds across runs"
                        )
                    histograms[series] = HistogramData(
                        bounds=existing.bounds,
                        bucket_counts=tuple(
                            a + b
                            for a, b in zip(existing.bucket_counts, data.bucket_counts)
                        ),
                        total=existing.total + data.total,
                        count=existing.count + data.count,
                    )
            for time, series, value in m.samples:
                key = (time, series)
                points[key] = points.get(key, 0.0) + value
        samples = tuple(
            (time, series, value)
            for (time, series), value in sorted(points.items())
        )
        return cls(
            interval_ms=items[0].interval_ms,
            sim_time_ms=max(m.sim_time_ms for m in items),
            runs=sum(m.runs for m in items),
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            samples=samples,
            families=families,
        )

    # -- exporters ------------------------------------------------------

    def to_jsonl(self) -> str:
        """The timeseries as JSONL: one ``{time, metric, value}`` per line."""
        import json

        return "\n".join(
            json.dumps({"time": time, "metric": series, "value": value})
            for time, series, value in self.samples
        )

    def to_csv(self) -> str:
        """The timeseries as CSV (``time,metric,value`` header included)."""
        lines = ["time,metric,value"]
        for time, series, value in self.samples:
            name = f'"{series}"' if "," in series else series
            lines.append(f"{time:g},{name},{value:g}")
        return "\n".join(lines)

    def prometheus_text(self) -> str:
        """Final values as a Prometheus text-format snapshot.

        Metric names are prefixed ``repro_``; histogram series expand into
        the conventional cumulative ``_bucket``/``_sum``/``_count`` lines.
        Times are simulated ms, so this is a *snapshot* format for diffing
        and dashboards, not a live scrape target.
        """
        lines: list[str] = []
        seen_families: set[str] = set()

        def header(series: str, kind: str) -> None:
            base = _base_name(series)
            if base in seen_families:
                return
            seen_families.add(base)
            lines.append(f"# HELP repro_{base} simulated-time {kind}")
            lines.append(f"# TYPE repro_{base} {kind}")

        for series in sorted(self.counters):
            header(series, "counter")
            lines.append(f"repro_{series} {self.counters[series]:g}")
        for series in sorted(self.gauges):
            header(series, "gauge")
            lines.append(f"repro_{series} {self.gauges[series]:g}")
        for series in sorted(self.histograms):
            header(series, "histogram")
            data = self.histograms[series]
            base, brace, rest = series.partition("{")
            bucket = f"{base}_bucket" + (f"{{{rest}" if brace else "")
            suffix = f"{{{rest}" if brace else ""
            cumulative = 0
            for bound, count in zip(data.bounds, data.bucket_counts):
                cumulative += count
                lines.append(
                    f"repro_{_with_label(bucket, 'le', f'{bound:g}')} {cumulative}"
                )
            lines.append(
                f"repro_{_with_label(bucket, 'le', '+Inf')} {data.count}"
            )
            lines.append(f"repro_{base}_sum{suffix} {data.total:g}")
            lines.append(f"repro_{base}_count{suffix} {data.count}")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (``repro run --metrics-out``)."""
        return {
            "interval_ms": self.interval_ms,
            "sim_time_ms": self.sim_time_ms,
            "runs": self.runs,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                series: data.to_dict()
                for series, data in sorted(self.histograms.items())
            },
            "samples": [list(sample) for sample in self.samples],
            "families": dict(sorted(self.families.items())),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunMetrics":
        return cls(
            interval_ms=float(data["interval_ms"]),
            sim_time_ms=float(data["sim_time_ms"]),
            runs=int(data.get("runs", 1)),
            counters={k: float(v) for k, v in data.get("counters", {}).items()},
            gauges={k: float(v) for k, v in data.get("gauges", {}).items()},
            histograms={
                k: HistogramData.from_dict(v)
                for k, v in data.get("histograms", {}).items()
            },
            samples=tuple(
                (float(t), str(s), float(v)) for t, s, v in data.get("samples", [])
            ),
            families={k: str(v) for k, v in data.get("families", {}).items()},
        )

    # -- human-readable -------------------------------------------------

    def summary(self) -> str:
        series = len(self.counters) + len(self.gauges) + len(self.histograms)
        return (
            f"metrics: {series} series, {len(self.samples)} samples over "
            f"{self.sim_time_ms:.1f}ms simulated "
            f"(interval {self.interval_ms:g}ms, {self.runs} run"
            f"{'s' if self.runs != 1 else ''})"
        )

    def format_table(self, top: int = 20) -> str:
        """Final counter/gauge values and histogram stats as text tables."""
        from ..analysis.report import render_table

        sections = [self.summary()]
        final = [("counter", s, v) for s, v in sorted(self.counters.items())]
        final += [("gauge", s, v) for s, v in sorted(self.gauges.items())]
        rows = [(kind, series, f"{value:g}") for kind, series, value in final[:top]]
        note = None
        if len(final) > top:
            note = f"+{len(final) - top} more series"
        sections.append(render_table(
            "final metric values", ["type", "series", "value"], rows, note=note,
        ))
        if self.histograms:
            hist_rows = []
            for series, data in sorted(self.histograms.items()):
                mean = data.total / data.count if data.count else 0.0
                hist_rows.append(
                    (series, data.count, f"{mean:.2f}", f"{data.total:.1f}")
                )
            sections.append(render_table(
                "histograms (end of run)",
                ["series", "count", "mean", "sum"],
                hist_rows[:top],
            ))
        return "\n\n".join(sections)
