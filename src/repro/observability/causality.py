"""Causality analysis: critical paths and quorum-formation timelines.

With causal lineage on (the default), every message and timer carries the
``cause`` id of the event being handled when it was created, and the trace
records those ids on ``send``/``deliver``/``timer``/``decide`` events.  That
turns a trace into a **causality DAG** whose edges point from each event to
the one that caused it:

* ``"m<msg_id>"`` — a message delivery (walk to its ``deliver`` and, for
  non-loopback messages, its ``send``);
* ``"t<timer_id>"`` — a timer firing (walk to its ``timer`` record, then to
  whatever registered the timer);
* ``"s<node>"`` — the node's ``on_start`` (a root);
* ``"a"`` — the attacker's ``setup`` (a root).

Two analyses are built on the DAG:

* :func:`critical_path` — per decision, the causal chain from a root
  (usually the leader's proposal at ``on_start``) through every send,
  delivery, and timer to the decision.  This is *the* sequence of
  happened-before events whose latencies sum to the decision's latency:
  shaving any off-path message changes nothing, shaving an on-path hop
  moves the decision.
* :func:`quorum_timeline` — per decision, when each vote of the
  quorum-closing message type arrived at the deciding node: the rank ``k``
  of the arrival that closed the quorum, which node was the quorum-closing
  straggler, and how many votes arrived after the quorum was already
  complete (wasted messages, the price of broadcast-based protocols).

Both consume the same sources as :func:`~repro.observability.inspect.analyze_trace`
(a JSONL file path, a :class:`~repro.core.tracing.Trace`, or raw event
dicts) but build index maps keyed by message/timer id, so memory grows with
the trace — use on per-run forensics, not unbounded streams.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..core.tracing import Trace
from .inspect import iter_events


@dataclass(frozen=True)
class SendRecord:
    msg_id: int
    time: float
    source: int
    dest: int
    msg_type: str
    cause: str | None
    slot: Any
    view: Any
    origin: str | None


@dataclass(frozen=True)
class DeliverRecord:
    msg_id: int
    time: float
    source: int
    dest: int
    msg_type: str
    cause: str | None
    slot: Any
    view: Any


@dataclass(frozen=True)
class TimerRecord:
    timer_id: int
    time: float
    owner: int
    name: str
    cause: str | None


@dataclass(frozen=True)
class DecisionRecord:
    time: float
    node: int
    slot: Any
    value: Any
    cause: str | None


@dataclass
class CausalityGraph:
    """Index maps over one trace, keyed by message/timer id."""

    sends: dict[int, SendRecord]
    delivers: dict[int, DeliverRecord]
    timers: dict[int, TimerRecord]
    decisions: list[DecisionRecord]

    @classmethod
    def build(
        cls,
        source: str | os.PathLike[str] | Trace | Iterable[Mapping[str, Any]],
    ) -> "CausalityGraph":
        """One pass over ``source`` building the id-keyed index maps."""
        sends: dict[int, SendRecord] = {}
        delivers: dict[int, DeliverRecord] = {}
        timers: dict[int, TimerRecord] = {}
        decisions: list[DecisionRecord] = []
        for event in iter_events(source):
            kind = event.get("kind")
            if kind == "send":
                msg_id = int(event["msg_id"])
                sends[msg_id] = SendRecord(
                    msg_id=msg_id,
                    time=float(event["time"]),
                    source=int(event.get("node", -1)),
                    dest=int(event.get("dest", -1)),
                    msg_type=str(event.get("msg_type", "?")),
                    cause=event.get("cause"),
                    slot=event.get("slot"),
                    view=event.get("view"),
                    origin=event.get("origin"),
                )
            elif kind == "deliver":
                msg_id = int(event["msg_id"])
                delivers[msg_id] = DeliverRecord(
                    msg_id=msg_id,
                    time=float(event["time"]),
                    source=int(event.get("source", -1)),
                    dest=int(event.get("node", -1)),
                    msg_type=str(event.get("msg_type", "?")),
                    cause=event.get("cause"),
                    slot=event.get("slot"),
                    view=event.get("view"),
                )
            elif kind == "timer":
                timer_id = int(event.get("timer_id", -1))
                if timer_id >= 0:
                    timers[timer_id] = TimerRecord(
                        timer_id=timer_id,
                        time=float(event["time"]),
                        owner=int(event.get("node", -1)),
                        name=str(event.get("name", "?")),
                        cause=event.get("cause"),
                    )
            elif kind == "decide":
                decisions.append(DecisionRecord(
                    time=float(event["time"]),
                    node=int(event.get("node", -1)),
                    slot=event.get("slot"),
                    value=event.get("value"),
                    cause=event.get("cause"),
                ))
        return cls(sends=sends, delivers=delivers, timers=timers, decisions=decisions)

    @property
    def has_lineage(self) -> bool:
        """True when at least one record carries a cause id (lineage was on)."""
        return any(d.cause is not None for d in self.decisions) or any(
            s.cause is not None for s in self.sends.values()
        )


@dataclass(frozen=True)
class PathStep:
    """One hop of a critical path, in chronological order."""

    time: float
    kind: str  # "start" | "timer" | "send" | "deliver" | "decide"
    node: int
    label: str


@dataclass(frozen=True)
class CriticalPath:
    """The causal chain from a root event to one decision.

    ``complete`` is True when the backwards walk reached a root (a node's
    ``on_start``, the attacker's setup, or a pre-run scheduled event);
    False means a link was missing — typically lineage was off, or the
    trace was filtered.
    """

    decision: DecisionRecord
    steps: tuple[PathStep, ...]
    complete: bool

    @property
    def duration_ms(self) -> float:
        return self.steps[-1].time - self.steps[0].time

    @property
    def hops(self) -> int:
        """Network hops on the path (its ``send`` steps)."""
        return sum(1 for step in self.steps if step.kind == "send")

    def to_dict(self) -> dict:
        """JSON-friendly form (``repro inspect --critical-path --json``)."""
        return {
            "decision": {
                "node": self.decision.node,
                "slot": self.decision.slot,
                "time_ms": self.decision.time,
            },
            "complete": self.complete,
            "duration_ms": self.duration_ms,
            "hops": self.hops,
            "steps": [
                {
                    "time_ms": step.time,
                    "kind": step.kind,
                    "node": step.node,
                    "label": step.label,
                }
                for step in self.steps
            ],
        }

    def render(self) -> str:
        header = (
            f"decision: node {self.decision.node} slot {self.decision.slot} "
            f"at {self.decision.time:.1f}ms — {len(self.steps)} steps, "
            f"{self.hops} network hops, {self.duration_ms:.1f}ms end to end"
        )
        if not self.complete:
            header += "  [incomplete: causal chain broken — was lineage enabled?]"
        lines = [header]
        for step in self.steps:
            lines.append(
                f"  {step.time:10.3f}ms  {step.kind:<8} node={step.node:<4} {step.label}"
            )
        return "\n".join(lines)


def critical_path(graph: CausalityGraph, decision: DecisionRecord) -> CriticalPath:
    """Walk the causality DAG backwards from ``decision`` to a root.

    The resulting step sequence is chronological, starts at the root, ends
    at the decision, and is non-decreasing in time (asserted by the
    observability test suite for the golden PBFT configuration).
    """
    backwards: list[PathStep] = [PathStep(
        time=decision.time,
        kind="decide",
        node=decision.node,
        label=f"slot={decision.slot} value={decision.value!r}",
    )]
    cause = decision.cause
    complete = False
    seen: set[str] = set()
    while True:
        if cause is None:
            # Reached an event created before dispatch began (a pre-run
            # root) — or lineage was off, in which case the decision's own
            # cause was already None and the path is just the decision.
            complete = len(backwards) > 1
            break
        if cause in seen:  # defensive: lineage cannot cycle, ids move back in time
            break
        seen.add(cause)
        tag, body = cause[0], cause[1:]
        if cause == "a":
            backwards.append(PathStep(0.0, "start", -1, "attacker setup"))
            complete = True
            break
        if tag == "m":
            msg_id = int(body)
            deliver = graph.delivers.get(msg_id)
            send = graph.sends.get(msg_id)
            if deliver is not None:
                backwards.append(PathStep(
                    deliver.time, "deliver", deliver.dest,
                    f"{deliver.msg_type} from node {deliver.source}",
                ))
            if send is not None:
                backwards.append(PathStep(
                    send.time, "send", send.source,
                    f"{send.msg_type} -> node {send.dest}"
                    + (" [forged]" if send.origin == "attacker" else ""),
                ))
                cause = send.cause
            elif deliver is not None:
                # Loopback self-delivery: no send record exists, but the
                # deliver record carries the message's own cause.
                cause = deliver.cause
            else:
                break  # dangling id: filtered trace
        elif tag == "t":
            timer = graph.timers.get(int(body))
            if timer is None:
                break
            backwards.append(PathStep(
                timer.time, "timer", timer.owner, f"timer {timer.name!r} fired",
            ))
            cause = timer.cause
        elif tag == "s":
            backwards.append(PathStep(0.0, "start", int(body), "on_start"))
            complete = True
            break
        else:
            break
    return CriticalPath(
        decision=decision,
        steps=tuple(reversed(backwards)),
        complete=complete,
    )


@dataclass(frozen=True)
class QuorumTimeline:
    """How the quorum behind one decision formed at the deciding node.

    ``arrivals`` is every delivery of the quorum-closing message type for
    the decided slot to the deciding node, over the whole run — including
    votes that arrived after the quorum had already closed.

    Attributes:
        decision: the decision this quorum produced.
        msg_type: the vote type whose delivery closed the quorum.
        quorum_size: the rank ``k`` of the arrival that triggered the
            decision (the effective quorum size observed).
        closed_at: arrival time of that ``k``-th vote.
        straggler: source node of the quorum-closing (``k``-th) arrival —
            the slowest node the quorum had to wait for.
        arrivals: all matching arrivals as ``(time, source, msg_id)``.
    """

    decision: DecisionRecord
    msg_type: str
    quorum_size: int
    closed_at: float
    straggler: int
    arrivals: tuple[tuple[float, int, int], ...]

    @property
    def wasted(self) -> int:
        """Votes that arrived after the quorum was already complete."""
        return len(self.arrivals) - self.quorum_size

    @property
    def first_arrival(self) -> float:
        return self.arrivals[0][0]

    @property
    def formation_ms(self) -> float:
        """Time from the first vote's arrival to quorum completion."""
        return self.closed_at - self.first_arrival

    def to_dict(self) -> dict:
        """JSON-friendly form (``repro inspect --quorum --json``)."""
        return {
            "decision": {
                "node": self.decision.node,
                "slot": self.decision.slot,
                "time_ms": self.decision.time,
            },
            "msg_type": self.msg_type,
            "quorum_size": self.quorum_size,
            "closed_at_ms": self.closed_at,
            "straggler": self.straggler,
            "formation_ms": self.formation_ms,
            "wasted": self.wasted,
            "arrivals": [
                {"time_ms": time, "source": source, "msg_id": msg_id}
                for time, source, msg_id in self.arrivals
            ],
        }

    def render(self) -> str:
        lines = [
            f"decision: node {self.decision.node} slot {self.decision.slot} "
            f"at {self.decision.time:.1f}ms — quorum of {self.quorum_size} "
            f"{self.msg_type} closed at {self.closed_at:.1f}ms "
            f"(straggler: node {self.straggler}, formation "
            f"{self.formation_ms:.1f}ms, wasted post-quorum: {self.wasted})"
        ]
        for rank, (time, source, _msg_id) in enumerate(self.arrivals, start=1):
            marker = " <- quorum closed" if rank == self.quorum_size else (
                "    (post-quorum)" if rank > self.quorum_size else ""
            )
            lines.append(
                f"  #{rank:<3} {time:10.3f}ms  {self.msg_type} from node {source}{marker}"
            )
        return "\n".join(lines)


def quorum_timeline(
    graph: CausalityGraph, decision: DecisionRecord
) -> QuorumTimeline | None:
    """The quorum-formation timeline behind ``decision``.

    Returns ``None`` when the decision was not directly caused by a message
    delivery (e.g. a catch-up decision triggered by a timer) or the trace
    carries no lineage.
    """
    cause = decision.cause
    if not cause or cause[0] != "m":
        return None
    msg_id = int(cause[1:])
    trigger = graph.delivers.get(msg_id)
    if trigger is None:
        return None
    arrivals = sorted(
        (record.time, record.source, record.msg_id)
        for record in graph.delivers.values()
        if record.dest == decision.node
        and record.msg_type == trigger.msg_type
        and record.slot == trigger.slot
    )
    rank = next(
        index
        for index, (_time, _source, arrival_id) in enumerate(arrivals, start=1)
        if arrival_id == msg_id
    )
    closed = arrivals[rank - 1]
    return QuorumTimeline(
        decision=decision,
        msg_type=trigger.msg_type,
        quorum_size=rank,
        closed_at=closed[0],
        straggler=closed[1],
        arrivals=tuple(arrivals),
    )


def critical_paths(graph: CausalityGraph) -> list[CriticalPath]:
    """:func:`critical_path` for every decision in the trace."""
    return [critical_path(graph, decision) for decision in graph.decisions]


def quorum_timelines(graph: CausalityGraph) -> list[QuorumTimeline]:
    """:func:`quorum_timeline` for every decision it applies to."""
    out = []
    for decision in graph.decisions:
        timeline = quorum_timeline(graph, decision)
        if timeline is not None:
            out.append(timeline)
    return out


def render_critical_paths(paths: list[CriticalPath], top: int = 10) -> str:
    """Human-readable rendering of (the first ``top``) critical paths."""
    if not paths:
        return (
            "critical paths: no decisions in trace (or lineage disabled — "
            "run with tracing on and lineage enabled)"
        )
    sections = [path.render() for path in paths[:top]]
    if len(paths) > top:
        sections.append(f"... (+{len(paths) - top} more decisions)")
    return "critical paths (per decision):\n\n" + "\n\n".join(sections)


def render_quorum_timelines(timelines: list[QuorumTimeline], top: int = 10) -> str:
    """Human-readable rendering of (the first ``top``) quorum timelines."""
    if not timelines:
        return (
            "quorum timelines: no message-triggered decisions in trace "
            "(or lineage disabled)"
        )
    sections = [timeline.render() for timeline in timelines[:top]]
    if len(timelines) > top:
        sections.append(f"... (+{len(timelines) - top} more decisions)")
    return "quorum formation (per decision):\n\n" + "\n\n".join(sections)
