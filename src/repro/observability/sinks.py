"""Streaming trace sinks — public namespace.

The sink implementations live in :mod:`repro.core.tracing` (the
:class:`~repro.core.tracing.Trace` facade depends on them); this module is
their home inside the telemetry subsystem, so user code reads::

    from repro.observability.sinks import JsonlSink, EventFilter

    sink = JsonlSink("trace.jsonl", filter=EventFilter.parse("kind=send,deliver"))
    result = run_simulation(config, sink=sink)

Available sinks:

* :class:`MemorySink` — buffers in memory (default; what the validator and
  the Fig. 9 view-timeline analysis consume).
* :class:`JsonlSink` — streams newline-delimited JSON to disk with bounded
  memory; the input format of ``repro inspect``.
* :class:`NullSink` — counts and discards.

All sinks accept an :class:`EventFilter` (kind / node / time-window
clauses).

Cost when disabled: every hot-path ``trace.record`` call in the kernel is
gated on ``trace.enabled``, so a run without tracing pays neither sink
dispatch nor the construction of the record's arguments (see
``docs/performance.md``).
"""

from __future__ import annotations

from ..core.tracing import (
    EventFilter,
    JsonlSink,
    MemorySink,
    NullSink,
    TraceBufferUnavailable,
    TraceEvent,
    TraceSink,
)

__all__ = [
    "EventFilter",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "TraceBufferUnavailable",
    "TraceEvent",
    "TraceSink",
]
