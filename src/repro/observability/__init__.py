"""Run telemetry: trace sinks, hot-path profiling, structured logging,
and trace forensics.

The paper's evaluation is about simulator *efficiency* (§V: events per
second, scalability with node count); this subsystem is the measurement
substrate that makes those properties observable inside our own engine.
Four pillars:

* **streaming trace sinks** (:mod:`repro.observability.sinks`) — pluggable
  storage behind :class:`~repro.core.tracing.Trace`; ``JsonlSink`` records
  million-event traces to disk with bounded memory.
* **hot-path profiler** (:mod:`repro.observability.profiler`) — opt-in
  ``perf_counter`` timing around the dispatch loop, aggregated into a
  :class:`RunProfile` on ``SimulationResult.profile`` (outside the
  determinism fingerprint) and merged fleet-wide by the parallel engine.
* **structured logging** (:mod:`repro.observability.logging`) —
  ``repro``-namespaced loggers with simulated-time stamps and JSONL output.
* **trace forensics** (:mod:`repro.observability.inspect`) — the streaming
  analysis behind the ``repro inspect`` CLI: message-usage accounting,
  per-view timelines, stall forensics, top-N profile tables.

Telemetry never influences simulation behavior: with everything enabled or
everything disabled, ``result_fingerprint`` is byte-identical.
"""

from .inspect import TraceReport, analyze_trace, iter_trace_file, render_report
from .logging import SimLogger, configure_logging, get_logger
from .profiler import Profiler, RunProfile, SectionStats
from .sinks import (
    EventFilter,
    JsonlSink,
    MemorySink,
    NullSink,
    TraceBufferUnavailable,
    TraceSink,
)

__all__ = [
    "EventFilter",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "Profiler",
    "RunProfile",
    "SectionStats",
    "SimLogger",
    "TraceBufferUnavailable",
    "TraceReport",
    "TraceSink",
    "analyze_trace",
    "configure_logging",
    "get_logger",
    "iter_trace_file",
    "render_report",
]
