"""Run telemetry: trace sinks, hot-path profiling, structured logging,
and trace forensics.

The paper's evaluation is about simulator *efficiency* (§V: events per
second, scalability with node count); this subsystem is the measurement
substrate that makes those properties observable inside our own engine.
Four pillars:

* **streaming trace sinks** (:mod:`repro.observability.sinks`) — pluggable
  storage behind :class:`~repro.core.tracing.Trace`; ``JsonlSink`` records
  million-event traces to disk with bounded memory.
* **hot-path profiler** (:mod:`repro.observability.profiler`) — opt-in
  ``perf_counter`` timing around the dispatch loop, aggregated into a
  :class:`RunProfile` on ``SimulationResult.profile`` (outside the
  determinism fingerprint) and merged fleet-wide by the parallel engine.
* **structured logging** (:mod:`repro.observability.logging`) —
  ``repro``-namespaced loggers with simulated-time stamps and JSONL output.
* **trace forensics** (:mod:`repro.observability.inspect`) — the streaming
  analysis behind the ``repro inspect`` CLI: message-usage accounting,
  per-view timelines, stall forensics, top-N profile tables.
* **streaming run health** (:mod:`repro.observability.health`) — O(1)
  rolling-window anomaly detectors fed from the dispatch loop (view
  storms, stragglers, backlog growth, fan-in spikes, client starvation),
  reported live through the store/dashboard/`repro watch` and replayable
  offline from a finished trace with identical state.

Telemetry never influences simulation behavior: with everything enabled or
everything disabled, ``result_fingerprint`` is byte-identical.
"""

from .causality import (
    CausalityGraph,
    CriticalPath,
    QuorumTimeline,
    critical_path,
    critical_paths,
    quorum_timeline,
    quorum_timelines,
    render_critical_paths,
    render_quorum_timelines,
)
from .health import (
    HealthEvent,
    HealthMonitor,
    HealthReport,
    analyze_trace_health,
    render_health,
    replay_health,
)
from .inspect import (
    TraceReport,
    analyze_trace,
    iter_events,
    iter_trace_file,
    render_report,
)
from .logging import SimLogger, configure_logging, get_logger
from .metrics import (
    Counter,
    Histogram,
    HistogramData,
    MetricsRegistry,
    RunMetrics,
)
from .phases import PhaseReport, PhaseStay, analyze_phases, render_phase_report
from .profiler import Profiler, RunProfile, SectionStats
from .sinks import (
    EventFilter,
    JsonlSink,
    MemorySink,
    NullSink,
    TraceBufferUnavailable,
    TraceSink,
)

__all__ = [
    "CausalityGraph",
    "Counter",
    "CriticalPath",
    "EventFilter",
    "HealthEvent",
    "HealthMonitor",
    "HealthReport",
    "Histogram",
    "HistogramData",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "PhaseReport",
    "PhaseStay",
    "Profiler",
    "QuorumTimeline",
    "RunMetrics",
    "RunProfile",
    "SectionStats",
    "SimLogger",
    "TraceBufferUnavailable",
    "TraceReport",
    "TraceSink",
    "analyze_phases",
    "analyze_trace",
    "analyze_trace_health",
    "configure_logging",
    "critical_path",
    "critical_paths",
    "get_logger",
    "iter_events",
    "iter_trace_file",
    "quorum_timeline",
    "quorum_timelines",
    "render_critical_paths",
    "render_health",
    "replay_health",
    "render_phase_report",
    "render_quorum_timelines",
    "render_report",
]
