"""Per-view time-in-phase analysis over ``"phase"`` trace events.

Protocols tag their progress through consensus with
:meth:`repro.core.node.Node.phase` (``"pre-prepare"``/``"prepare"``/
``"commit"`` for PBFT, ``"propose"``/``"prevote"``/``"precommit"`` for
Tendermint, the chain stages for HotStuff-style protocols, plus
``"view-change"``).  Each call records a ``"phase"`` trace event carrying
the phase name and the protocol's view coordinates (``view``, and
``height`` for height/round protocols).

The analyzer turns those point events into **intervals**: a replica is in
phase ``p`` from the event that announced ``p`` until its next phase event
(or the end of the trace).  Grouping the intervals by ``(node, view)``
yields per-view time-in-phase breakdowns whose durations *partition* the
node's time in the view — per-view phase durations sum to the view duration
by construction, which the observability test suite asserts for the golden
PBFT configuration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..core.tracing import Trace
from .inspect import iter_events


def _view_key(event: Mapping[str, Any]) -> Any:
    """The view coordinate of a phase event.

    ``view`` alone for single-coordinate protocols; ``(height, view)`` for
    height/round protocols (Tendermint), where the round counter resets at
    every height.  ``None`` when the protocol tagged no coordinates.
    """
    view = event.get("view")
    height = event.get("height")
    if height is not None:
        return (height, view)
    return view


@dataclass(frozen=True)
class PhaseStay:
    """One contiguous interval a node spent in one phase."""

    node: int
    view: Any
    phase: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ViewPhaseBreakdown:
    """One node's time-in-phase partition of one view."""

    node: int
    view: Any
    first_entry: float
    last_exit: float
    phases: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Total time the node spent in this view (sum of its stays)."""
        return sum(self.phases.values())


@dataclass
class PhaseReport:
    """Everything the phase analyzer established over one trace."""

    stays: list[PhaseStay] = field(default_factory=list)
    per_view: dict[tuple[int, Any], ViewPhaseBreakdown] = field(default_factory=dict)
    phase_totals: dict[str, float] = field(default_factory=dict)
    transition_counts: dict[str, int] = field(default_factory=dict)
    end_time: float = 0.0

    @property
    def phases_seen(self) -> list[str]:
        return sorted(self.phase_totals)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (``repro inspect --phases --json``)."""
        return {
            "end_time_ms": self.end_time,
            "phase_totals_ms": {
                phase: total for phase, total in sorted(self.phase_totals.items())
            },
            "transition_counts": dict(sorted(self.transition_counts.items())),
            "per_view": [
                {
                    "node": breakdown.node,
                    "view": breakdown.view,
                    "first_entry_ms": breakdown.first_entry,
                    "last_exit_ms": breakdown.last_exit,
                    "duration_ms": breakdown.duration,
                    "phases_ms": dict(sorted(breakdown.phases.items())),
                }
                for (_node, _view), breakdown in sorted(
                    self.per_view.items(), key=lambda item: (str(item[0][1]), item[0][0])
                )
            ],
        }


def analyze_phases(
    source: str | os.PathLike[str] | Trace | Iterable[Mapping[str, Any]],
) -> PhaseReport:
    """Build the per-view time-in-phase report for one trace.

    A node's final open phase interval is closed at the trace's end time
    (the maximum timestamp over *all* events, not just phase events), so
    the partition property holds for the trailing view too.
    """
    report = PhaseReport()
    # Per node: ordered (time, phase, view_key) phase points.
    points: dict[int, list[tuple[float, str, Any]]] = {}
    end_time = 0.0
    for event in iter_events(source):
        time = float(event["time"])
        if time > end_time:
            end_time = time
        if event.get("kind") != "phase":
            continue
        node = int(event.get("node", -1))
        phase = str(event.get("phase", "?"))
        points.setdefault(node, []).append((time, phase, _view_key(event)))
        report.transition_counts[phase] = report.transition_counts.get(phase, 0) + 1
    report.end_time = end_time

    for node, entries in sorted(points.items()):
        for index, (start, phase, view) in enumerate(entries):
            end = entries[index + 1][0] if index + 1 < len(entries) else end_time
            stay = PhaseStay(node=node, view=view, phase=phase, start=start, end=end)
            report.stays.append(stay)
            breakdown = report.per_view.get((node, view))
            if breakdown is None:
                breakdown = report.per_view[(node, view)] = ViewPhaseBreakdown(
                    node=node, view=view, first_entry=start, last_exit=end,
                )
            else:
                breakdown.first_entry = min(breakdown.first_entry, start)
                breakdown.last_exit = max(breakdown.last_exit, end)
            breakdown.phases[phase] = breakdown.phases.get(phase, 0.0) + stay.duration
            report.phase_totals[phase] = (
                report.phase_totals.get(phase, 0.0) + stay.duration
            )
    return report


def render_phase_report(report: PhaseReport, top: int = 20) -> str:
    """Human-readable rendering: totals plus a per-view breakdown table."""
    from ..analysis.report import render_table

    if not report.stays:
        return (
            "phases: no phase events in trace (protocol not instrumented, "
            "or tracing was off)"
        )
    sections: list[str] = []
    grand_total = sum(report.phase_totals.values()) or 1.0
    total_rows = [
        (
            phase,
            f"{total:.1f}",
            report.transition_counts.get(phase, 0),
            f"{100.0 * total / grand_total:.1f}%",
        )
        for phase, total in sorted(
            report.phase_totals.items(), key=lambda item: item[1], reverse=True
        )
    ]
    sections.append(render_table(
        "time in phase (all nodes, all views)",
        ["phase", "total ms", "entries", "share"],
        total_rows[:top],
    ))

    # Per-view: aggregate nodes (sum over replicas) for a compact table.
    by_view: dict[Any, dict[str, float]] = {}
    for (_node, view), breakdown in report.per_view.items():
        bucket = by_view.setdefault(view, {})
        for phase, duration in breakdown.phases.items():
            bucket[phase] = bucket.get(phase, 0.0) + duration
    view_rows = []
    for view in sorted(by_view, key=str):
        for phase, total in sorted(by_view[view].items()):
            view_rows.append((str(view), phase, f"{total:.1f}"))
    note = None
    if len(view_rows) > top:
        note = f"+{len(view_rows) - top} more (view, phase) rows"
    sections.append(render_table(
        "per-view phase durations (summed over nodes)",
        ["view", "phase", "total ms"],
        view_rows[:top],
        note=note,
    ))
    return "\n\n".join(sections)
