"""Live run signals for signal-driven (adaptive) adversaries.

The causality analyses in :mod:`repro.observability.causality` are post-hoc:
they rebuild quorum timelines and critical paths from a recorded trace.  An
*adaptive* attacker needs the same information **while the run is still
going** — who is the current quorum-timeline straggler, which senders keep
closing quorums (the tail of every decision's critical path), how deliveries
are distributed across nodes — so it can choose whom to delay, corrupt, or
equivocate next.

:class:`LiveSignals` is that channel.  The controller maintains it with O(1)
work per delivered message and per decision, and **only** when the run's
attacker declares ``wants_signals = True`` — benign runs never allocate or
touch it, and it never draws randomness, so fingerprints of signal-free runs
are byte-identical with the feature present.  Attackers reach it through
:attr:`repro.attacks.base.AttackerContext.signals`, which gates access on
the ``OBSERVE`` capability: reading the run's own progress telemetry is
exactly the kind of rushing-adversary knowledge the threat model reserves
for observing attackers.

Signal semantics (all maintained incrementally):

* **delivery counts** — messages dispatched to each node so far;
* **decision counts** — slots each node has decided so far;
* **closing senders** — for every decision, the source of the message the
  deciding node was handling when it decided: the quorum-closing sender,
  i.e. the last hop of that decision's critical path;
* **stragglers** — nodes with the fewest decisions, ties broken by least
  recent activity then lowest id: the live counterpart of the
  quorum-timeline straggler;
* **per-kind fan-in** — deliveries per node *per message kind*
  (``PREPARE``, ``VOTE``...), so an attacker can target the hot spot of a
  specific quorum phase rather than overall traffic;
* **per-view phase timings** — simulated time each ``(view, phase)`` pair
  has accumulated across nodes, fed by the protocols' ``phase()``
  annotations: the live counterpart of the post-hoc
  :func:`repro.observability.phases.analyze_phases` breakdown, letting an
  adversary find the view's slowest phase while it is still running.

A :meth:`LiveSignals.summary_dict` snapshot of all of the above is attached
to the result (``SimulationResult.signals_summary``) so the experiment
store can persist what the adversary saw.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable


def _view_key(view: Any, height: Any) -> Any:
    """Collapse a phase event's coordinates into one hashable view key.

    Mirrors :func:`repro.observability.phases._view_key`: ``view`` alone for
    single-coordinate protocols, ``(height, view)`` when a height/round
    protocol tags both.
    """
    if height is not None:
        return (height, view)
    return view


class LiveSignals:
    """Incrementally maintained run-progress signals.

    Built by the controller when the configured attacker sets
    ``wants_signals = True``; read by attackers via ``ctx.signals``.
    """

    __slots__ = (
        "n",
        "delivered",
        "decided",
        "last_activity",
        "closing_senders",
        "_handling_source",
        "decisions_seen",
        "kind_fan_in",
        "phase_totals",
        "phase_entries",
        "_node_phase",
    )

    def __init__(self, n: int) -> None:
        self.n = n
        #: Per-node count of messages delivered (dispatched) to the node.
        self.delivered = [0] * n
        #: Per-node count of decided slots.
        self.decided = [0] * n
        #: Per-node simulated time of the last delivery or decision.
        self.last_activity = [0.0] * n
        #: node id -> number of decisions whose quorum it closed.
        self.closing_senders: Counter[int] = Counter()
        #: Source of the message each node is currently/last handling.
        self._handling_source = [-1] * n
        #: Total decisions observed.
        self.decisions_seen = 0
        #: message kind -> per-node delivery counts (fan-in by kind).
        self.kind_fan_in: dict[str, list[int]] = {}
        #: (view_key, phase) -> accumulated simulated ms across nodes.
        self.phase_totals: dict[tuple[Any, str], float] = {}
        #: (view_key, phase) -> number of node entries into the phase.
        self.phase_entries: Counter[tuple[Any, str]] = Counter()
        #: Per-node currently open phase stay: (view_key, phase, entered_at).
        self._node_phase: list[tuple[Any, str, float] | None] = [None] * n

    # -- controller-side updates (O(1) each) --------------------------------

    def on_deliver(
        self, dest: int, source: int, time: float, msg_type: str | None = None
    ) -> None:
        self.delivered[dest] += 1
        self._handling_source[dest] = source
        self.last_activity[dest] = time
        if msg_type is not None:
            per_node = self.kind_fan_in.get(msg_type)
            if per_node is None:
                per_node = self.kind_fan_in[msg_type] = [0] * self.n
            per_node[dest] += 1

    def on_decide(self, node: int, time: float) -> None:
        self.decided[node] += 1
        self.decisions_seen += 1
        self.last_activity[node] = time
        closer = self._handling_source[node]
        if closer >= 0 and closer != node:
            self.closing_senders[closer] += 1

    def on_phase(
        self, node: int, phase: str, view: Any, height: Any, time: float
    ) -> None:
        """A node announced entering ``phase``: close its previous stay.

        A node is *in* a phase from the announcement until its next phase
        announcement (the same interval semantics as the post-hoc
        analyzer); the closed stay's duration lands on the previous
        ``(view, phase)`` bucket.  Stays still open when the run ends are
        closed by :meth:`finish`.
        """
        key = _view_key(view, height)
        open_stay = self._node_phase[node]
        if open_stay is not None:
            prev_key, prev_phase, entered_at = open_stay
            bucket = (prev_key, prev_phase)
            self.phase_totals[bucket] = (
                self.phase_totals.get(bucket, 0.0) + (time - entered_at)
            )
        self.phase_entries[(key, phase)] += 1
        self._node_phase[node] = (key, phase, time)

    def finish(self, now: float) -> None:
        """Close every still-open phase stay at the run's final time."""
        for node, open_stay in enumerate(self._node_phase):
            if open_stay is None:
                continue
            key, phase, entered_at = open_stay
            bucket = (key, phase)
            self.phase_totals[bucket] = (
                self.phase_totals.get(bucket, 0.0) + (now - entered_at)
            )
            self._node_phase[node] = None

    # -- attacker-side queries ----------------------------------------------

    def delivery_counts(self) -> tuple[int, ...]:
        """Messages delivered to each node so far (index = node id)."""
        return tuple(self.delivered)

    def decision_counts(self) -> tuple[int, ...]:
        """Slots decided by each node so far (index = node id)."""
        return tuple(self.decided)

    def stragglers(self, k: int = 1, exclude: Iterable[int] = ()) -> list[int]:
        """The ``k`` nodes furthest behind on decisions.

        Ordered worst-first: fewest decisions, then least recent activity,
        then lowest id — a deterministic live stand-in for the post-hoc
        quorum-timeline straggler.  ``exclude`` removes nodes (e.g. already
        corrupted ones) from consideration.
        """
        skip = set(exclude)
        candidates = [i for i in range(self.n) if i not in skip]
        candidates.sort(key=lambda i: (self.decided[i], self.last_activity[i], i))
        return candidates[:k]

    def critical_senders(self, k: int = 1, exclude: Iterable[int] = ()) -> list[int]:
        """The ``k`` nodes that closed the most quorums so far.

        Ordered most-critical-first (ties by lowest id).  Nodes that closed
        no quorum yet never appear; callers should fall back to
        :meth:`stragglers` (or fan-in counts) when the list is short.
        """
        skip = set(exclude)
        ranked = sorted(
            (node for node in self.closing_senders if node not in skip),
            key=lambda node: (-self.closing_senders[node], node),
        )
        return ranked[:k]

    def busiest_nodes(self, k: int = 1, exclude: Iterable[int] = ()) -> list[int]:
        """The ``k`` nodes with the most deliveries (fan-in hot spots)."""
        skip = set(exclude)
        candidates = [i for i in range(self.n) if i not in skip]
        candidates.sort(key=lambda i: (-self.delivered[i], i))
        return candidates[:k]

    def fan_in(self, kind: str) -> tuple[int, ...]:
        """Per-node delivery counts of one message kind (zeros if unseen)."""
        per_node = self.kind_fan_in.get(kind)
        return tuple(per_node) if per_node else (0,) * self.n

    def hottest_by_kind(
        self, kind: str, k: int = 1, exclude: Iterable[int] = ()
    ) -> list[int]:
        """The ``k`` nodes receiving the most ``kind`` messages.

        Falls back to overall :meth:`busiest_nodes` ordering when the kind
        has not been seen yet (early in the run), so adaptive attackers
        always get a full target list.
        """
        per_node = self.kind_fan_in.get(kind)
        if per_node is None or not any(per_node):
            return self.busiest_nodes(k, exclude=exclude)
        skip = set(exclude)
        candidates = [i for i in range(self.n) if i not in skip]
        candidates.sort(key=lambda i: (-per_node[i], i))
        return candidates[:k]

    def slowest_phases(self, k: int = 1) -> list[tuple[Any, str, float]]:
        """The ``k`` ``(view, phase, total_ms)`` buckets with the most time.

        Ordered slowest-first; ties break on the stringified view then the
        phase name, so the ranking is deterministic across runs.
        """
        ranked = sorted(
            self.phase_totals.items(),
            key=lambda item: (-item[1], str(item[0][0]), item[0][1]),
        )
        return [(view, phase, total) for (view, phase), total in ranked[:k]]

    def phase_time(self, view: Any, phase: str) -> float:
        """Accumulated simulated ms all nodes spent in ``(view, phase)``."""
        return self.phase_totals.get((view, phase), 0.0)

    # -- persistence ---------------------------------------------------------

    def summary_dict(self) -> dict[str, Any]:
        """JSON-friendly snapshot for the experiment store's per-run row.

        Per-view phase timings are keyed ``"<view>/<phase>"`` (views
        stringified — tuples become ``"(height, round)"``); fan-in is
        stored per kind as total plus per-node counts.
        """
        return {
            "decisions_seen": self.decisions_seen,
            "delivered": list(self.delivered),
            "decided": list(self.decided),
            "closing_senders": {
                str(node): count
                for node, count in sorted(self.closing_senders.items())
            },
            "fan_in_by_kind": {
                kind: {"total": sum(counts), "per_node": list(counts)}
                for kind, counts in sorted(self.kind_fan_in.items())
            },
            "phase_timings": {
                f"{view}/{phase}": {
                    "total_ms": total,
                    "entries": self.phase_entries.get((view, phase), 0),
                }
                for (view, phase), total in sorted(
                    self.phase_totals.items(),
                    key=lambda item: (str(item[0][0]), item[0][1]),
                )
            },
        }

    def describe(self) -> str:
        return (
            f"LiveSignals(n={self.n}, decisions={self.decisions_seen}, "
            f"delivered={sum(self.delivered)})"
        )
