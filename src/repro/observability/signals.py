"""Live run signals for signal-driven (adaptive) adversaries.

The causality analyses in :mod:`repro.observability.causality` are post-hoc:
they rebuild quorum timelines and critical paths from a recorded trace.  An
*adaptive* attacker needs the same information **while the run is still
going** — who is the current quorum-timeline straggler, which senders keep
closing quorums (the tail of every decision's critical path), how deliveries
are distributed across nodes — so it can choose whom to delay, corrupt, or
equivocate next.

:class:`LiveSignals` is that channel.  The controller maintains it with O(1)
work per delivered message and per decision, and **only** when the run's
attacker declares ``wants_signals = True`` — benign runs never allocate or
touch it, and it never draws randomness, so fingerprints of signal-free runs
are byte-identical with the feature present.  Attackers reach it through
:attr:`repro.attacks.base.AttackerContext.signals`, which gates access on
the ``OBSERVE`` capability: reading the run's own progress telemetry is
exactly the kind of rushing-adversary knowledge the threat model reserves
for observing attackers.

Signal semantics (all maintained incrementally):

* **delivery counts** — messages dispatched to each node so far;
* **decision counts** — slots each node has decided so far;
* **closing senders** — for every decision, the source of the message the
  deciding node was handling when it decided: the quorum-closing sender,
  i.e. the last hop of that decision's critical path;
* **stragglers** — nodes with the fewest decisions, ties broken by least
  recent activity then lowest id: the live counterpart of the
  quorum-timeline straggler.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable


class LiveSignals:
    """Incrementally maintained run-progress signals.

    Built by the controller when the configured attacker sets
    ``wants_signals = True``; read by attackers via ``ctx.signals``.
    """

    __slots__ = (
        "n",
        "delivered",
        "decided",
        "last_activity",
        "closing_senders",
        "_handling_source",
        "decisions_seen",
    )

    def __init__(self, n: int) -> None:
        self.n = n
        #: Per-node count of messages delivered (dispatched) to the node.
        self.delivered = [0] * n
        #: Per-node count of decided slots.
        self.decided = [0] * n
        #: Per-node simulated time of the last delivery or decision.
        self.last_activity = [0.0] * n
        #: node id -> number of decisions whose quorum it closed.
        self.closing_senders: Counter[int] = Counter()
        #: Source of the message each node is currently/last handling.
        self._handling_source = [-1] * n
        #: Total decisions observed.
        self.decisions_seen = 0

    # -- controller-side updates (O(1) each) --------------------------------

    def on_deliver(self, dest: int, source: int, time: float) -> None:
        self.delivered[dest] += 1
        self._handling_source[dest] = source
        self.last_activity[dest] = time

    def on_decide(self, node: int, time: float) -> None:
        self.decided[node] += 1
        self.decisions_seen += 1
        self.last_activity[node] = time
        closer = self._handling_source[node]
        if closer >= 0 and closer != node:
            self.closing_senders[closer] += 1

    # -- attacker-side queries ----------------------------------------------

    def delivery_counts(self) -> tuple[int, ...]:
        """Messages delivered to each node so far (index = node id)."""
        return tuple(self.delivered)

    def decision_counts(self) -> tuple[int, ...]:
        """Slots decided by each node so far (index = node id)."""
        return tuple(self.decided)

    def stragglers(self, k: int = 1, exclude: Iterable[int] = ()) -> list[int]:
        """The ``k`` nodes furthest behind on decisions.

        Ordered worst-first: fewest decisions, then least recent activity,
        then lowest id — a deterministic live stand-in for the post-hoc
        quorum-timeline straggler.  ``exclude`` removes nodes (e.g. already
        corrupted ones) from consideration.
        """
        skip = set(exclude)
        candidates = [i for i in range(self.n) if i not in skip]
        candidates.sort(key=lambda i: (self.decided[i], self.last_activity[i], i))
        return candidates[:k]

    def critical_senders(self, k: int = 1, exclude: Iterable[int] = ()) -> list[int]:
        """The ``k`` nodes that closed the most quorums so far.

        Ordered most-critical-first (ties by lowest id).  Nodes that closed
        no quorum yet never appear; callers should fall back to
        :meth:`stragglers` (or fan-in counts) when the list is short.
        """
        skip = set(exclude)
        ranked = sorted(
            (node for node in self.closing_senders if node not in skip),
            key=lambda node: (-self.closing_senders[node], node),
        )
        return ranked[:k]

    def busiest_nodes(self, k: int = 1, exclude: Iterable[int] = ()) -> list[int]:
        """The ``k`` nodes with the most deliveries (fan-in hot spots)."""
        skip = set(exclude)
        candidates = [i for i in range(self.n) if i not in skip]
        candidates.sort(key=lambda i: (-self.delivered[i], i))
        return candidates[:k]

    def describe(self) -> str:
        return (
            f"LiveSignals(n={self.n}, decisions={self.decisions_seen}, "
            f"delivered={sum(self.delivered)})"
        )
