"""Command-line interface.

The paper's workflow is "write a configuration file specifying the network
model and parameters, the BFT protocol, and, optionally, the attack
scenario" (§III-A); the CLI makes that workflow shell-scriptable:

    python -m repro list
    python -m repro run --protocol pbft -n 16 --lam 1000 --mean 250 --std 50
    python -m repro run --config experiment.json --json
    python -m repro run --protocol pbft --trace-out trace.jsonl --profile
    python -m repro sweep --protocol pbft --param lam --values 150,250,500 --reps 5
    python -m repro validate --protocol pbft -n 8
    python -m repro inspect trace.jsonl --top 10
    python -m repro inspect trace.jsonl --critical-path --quorum --phases
    python -m repro metrics metrics.json --format prom
    python -m repro run --protocol pbft --store experiments.sqlite
    python -m repro experiments list
    python -m repro experiments diff 1 2
    python -m repro serve --port 8008
    python -m repro run --protocol pbft --health --store experiments.sqlite
    python -m repro watch experiments.sqlite
    python -m repro mine --check artifacts/mining/worst-case-pbft-n32.json

Every command is a thin shell over the library; anything it can do, the
Python API can do too.  ``--log-level`` / ``--log-json`` (before the
subcommand) opt into the simulator's structured logging on stderr.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Sequence

from .analysis.aggregate import summarize
from .analysis.report import render_table
from .attacks.registry import available_attacks
from .core.config import (
    AttackConfig,
    FaultScheduleConfig,
    FaultSpec,
    NetworkConfig,
    SimulationConfig,
)
from .core.errors import SimulationError
from .core.results import RunFailure
from .core.runner import repeat_simulation, run_simulation
from .core.tracing import EventFilter, JsonlSink
from .faults import available_presets, parse_faults_spec
from .observability.causality import (
    CausalityGraph,
    critical_paths,
    quorum_timelines,
    render_critical_paths,
    render_quorum_timelines,
)
from .observability.health import analyze_trace_health, render_health
from .observability.inspect import analyze_trace, render_report
from .observability.logging import LOG_LEVELS, configure_logging
from .observability.metrics import RunMetrics
from .observability.phases import analyze_phases, render_phase_report
from .observability.profiler import RunProfile
from .protocols.registry import available_protocols, get_protocol
from .scenarios import (
    OBJECTIVES,
    available_scenarios,
    load_scenario,
    mine,
)
from .workload import parse_workload_spec


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", help="JSON SimulationConfig file (overrides flags)")
    parser.add_argument("--protocol", default="pbft", help="protocol registry name")
    parser.add_argument("-n", type=int, default=16, help="number of nodes")
    parser.add_argument("-f", type=int, default=None, dest="f",
                        help="tolerated faults (default: protocol maximum)")
    parser.add_argument("--lam", type=float, default=1000.0,
                        help="timeout parameter lambda, ms")
    parser.add_argument("--mean", type=float, default=250.0, help="mean delay, ms")
    parser.add_argument("--std", type=float, default=50.0, help="delay std, ms")
    parser.add_argument("--distribution", default="normal",
                        help="delay distribution name")
    parser.add_argument("--max-delay", type=float, default=None,
                        help="hard delay bound b (synchronous network)")
    parser.add_argument("--dissemination", default="full",
                        choices=("full", "tree", "gossip"),
                        help="broadcast dissemination mode: 'full' (direct "
                             "fan-out, the paper's model), 'tree' (k-ary "
                             "relay tree), or 'gossip' (seed-deterministic "
                             "fanout-f push overlay); see docs/scaling.md")
    parser.add_argument("--fanout", type=int, default=0,
                        help="relay fan-out k/f for tree/gossip modes "
                             "(0 = auto, max(2, ceil(sqrt(n))))")
    parser.add_argument("--decisions", type=int, default=None,
                        help="values to decide (default: paper convention)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--attack", default="null", help="attack registry name")
    parser.add_argument("--attack-params", default="{}",
                        help="attack parameters as JSON")
    parser.add_argument("--faults", default=None,
                        help="environmental fault schedule, e.g. "
                             "'loss=0.1; delay=0.2x5; crash=3@1000:8000' "
                             "or a preset name like 'unreliable-network'")
    parser.add_argument("--scenario", default=None,
                        help="declarative attack scenario: a preset name "
                             "(see 'repro list'), a JSON spec file, or the "
                             "compact grammar, e.g. 'targeted-delay="
                             "targets:relays,factor:4; loss=0.05' "
                             "(see docs/scenarios.md)")
    parser.add_argument("--workload", default=None, metavar="SPEC",
                        help="open-loop client workload, e.g. "
                             "'rate:500,clients:100,batch:64' (keys: rate "
                             "req/s, clients, batch, timeout ms, duration "
                             "ms); proposals carry mempool batches and the "
                             "result reports committed tx/s and per-request "
                             "latency percentiles (see docs/workload.md)")
    parser.add_argument("--stall-timeout", type=float, default=None,
                        help="liveness watchdog window in simulated ms: runs "
                             "without honest progress for this long stop "
                             "with a stall report instead of raising")
    parser.add_argument("--max-time", type=float, default=3_600_000.0,
                        help="simulation horizon, ms")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for repeated runs "
                             "(0 = one per CPU; results are identical to "
                             "--jobs 1, only faster)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="wall-clock seconds allowed per run; hung runs "
                             "are killed and recorded as failures")
    parser.add_argument("--retries", type=int, default=1,
                        help="retries for runs whose worker crashed or hung")


#: Default experiment-store path for ``experiments`` / ``serve``.
DEFAULT_STORE = "experiments.sqlite"


def _add_store_option(
    parser: argparse.ArgumentParser, default: str | None = None
) -> None:
    parser.add_argument("--store", default=default, metavar="PATH",
                        help="sqlite experiment store to record into "
                             "(created on first use; browse with "
                             "'repro experiments' / 'repro serve')"
                        if default is None else
                        f"sqlite experiment store (default: {default})")


def _add_telemetry_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="stream the run's trace to a JSONL file "
                             "(bounded memory; read it with 'repro inspect')")
    parser.add_argument("--trace-filter", default=None, metavar="SPEC",
                        help="only record matching events, e.g. "
                             "'kind=send,deliver; node=0,1; window=0:5000'")
    parser.add_argument("--profile", action="store_true",
                        help="time the engine's hot sections and print a "
                             "per-section profile table")
    parser.add_argument("--profile-out", default=None, metavar="PATH",
                        help="also write the profile as JSON (implies "
                             "--profile); feed it to 'repro inspect "
                             "--profile-json'")
    parser.add_argument("--metrics", action="store_true",
                        help="sample engine metrics (queue depth, in-flight "
                             "messages, wire bytes, delivery latency) on the "
                             "simulated clock and print a summary")
    parser.add_argument("--metrics-interval", type=float, default=None,
                        metavar="MS",
                        help="metrics sampling interval in simulated ms "
                             "(implies --metrics; default 100)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the sampled metrics as JSON (implies "
                             "--metrics); feed it to 'repro metrics'")
    _add_health_options(parser)


def _add_health_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--health", action="store_true",
                        help="stream rolling-window run-health detectors "
                             "(view storms, stragglers, backlog growth, "
                             "fan-in spikes, client starvation) and report "
                             "anomalies; fingerprint-neutral "
                             "(see docs/health.md)")
    parser.add_argument("--health-window", type=float, default=None,
                        metavar="MS",
                        help="health detector window in simulated ms "
                             "(implies --health; default 500)")


def _config_from_args(args: argparse.Namespace) -> SimulationConfig:
    config = _base_config_from_args(args)
    scenario = getattr(args, "scenario", None)
    if scenario:
        config = load_scenario(scenario).apply(config)
    return config


def _base_config_from_args(args: argparse.Namespace) -> SimulationConfig:
    if args.config:
        with open(args.config, encoding="utf-8") as handle:
            return SimulationConfig.from_dict(json.load(handle))
    decisions = args.decisions
    if decisions is None:
        decisions = 10 if get_protocol(args.protocol).pipelined else 1
    return SimulationConfig(
        protocol=args.protocol,
        n=args.n,
        f=args.f,
        lam=args.lam,
        network=NetworkConfig(
            distribution=args.distribution,
            mean=args.mean,
            std=args.std,
            max_delay=args.max_delay,
            dissemination=args.dissemination,
            fanout=args.fanout,
        ),
        attack=AttackConfig(name=args.attack, params=json.loads(args.attack_params)),
        faults=(
            parse_faults_spec(args.faults)
            if args.faults
            else FaultScheduleConfig()
        ),
        workload=(
            parse_workload_spec(args.workload)
            if getattr(args, "workload", None)
            else None
        ),
        stall_timeout=args.stall_timeout,
        num_decisions=decisions,
        seed=args.seed,
        max_time=args.max_time,
        allow_horizon=True,
    )


def _result_dict(result) -> dict:
    data = {
        "protocol": result.config.protocol,
        "terminated": result.terminated,
        "latency_ms": result.latency,
        "latency_per_decision_ms": result.latency_per_decision,
        "messages": result.messages,
        "messages_per_decision": result.messages_per_decision,
        "bytes_sent": result.bytes_sent,
        "max_view": result.max_view,
        "faulty": sorted(result.faulty),
        "events_processed": result.events_processed,
        "wall_clock_seconds": result.wall_clock_seconds,
        "decided_values": {str(k): v for k, v in result.decided_values.items()},
    }
    if result.fault_counts.any():
        data["fault_counts"] = dataclasses.asdict(result.fault_counts)
    if result.stalled:
        data["stall"] = dataclasses.asdict(result.stall)
    if result.workload is not None:
        data["workload"] = result.workload.to_dict()
    return data


def cmd_list(_args: argparse.Namespace) -> int:
    print("protocols:")
    for name in available_protocols():
        cls = get_protocol(name)
        traits = []
        if cls.responsive:
            traits.append("responsive")
        if cls.pipelined:
            traits.append("pipelined")
        suffix = f" ({', '.join(traits)})" if traits else ""
        print(f"  {name:<12} {cls.network_model}{suffix}")
    print("attacks:")
    for name in available_attacks():
        print(f"  {name}")
    print("fault presets:")
    for name in available_presets():
        print(f"  {name}")
    print("scenario presets:")
    for name in available_scenarios():
        print(f"  {name}")
    return 0


def _jobs_from_args(args: argparse.Namespace) -> int | None:
    """``--jobs 0`` means one worker per CPU (engine default)."""
    return None if args.jobs == 0 else args.jobs


def _progress_printer(args: argparse.Namespace):
    """A stderr progress line for long parallel sweeps (stdout stays clean
    for the result table)."""
    if args.jobs == 1:
        return None

    def report(update) -> None:
        end = "\n" if update.done == update.total else "\r"
        print(f"  {update.summary()}", file=sys.stderr, end=end, flush=True)

    return report


def _run_sink(args: argparse.Namespace) -> JsonlSink | None:
    """The ``--trace-out`` sink (with any ``--trace-filter``), or ``None``."""
    if args.trace_out is None:
        if args.trace_filter is not None:
            raise ValueError("--trace-filter requires --trace-out")
        return None
    event_filter = (
        EventFilter.parse(args.trace_filter) if args.trace_filter else None
    )
    return JsonlSink(args.trace_out, filter=event_filter)


def _metrics_option(args: argparse.Namespace) -> bool | float:
    """The ``metrics`` run option implied by the CLI flags."""
    if args.metrics_interval is not None:
        return args.metrics_interval
    return args.metrics or args.metrics_out is not None


def _health_option(args: argparse.Namespace) -> bool | float:
    """The ``health`` run option implied by the CLI flags."""
    if getattr(args, "health_window", None) is not None:
        return args.health_window
    return bool(getattr(args, "health", False))


def _open_recorder(args: argparse.Namespace, kind: str, config, total_runs: int,
                   *, params: dict | None = None, labels=None,
                   trace_paths=None):
    """A :class:`StoreRecorder` for ``--store``, or ``None`` when unset."""
    if getattr(args, "store", None) is None:
        return None
    from .store import ExperimentStore, StoreRecorder

    store = ExperimentStore(args.store)
    name = getattr(args, "experiment_name", None) or (
        f"{config.protocol if hasattr(config, 'protocol') else config['protocol']}"
        f" {kind}"
    )
    return StoreRecorder.open(
        store, name, kind, config, total_runs,
        params=params, labels=labels, trace_paths=trace_paths,
    )


def cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    profile = args.profile or args.profile_out is not None
    metrics = _metrics_option(args)
    health = _health_option(args)
    sink = _run_sink(args)
    recorder = _open_recorder(
        args, "run", config, 1,
        trace_paths={0: args.trace_out} if args.trace_out else None,
    )
    failure: RunFailure | None = None
    if args.timeout is not None and sink is None:
        entry = repeat_simulation(
            config, 1, timeout=args.timeout, retries=args.retries,
            on_error="record", profile=profile, metrics=metrics,
            health=health,
        )[0]
        if isinstance(entry, RunFailure):
            failure = entry
        else:
            result = entry
    else:
        if args.timeout is not None:
            print("note: --trace-out streams from this process; "
                  "--timeout is ignored", file=sys.stderr)
        result = run_simulation(config, sink=sink, profile=profile,
                                metrics=metrics, health=health)
    if recorder is not None:
        recorder(0, failure if failure is not None else result)
        recorder.finish()
        print(f"store: experiment {recorder.experiment_id} -> {args.store}",
              file=sys.stderr)
    if failure is not None:
        print(f"error: {failure.summary()}", file=sys.stderr)
        return 1
    if args.profile_out is not None and result.profile is not None:
        with open(args.profile_out, "w", encoding="utf-8") as handle:
            json.dump(result.profile.to_dict(), handle, indent=2, sort_keys=True)
    if args.metrics_out is not None and result.run_metrics is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(result.run_metrics.to_dict(), handle, indent=2,
                      sort_keys=True)
    if args.json:
        data = _result_dict(result)
        if result.profile is not None:
            data["profile"] = result.profile.to_dict()
        if result.run_metrics is not None:
            data["metrics"] = result.run_metrics.to_dict()
        if result.health is not None:
            data["health"] = result.health.to_dict()
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(result.summary())
        if result.workload is not None:
            print(result.workload.summary())
        if result.health is not None:
            print(f"health: {result.health.summary()}")
        if sink is not None:
            print(f"trace: {sink.count} events -> {args.trace_out}")
        if result.profile is not None:
            print(result.profile.format_table())
        if result.run_metrics is not None:
            print(result.run_metrics.summary())
            if args.metrics_out is not None:
                print(f"metrics: -> {args.metrics_out}")
        if result.stalled:
            print(result.stall.summary())
        if result.fault_counts.any():
            fc = result.fault_counts
            print(
                f"faults: lost={fc.lost} dup={fc.duplicated} "
                f"corrupt={fc.corrupted} rejected={fc.rejected} "
                f"delayed={fc.delayed} link-down={fc.link_down} "
                f"crashes={fc.crashes} recoveries={fc.recoveries} "
                f"crash-dropped={fc.crash_dropped}"
            )
    return 0 if result.terminated else 2


def cmd_sweep(args: argparse.Namespace) -> int:
    values = [float(v) for v in args.values.split(",")]
    health = _health_option(args)
    rows = []
    fleet_profiles: list[RunProfile] = []
    recorder = _open_recorder(
        args, "sweep", _config_from_args(args), len(values) * args.reps,
        params={"param": args.param, "values": values, "reps": args.reps},
        labels={
            v_index * args.reps + rep: f"{args.param}={value} rep {rep}"
            for v_index, value in enumerate(values)
            for rep in range(args.reps)
        },
    )
    from .store.recorder import offset_recorder

    for v_index, value in enumerate(values):
        config = _config_from_args(args)
        if args.param == "lam":
            config = config.replace(lam=value)
        elif args.param in ("mean", "std", "max_delay"):
            config = config.replace(network={args.param: value})
        elif args.param == "n":
            config = config.replace(n=int(value))
        elif args.param == "loss":
            # Sweep environmental message loss, composing with any --faults
            # schedule already configured.
            specs = [s for s in config.faults.specs if s.kind != "loss"]
            if value > 0:
                specs.append(FaultSpec(kind="loss", rate=value))
            config = config.replace(faults=specs)
        elif args.param == "stall_timeout":
            config = config.replace(stall_timeout=value if value > 0 else None)
        elif args.param == "rate":
            # Sweep the workload arrival rate: the throughput-latency
            # saturation curve (requires a --workload base spec).
            if config.workload is None:
                print("error: --param rate requires --workload "
                      "(e.g. --workload rate:100,clients:10)", file=sys.stderr)
                if recorder is not None:
                    recorder.finish("failed")
                return 1
            config = config.replace(workload={"rate": value})
        else:
            print(f"unsupported sweep parameter: {args.param}", file=sys.stderr)
            if recorder is not None:
                recorder.finish("failed")
            return 1
        entries = repeat_simulation(
            config,
            args.reps,
            jobs=_jobs_from_args(args),
            timeout=args.timeout,
            retries=args.retries,
            on_error="record",
            progress=_progress_printer(args),
            profile=args.profile,
            health=health,
            recorder=(
                offset_recorder(recorder, v_index * args.reps)
                if recorder is not None else None
            ),
        )
        fleet_profiles.extend(
            entry.profile for entry in entries
            if not isinstance(entry, RunFailure) and entry.profile is not None
        )
        try:
            summary = summarize(entries)
        except ValueError:
            failures = [e for e in entries if isinstance(e, RunFailure)]
            print(f"error: all {len(failures)} runs failed at "
                  f"{args.param}={value}: {failures[0].summary()}",
                  file=sys.stderr)
            if recorder is not None:
                recorder.finish("failed")
            return 1
        row = [
            value,
            summary.latency_per_decision.format(1 / 1000, "s"),
            f"{summary.messages_per_decision.mean:.0f}",
            f"{summary.terminated_fraction:.0%}",
            f"{summary.stalled_fraction:.0%}",
            f"{summary.fault_events:.0f}",
            str(summary.failures),
        ]
        if getattr(args, "workload", None):
            # Throughput-latency columns: the saturation curve the sweep
            # exists to draw when a workload is configured.
            row.extend(
                [
                    f"{summary.throughput.mean:.1f}",
                    f"{summary.request_latency_p50.mean:.0f}ms",
                    f"{summary.request_latency_p99.mean:.0f}ms",
                    f"{summary.saturated_fraction:.0%}",
                ]
                if summary.throughput is not None
                else ["-", "-", "-", "-"]
            )
        if health:
            # Run-health columns: total anomalies and the worst Jain
            # fairness observed across the cell's runs.
            row.extend([
                str(summary.anomaly_total),
                f"{summary.min_fairness:.2f}"
                if summary.min_fairness is not None else "-",
            ])
        rows.append(tuple(row))
    headers = [args.param, "latency/decision", "msgs/decision", "terminated",
               "stalled", "faults/run", "failed"]
    if getattr(args, "workload", None):
        headers.extend(["tx/s", "req p50", "req p99", "saturated"])
    if health:
        headers.extend(["anomalies", "min fairness"])
    print(
        render_table(
            f"{args.protocol}: sweep over {args.param} ({args.reps} runs per point)",
            headers,
            rows,
        )
    )
    if fleet_profiles:
        print()
        print(RunProfile.merge(fleet_profiles).format_table())
    if recorder is not None:
        recorder.finish()
        print(f"store: experiment {recorder.experiment_id} -> {args.store}",
              file=sys.stderr)
    return 0


def _resolve_trace(args: argparse.Namespace) -> str:
    """The trace path named by ``args.trace`` — a file, or a store run id.

    ``store:<run_id>`` always reads the experiment store (``--store``, or
    the default path); a bare integer does too when ``--store`` was given
    explicitly.  Anything else is a filesystem path.

    Both arms fail with a diagnosis instead of letting ``analyze_trace``
    surface a raw ``FileNotFoundError``: a stored run whose trace pointer
    names a deleted file says so (run id, pointer), and a bare run id
    without ``--store`` explains the ``store:`` syntax rather than being
    treated as a filesystem path.
    """
    trace = args.trace
    store_path = getattr(args, "store", None)
    run_id: int | None = None
    if trace.startswith("store:"):
        run_id = int(trace[len("store:"):])
    elif store_path is not None and trace.isdigit():
        run_id = int(trace)
    if run_id is None:
        if not os.path.exists(trace):
            hint = (
                f" (to read stored run {trace}'s trace, use "
                f"'store:{trace}' or pass --store)"
                if trace.isdigit()
                else ""
            )
            raise ValueError(f"trace file {trace!r} does not exist{hint}")
        return trace
    from .store import ExperimentStore, StoreError

    store = ExperimentStore(store_path or DEFAULT_STORE, create=False)
    try:
        path = store.trace_path(run_id)
    finally:
        store.close()
    if not os.path.exists(path):
        raise StoreError(
            f"run {run_id} has no stored trace on disk: recorded pointer "
            f"{path!r} is missing (the trace file was moved or deleted)"
        )
    return path


def cmd_inspect(args: argparse.Namespace) -> int:
    args.trace = _resolve_trace(args)
    profile = None
    if args.profile_json is not None:
        with open(args.profile_json, encoding="utf-8") as handle:
            profile = RunProfile.from_dict(json.load(handle))
    report = analyze_trace(args.trace)
    if report.events == 0:
        # An empty trace is a valid (if boring) run artifact, not an error:
        # the file parsed fine, it just recorded nothing.
        print(f"no trace events in {args.trace}")
        return 0
    wants_causality = args.critical_path or args.quorum
    paths = timelines = phase_report = None
    if wants_causality:
        graph = CausalityGraph.build(args.trace)
        if args.critical_path:
            paths = critical_paths(graph)
        if args.quorum:
            timelines = quorum_timelines(graph)
    if args.phases:
        phase_report = analyze_phases(args.trace)
    health_analysis = analyze_trace_health(args.trace) if args.health else None
    if args.json:
        data = report.to_dict()
        if profile is not None:
            data["profile"] = profile.to_dict()
        if paths is not None:
            data["critical_paths"] = [path.to_dict() for path in paths]
        if timelines is not None:
            data["quorums"] = [timeline.to_dict() for timeline in timelines]
        if phase_report is not None:
            data["phases"] = phase_report.to_dict()
        if health_analysis is not None:
            data["health"] = health_analysis
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(render_report(report, top=args.top, profile=profile))
        if paths is not None:
            print()
            print(render_critical_paths(paths, top=args.top))
        if timelines is not None:
            print()
            print(render_quorum_timelines(timelines, top=args.top))
        if phase_report is not None:
            print()
            print(render_phase_report(phase_report, top=args.top))
        if health_analysis is not None:
            print()
            print(render_health(health_analysis, top=args.top))
    return 0


#: ``repro metrics`` output formats.
METRICS_FORMATS = ("table", "json", "jsonl", "csv", "prom")


def cmd_metrics(args: argparse.Namespace) -> int:
    merged = RunMetrics.merge([
        _load_metrics(path) for path in args.files
    ])
    if args.format == "table":
        print(merged.format_table(top=args.top))
    elif args.format == "json":
        print(json.dumps(merged.to_dict(), indent=2, sort_keys=True))
    elif args.format == "jsonl":
        sys.stdout.write(merged.to_jsonl())
    elif args.format == "csv":
        sys.stdout.write(merged.to_csv())
    else:
        sys.stdout.write(merged.prometheus_text())
    return 0


def _load_metrics(path: str) -> RunMetrics:
    with open(path, encoding="utf-8") as handle:
        return RunMetrics.from_dict(json.load(handle))


def _cmd_mine_check(args: argparse.Namespace) -> int:
    """``repro mine --check``: re-score a committed mining artifact."""
    from .scenarios import check_artifact

    check = check_artifact(
        args.check,
        tolerance=args.tolerance,
        jobs=_jobs_from_args(args),
        timeout=args.timeout,
        retries=args.retries,
    )
    if args.json:
        print(json.dumps(check.to_dict(), indent=2, sort_keys=True))
    else:
        print(check.summary())
    return 0 if check.ok else 2


def cmd_mine(args: argparse.Namespace) -> int:
    if args.check is not None:
        return _cmd_mine_check(args)
    scenario = args.scenario
    args.scenario = None  # the base must stay null-attack; seed the search
    base = _config_from_args(args)
    seed_specs = [load_scenario(scenario)] if scenario else None
    recorder = _open_recorder(
        args, "mine", base, args.generations,
        params={
            "objective": args.objective,
            "generations": args.generations,
            "population": args.population,
            "reps": args.reps,
            "search_seed": args.search_seed,
        },
    )

    generations_done = 0

    def log(line: str) -> None:
        nonlocal generations_done
        print(f"  {line}", file=sys.stderr, flush=True)
        if recorder is not None and line.startswith("generation "):
            # One progress tick per completed generation: the dashboard
            # shows a mining experiment filling up generation by generation.
            generations_done += 1
            recorder.store.set_progress(
                recorder.experiment_id, generations_done
            )

    report = mine(
        base,
        objective=args.objective,
        generations=args.generations,
        population=args.population,
        reps=args.reps,
        elites=args.elites,
        search_seed=args.search_seed,
        jobs=_jobs_from_args(args),
        timeout=args.timeout,
        retries=args.retries,
        seed_specs=seed_specs,
        refine=args.refine,
        log=log,
    )
    if recorder is not None:
        store, experiment_id = recorder.store, recorder.experiment_id
        data = report.to_dict()
        store.record_artifact(
            experiment_id, "mining-report",
            name=f"mine[{report.objective}]",
            path=args.out,
            payload={k: v for k, v in data.items() if k != "lineage"},
        )
        store.record_artifact(
            experiment_id, "mining-lineage",
            name=f"{len(report.lineage)} evaluated specs",
            payload=data["lineage"],
        )
        if report.winner is not None:
            store.record_artifact(
                experiment_id, "mining-winner",
                name=report.winner.spec["name"],
                path=args.out,
                payload=data["winner"],
            )
        store.finish_experiment(
            experiment_id,
            "complete" if report.winner is not None else "failed",
        )
        print(f"store: experiment {experiment_id} -> {args.store}",
              file=sys.stderr)
    if args.out:
        report.write(args.out)
    if args.json:
        data = report.to_dict()
        if args.out:
            data["artifact"] = args.out
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(report.summary())
        print(f"baseline median latency/decision: "
              f"{report.baseline_latency:.1f} ms over {report.reps} rep(s)")
        if report.winner is not None and report.winner.median_latency is not None:
            print(f"winner median latency/decision:   "
                  f"{report.winner.median_latency:.1f} ms")
        if report.winner is not None:
            print(f"winner fingerprints: {report.winner.fingerprints}")
        if args.out:
            print(f"artifact: -> {args.out}")
    return 0 if report.winner is not None else 2


def _format_when(timestamp: float | None) -> str:
    if not timestamp:
        return "-"
    import datetime

    return datetime.datetime.fromtimestamp(timestamp).strftime(
        "%Y-%m-%d %H:%M:%S"
    )


def cmd_experiments(args: argparse.Namespace) -> int:
    from .store import ExperimentStore

    store = ExperimentStore(args.store, create=False)
    try:
        if args.experiments_command == "list":
            rows = store.experiments()
            if args.json:
                print(json.dumps(
                    {"experiments": [row.to_dict() for row in rows]},
                    indent=2, sort_keys=True,
                ))
                return 0
            if not rows:
                print(f"no experiments in {args.store}")
                return 0
            print(render_table(
                f"experiments in {args.store}",
                ["id", "name", "kind", "status", "runs", "failed",
                 "stalled", "created"],
                [
                    (row.id, row.name, row.kind, row.status,
                     f"{row.done_runs}/{row.total_runs}",
                     row.failed_runs, row.stalled_runs,
                     _format_when(row.created_at))
                    for row in rows
                ],
            ))
            return 0
        if args.experiments_command == "show":
            experiment = store.experiment(args.id)
            runs = store.runs(args.id)
            artifacts = store.artifacts(args.id)
            if args.json:
                print(json.dumps({
                    "experiment": experiment.to_dict(),
                    "runs": [row.to_dict() for row in runs],
                    "artifacts": [row.to_dict() for row in artifacts],
                }, indent=2, sort_keys=True))
                return 0
            print(
                f"experiment {experiment.id}: {experiment.name} "
                f"[{experiment.kind}] {experiment.status} "
                f"{experiment.done_runs}/{experiment.total_runs} runs "
                f"({experiment.failed_runs} failed, "
                f"{experiment.stalled_runs} stalled), "
                f"created {_format_when(experiment.created_at)}"
            )
            if runs:
                print(render_table(
                    "runs",
                    ["#", "label", "status", "seed", "latency/dec",
                     "msgs/dec", "fingerprint", "trace"],
                    [
                        (
                            row.run_index,
                            row.label or "-",
                            row.status + (" (stalled)" if row.stalled else ""),
                            row.seed,
                            f"{row.latency_per_decision:.1f}ms"
                            if row.latency_per_decision is not None else "-",
                            f"{row.messages_per_decision:.1f}"
                            if row.messages_per_decision is not None else "-",
                            (row.fingerprint or "-")[:12],
                            row.trace_path or "-",
                        )
                        for row in runs
                    ],
                ))
            for artifact in artifacts:
                where = f" -> {artifact.path}" if artifact.path else ""
                print(f"artifact {artifact.id}: {artifact.kind} "
                      f"{artifact.name}{where}")
            return 0
        # diff
        diff = store.diff(args.a, args.b)
        if args.json:
            print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
        else:
            print(diff.summary())
            for row in diff.mismatches:
                print(
                    f"  run {row.run_index}: "
                    f"{(row.a or 'missing')[:16]} vs {(row.b or 'missing')[:16]}"
                )
        return 0 if diff.identical else 2
    finally:
        store.close()


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import serve

    serve(args.store, args.host, args.port)
    return 0


def _watch_run_line(row) -> str:
    """One ``repro watch`` line for a freshly-recorded run row."""
    parts = [f"run {row.run_index}"]
    if row.label:
        parts.append(f"[{row.label}]")
    if row.failed:
        parts.append("FAILED")
        return " ".join(parts)
    parts.append("stalled" if row.stalled else "ok")
    if row.latency_per_decision is not None:
        parts.append(f"{row.latency_per_decision:.1f}ms/dec")
    if row.committed_tx_s is not None:
        parts.append(f"{row.committed_tx_s:.1f}tx/s")
    if row.anomaly_count is not None:
        parts.append(
            f"{row.anomaly_count} anomalies" if row.anomaly_count
            else "healthy"
        )
    if row.min_fairness is not None:
        parts.append(f"min-fairness {row.min_fairness:.2f}")
    return " ".join(parts)


def _watch_anomaly_lines(row, top: int) -> list[str]:
    """Detection lines for one run's stored health report (capped)."""
    events = (row.health or {}).get("events") or []
    lines = []
    for event in events[:top]:
        who = ""
        if event.get("nodes"):
            who = " nodes=" + ",".join(str(n) for n in event["nodes"])
        if event.get("clients"):
            who += " clients=" + ",".join(str(c) for c in event["clients"])
        lines.append(
            f"{float(event.get('time', 0.0)):.0f}ms "
            f"{event.get('detector', '?')} ({event.get('severity', '?')})"
            f"{who}"
        )
    if len(events) > top:
        lines.append(f"... {len(events) - top} more anomalies")
    return lines


def cmd_watch(args: argparse.Namespace) -> int:
    """Tail an experiment store: stream run rows and health anomalies.

    Polls the sqlite store the same way the dashboard does (short-lived
    read transactions against the WAL), so it can follow a fleet that is
    still recording from another process; exits when the tailed
    experiment reaches a terminal status.
    """
    import time as wall

    from .store import ExperimentStore, StoreError

    experiment_id: int | None = args.experiment
    seen: set[int] = set()
    last_progress: tuple | None = None
    try:
        while True:
            store = ExperimentStore(args.store, create=False)
            try:
                if experiment_id is None:
                    experiments = store.experiments()
                    if not experiments:
                        raise StoreError(
                            f"no experiments in {args.store} "
                            "(record one: repro run/sweep --store PATH)"
                        )
                    experiment_id = experiments[0].id
                experiment = store.experiment(experiment_id)
                runs = store.runs(experiment_id)
            finally:
                store.close()
            progress = (
                experiment.status, experiment.done_runs, experiment.total_runs
            )
            if progress != last_progress:
                last_progress = progress
                print(
                    f"experiment {experiment.id} ({experiment.name}) "
                    f"[{experiment.kind}]: {experiment.status} "
                    f"{experiment.done_runs}/{experiment.total_runs} runs, "
                    f"{experiment.failed_runs} failed"
                )
            for row in runs:
                if row.id in seen:
                    continue
                seen.add(row.id)
                print(f"  {_watch_run_line(row)}")
                for line in _watch_anomaly_lines(row, args.anomalies):
                    print(f"    {line}")
            if experiment.status != "running" or args.once:
                return 0
            wall.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .baseline import run_baseline_simulation
    from .validator import compare_decisions, replay_simulation

    config = _config_from_args(args).replace(record_trace=True)
    ground_truth = run_baseline_simulation(config)
    replayed = replay_simulation(config, ground_truth.trace)
    report = compare_decisions(ground_truth.trace, replayed.trace)
    print(report.summary())
    for mismatch in report.mismatches:
        print(f"  {mismatch}")
    return 0 if report.matches else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Discrete-event simulator for BFT protocols (DSN'22 reproduction)",
    )
    parser.add_argument("--log-level", default=None, choices=LOG_LEVELS,
                        help="enable the simulator's structured logging on "
                             "stderr at this level")
    parser.add_argument("--log-json", action="store_true",
                        help="emit log records as JSON lines (implies "
                             "--log-level warning unless set)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available protocols and attacks")

    run_parser = sub.add_parser("run", help="run one simulation")
    _add_run_options(run_parser)
    _add_telemetry_options(run_parser)
    _add_store_option(run_parser)
    run_parser.add_argument("--json", action="store_true", help="JSON output")

    sweep_parser = sub.add_parser("sweep", help="sweep one parameter")
    _add_run_options(sweep_parser)
    _add_store_option(sweep_parser)
    sweep_parser.add_argument("--param", required=True,
                              help="lam | mean | std | max_delay | n | "
                                   "loss | stall_timeout | rate (arrival "
                                   "rate, requires --workload)")
    sweep_parser.add_argument("--values", required=True,
                              help="comma-separated values")
    sweep_parser.add_argument("--reps", type=int, default=3)
    sweep_parser.add_argument("--profile", action="store_true",
                              help="profile every run and print the merged "
                                   "fleet profile after the sweep table")
    _add_health_options(sweep_parser)

    mine_parser = sub.add_parser(
        "mine",
        help="search for worst-case attack scenarios against a base "
             "configuration and write a replayable artifact",
    )
    _add_run_options(mine_parser)
    mine_parser.add_argument("--objective", default="median-latency",
                             choices=OBJECTIVES,
                             help="what the adversary maximizes "
                                  "(default: median-latency)")
    mine_parser.add_argument("--generations", type=int, default=3,
                             help="evolve iterations (default 3)")
    mine_parser.add_argument("--population", type=int, default=8,
                             help="candidate specs per generation (default 8)")
    mine_parser.add_argument("--reps", type=int, default=1,
                             help="evaluation repetitions per spec (default 1)")
    mine_parser.add_argument("--elites", type=int, default=2,
                             help="top specs kept as parents (default 2)")
    mine_parser.add_argument("--search-seed", type=int, default=0,
                             help="seed for candidate generation/mutation")
    mine_parser.add_argument("--refine", action="store_true",
                             help="parameter-refinement mode: only perturb "
                                  "the numeric parameters of the --scenario "
                                  "seed spec (clause structure and targeting "
                                  "stay fixed)")
    mine_parser.add_argument("--out", default=None, metavar="PATH",
                             help="write the mining artifact (winner, "
                                  "baseline, full lineage) as JSON")
    mine_parser.add_argument("--json", action="store_true",
                             help="print the full artifact as JSON")
    _add_store_option(mine_parser)
    mine_parser.add_argument("--check", default=None, metavar="ARTIFACT",
                             help="regression mode: skip mining, re-score "
                                  "this committed artifact against its "
                                  "stored baseline; exits 2 when the attack "
                                  "ratio drifted beyond --tolerance or the "
                                  "fingerprints moved")
    mine_parser.add_argument("--tolerance", type=float, default=0.05,
                             help="accepted relative attack-ratio drift for "
                                  "--check (default 0.05 = ±5%%)")

    validate_parser = sub.add_parser(
        "validate", help="cross-check against the packet-level baseline engine"
    )
    _add_run_options(validate_parser)

    inspect_parser = sub.add_parser(
        "inspect", help="analyze a JSONL trace written by 'run --trace-out'"
    )
    inspect_parser.add_argument("trace",
                                help="JSONL trace file, or a store run id "
                                     "('store:12', or plain '12' with "
                                     "--store) whose recorded trace to read")
    _add_store_option(inspect_parser)
    inspect_parser.add_argument("--top", type=int, default=20,
                                help="row cap for each table (default 20)")
    inspect_parser.add_argument("--json", action="store_true",
                                help="machine-readable report")
    inspect_parser.add_argument("--profile-json", default=None, metavar="PATH",
                                help="profile JSON from 'run --profile-out' "
                                     "to render alongside the trace report")
    inspect_parser.add_argument("--critical-path", action="store_true",
                                help="reconstruct each decision's causal "
                                     "chain from the trace's lineage fields")
    inspect_parser.add_argument("--quorum", action="store_true",
                                help="per-decision quorum-formation timeline "
                                     "(k-th vote arrival, straggler, wasted "
                                     "post-quorum votes)")
    inspect_parser.add_argument("--phases", action="store_true",
                                help="per-view time-in-phase breakdown from "
                                     "the protocols' phase annotations")
    inspect_parser.add_argument("--health", action="store_true",
                                help="health timeline and anomaly census "
                                     "from the trace's recorded health "
                                     "events (runs made with --health)")

    metrics_parser = sub.add_parser(
        "metrics",
        help="render metrics JSON written by 'run --metrics-out' "
             "(several files are merged)",
    )
    metrics_parser.add_argument("files", nargs="+",
                                help="metrics JSON file(s); multiple files "
                                     "are merged point-wise")
    metrics_parser.add_argument("--format", default="table",
                                choices=METRICS_FORMATS,
                                help="output format (default: table; 'prom' "
                                     "is a Prometheus text snapshot)")
    metrics_parser.add_argument("--top", type=int, default=20,
                                help="row cap for the table format")

    experiments_parser = sub.add_parser(
        "experiments",
        help="browse an experiment store written by run/sweep/mine --store",
    )
    experiments_sub = experiments_parser.add_subparsers(
        dest="experiments_command", required=True
    )
    list_parser = experiments_sub.add_parser(
        "list", help="every stored experiment, newest first"
    )
    _add_store_option(list_parser, default=DEFAULT_STORE)
    list_parser.add_argument("--json", action="store_true",
                             help="machine-readable output")
    show_parser = experiments_sub.add_parser(
        "show", help="one experiment: runs, progress, artifacts"
    )
    show_parser.add_argument("id", type=int, help="experiment id")
    _add_store_option(show_parser, default=DEFAULT_STORE)
    show_parser.add_argument("--json", action="store_true",
                             help="machine-readable output")
    diff_parser = experiments_sub.add_parser(
        "diff",
        help="compare two experiments' per-run fingerprints "
             "(exit 2 when they differ)",
    )
    diff_parser.add_argument("a", type=int, help="first experiment id")
    diff_parser.add_argument("b", type=int, help="second experiment id")
    _add_store_option(diff_parser, default=DEFAULT_STORE)
    diff_parser.add_argument("--json", action="store_true",
                             help="machine-readable output")

    serve_parser = sub.add_parser(
        "serve",
        help="live dashboard over an experiment store (stdlib http.server)",
    )
    _add_store_option(serve_parser, default=DEFAULT_STORE)
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8008,
                              help="port (default 8008; 0 = ephemeral)")

    watch_parser = sub.add_parser(
        "watch",
        help="tail an experiment store: print runs and health anomalies "
             "as they are recorded (live view of an in-flight fleet)",
    )
    watch_parser.add_argument("store", nargs="?", default=DEFAULT_STORE,
                              help="sqlite experiment store "
                                   f"(default: {DEFAULT_STORE})")
    watch_parser.add_argument("--experiment", type=int, default=None,
                              metavar="ID",
                              help="experiment id to tail (default: newest)")
    watch_parser.add_argument("--interval", type=float, default=2.0,
                              metavar="SECONDS",
                              help="poll interval in wall-clock seconds "
                                   "(default 2)")
    watch_parser.add_argument("--once", action="store_true",
                              help="print the current state once and exit "
                                   "(scripting/CI probe)")
    watch_parser.add_argument("--anomalies", type=int, default=5,
                              metavar="N",
                              help="anomaly lines shown per run (default 5)")

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None or args.log_json:
        configure_logging(args.log_level or "warning", json_lines=args.log_json)
    handler = {
        "list": cmd_list,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "mine": cmd_mine,
        "validate": cmd_validate,
        "inspect": cmd_inspect,
        "metrics": cmd_metrics,
        "experiments": cmd_experiments,
        "serve": cmd_serve,
        "watch": cmd_watch,
    }[args.command]
    try:
        return handler(args)
    except (SimulationError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
