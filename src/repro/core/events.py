"""Discrete-event machinery: events and the priority event queue.

The paper's simulator (§III-A2) advances a simulation clock from a priority
queue ordered by event timestamps, with two event kinds: *message events*
(a node receives a message) and *time events* (a registered timer fires).
This module implements both, plus the queue.

Determinism: ties on the timestamp are broken by a monotonically increasing
sequence number assigned at scheduling time, giving a total order on events.
Together with seeded randomness (:mod:`repro.core.rng`) this makes every
simulation run a pure function of its configuration.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .errors import SchedulingError
from .message import Message


@dataclass(frozen=True)
class Event:
    """Base class for queue entries.

    Attributes:
        time: simulation time (ms) at which the event fires.
    """

    time: float


@dataclass(frozen=True)
class MessageEvent(Event):
    """Delivery of a message to its destination node."""

    message: Message = field(default=None)  # type: ignore[assignment]

    def describe(self) -> str:
        return f"msg[{self.message.describe()}] deliver@{self.time:.1f}"


@dataclass(frozen=True)
class TimeEvent(Event):
    """A timer registered by a node, the attacker, or the controller.

    Attributes:
        owner: node id for protocol timers, ``ATTACKER_OWNER`` for attacker
            timers, ``CONTROLLER_OWNER`` for controller-internal deadlines.
        name: protocol-defined label (e.g. ``"view-timeout"``).
        data: arbitrary context the owner attached when registering.
        timer_id: unique id so owners can cancel specific timers.
    """

    owner: int = 0
    name: str = ""
    data: Any = None
    timer_id: int = -1

    def describe(self) -> str:
        return f"timer[{self.name}#{self.timer_id} owner={self.owner}] @{self.time:.1f}"


#: Pseudo-owner ids for non-node timers.
ATTACKER_OWNER: int = -2
CONTROLLER_OWNER: int = -3


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Events pop in ``(time, insertion order)`` order.  Cancellation is lazy:
    cancelled entries stay in the heap and are skipped on pop, which keeps
    both operations O(log n).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._pending: set[int] = set()

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def push(self, event: Event) -> int:
        """Schedule ``event``; returns a handle usable with :meth:`cancel`."""
        if event.time < 0:
            raise SchedulingError(f"event scheduled at negative time {event.time}")
        handle = next(self._seq)
        heapq.heappush(self._heap, (event.time, handle, event))
        self._pending.add(handle)
        return handle

    def cancel(self, handle: int) -> None:
        """Cancel a previously pushed event.

        Cancelling twice, or cancelling an already-popped handle, is a no-op:
        protocols routinely cancel timers that may have just fired.
        """
        self._pending.discard(handle)

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        while self._heap:
            _time, handle, event = heapq.heappop(self._heap)
            if handle not in self._pending:
                continue
            self._pending.discard(handle)
            return event
        raise SchedulingError("pop from an empty event queue")

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` when empty."""
        while self._heap:
            time_, handle, _event = self._heap[0]
            if handle not in self._pending:
                heapq.heappop(self._heap)
                continue
            return time_
        return None

    def cancel_if(self, predicate: "Callable[[Event], bool]") -> int:
        """Cancel every live event satisfying ``predicate``; returns count.

        O(queue size); used for rare structural operations such as a node
        crash discarding that node's pending timers.
        """
        removed = 0
        for _time, handle, event in self._heap:
            if handle in self._pending and predicate(event):
                self._pending.discard(handle)
                removed += 1
        return removed

    def live_events(self) -> list[Event]:
        """Every live (non-cancelled) event in firing order, without popping.

        Diagnostic view used by the liveness watchdog's pending-event
        census; O(n log n), never on the hot path.
        """
        entries = [
            (time_, handle, event)
            for time_, handle, event in self._heap
            if handle in self._pending
        ]
        entries.sort(key=lambda item: (item[0], item[1]))
        return [event for _time, _handle, event in entries]

    def drain(self) -> Iterator[Event]:
        """Pop every remaining live event, in order (mainly for tests)."""
        while self:
            yield self.pop()
