"""Discrete-event machinery: events and the priority event queue.

The paper's simulator (§III-A2) advances a simulation clock from a priority
queue ordered by event timestamps, with two event kinds: *message events*
(a node receives a message) and *time events* (a registered timer fires).
This module implements both, plus the queue.

Determinism: ties on the timestamp are broken by a monotonically increasing
sequence number assigned at scheduling time, giving a total order on events.
Together with seeded randomness (:mod:`repro.core.rng`) this makes every
simulation run a pure function of its configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterable, Iterator

from .errors import SchedulingError
from .message import Message


@dataclass(frozen=True, slots=True)
class Event:
    """Base class for queue entries.

    Attributes:
        time: simulation time (ms) at which the event fires.
    """

    time: float


@dataclass(frozen=True, slots=True)
class MessageEvent(Event):
    """Delivery of a message to its destination node.

    The recipient is normally ``message.dest``; the dissemination fast path
    schedules one *shared* event (and message) for many recipients and
    carries each recipient in the queue entry instead (see
    :meth:`EventQueue.push_deliveries`), so n broadcast copies cost n slim
    heap entries rather than n event + message structures.

    Attributes:
        message: the message being delivered.
    """

    message: Message = field(default=None)  # type: ignore[assignment]

    def describe(self) -> str:
        return f"msg[{self.message.describe()}] deliver@{self.time:.1f}"


@dataclass(frozen=True, slots=True)
class TimeEvent(Event):
    """A timer registered by a node, the attacker, or the controller.

    Attributes:
        owner: node id for protocol timers, ``ATTACKER_OWNER`` for attacker
            timers, ``CONTROLLER_OWNER`` for controller-internal deadlines.
        name: protocol-defined label (e.g. ``"view-timeout"``).
        data: arbitrary context the owner attached when registering.
        timer_id: unique id so owners can cancel specific timers.
        cause: causal-lineage id of the event being handled when the timer
            was registered (observability metadata, never read by engine or
            protocol logic; see :attr:`repro.core.message.Message.cause`).
    """

    owner: int = 0
    name: str = ""
    data: Any = None
    timer_id: int = -1
    cause: str | None = None

    def describe(self) -> str:
        return f"timer[{self.name}#{self.timer_id} owner={self.owner}] @{self.time:.1f}"


#: Pseudo-owner ids for non-node timers.
ATTACKER_OWNER: int = -2
CONTROLLER_OWNER: int = -3


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Events pop in ``(time, insertion order)`` order.  Cancellation is lazy:
    cancelled entries stay in the heap as tombstones and are skipped on pop,
    which keeps both operations O(log n).

    Hot-path layout: each heap entry is a mutable
    ``[time, handle, event, dest]`` list.  Lists compare elementwise exactly
    like tuples (the unique handle always breaks time ties before the event
    is reached), but cancellation can tombstone an entry in place
    (``entry[2] = None``) instead of maintaining a separate membership set,
    so push and pop touch one container each instead of two.  The fourth
    slot is a per-entry delivery-destination override (``None`` for every
    ordinary event): the dissemination fast path schedules one *shared*
    :class:`MessageEvent` for a whole broadcast and puts each recipient —
    and each per-hop firing time, in ``entry[0]`` — in the entry, so a hop
    costs one four-slot list instead of an event object.  Consumers that
    need the override use :meth:`pop_entry`; :meth:`pop` stays the
    event-only view.
    """

    __slots__ = ("_heap", "_entries", "_next_handle")

    def __init__(self) -> None:
        self._heap: list[list] = []
        #: live handle -> its heap entry; the single source of truth for
        #: queue membership (tombstoned and popped entries are absent).
        self._entries: dict[int, list] = {}
        self._next_handle = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def push(self, event: Event) -> int:
        """Schedule ``event``; returns a handle usable with :meth:`cancel`."""
        time = event.time
        if time < 0:
            raise SchedulingError(f"event scheduled at negative time {time}")
        handle = self._next_handle
        self._next_handle = handle + 1
        entry = [time, handle, event, None]
        self._entries[handle] = entry
        heappush(self._heap, entry)
        return handle

    def push_batch(self, events: "Iterable[Event]") -> None:
        """Schedule many events in iteration order (one handle each).

        Exactly equivalent to calling :meth:`push` per event — same handle
        sequence, same tie-breaking — minus the per-call overhead.
        """
        entries = self._entries
        heap = self._heap
        handle = self._next_handle
        try:
            for event in events:
                time = event.time
                if time < 0:
                    raise SchedulingError(f"event scheduled at negative time {time}")
                entry = [time, handle, event, None]
                entries[handle] = entry
                heappush(heap, entry)
                handle += 1
        finally:
            self._next_handle = handle

    def push_deliveries(
        self,
        event: "MessageEvent",
        times: "Iterable[float]",
        dests: "Iterable[int]",
    ) -> None:
        """Schedule one *shared* delivery event at many ``(time, dest)`` pairs.

        The broadcast fast path's bulk insert: every pair gets its own
        handle (same sequence and tie-breaking as per-event :meth:`push`)
        and its own heap entry carrying the recipient, but all entries alias
        the single ``event``.  Dispatch must read the recipient and firing
        time from the entry (:meth:`pop_entry`), never from the shared
        event.
        """
        entries = self._entries
        heap = self._heap
        handle = self._next_handle
        try:
            for time, dest in zip(times, dests):
                if time < 0:
                    raise SchedulingError(f"event scheduled at negative time {time}")
                entry = [time, handle, event, dest]
                entries[handle] = entry
                heappush(heap, entry)
                handle += 1
        finally:
            self._next_handle = handle

    #: Tombstone-compaction trigger: once the heap holds more dead entries
    #: than live ones (and more than this floor), it is rebuilt from the
    #: live set.  Keeps pop cost O(log live) under cancellation churn — a
    #: protocol at n = 1000 cancels hundreds of thousands of timers — while
    #: staying amortized O(1) per cancel.
    COMPACT_MIN_TOMBSTONES = 64

    def cancel(self, handle: int) -> None:
        """Cancel a previously pushed event.

        Cancelling twice, or cancelling an already-popped handle, is a no-op:
        protocols routinely cancel timers that may have just fired.
        """
        entry = self._entries.pop(handle, None)
        if entry is not None:
            entry[2] = None
            dead = len(self._heap) - len(self._entries)
            if dead > self.COMPACT_MIN_TOMBSTONES and dead > len(self._entries):
                self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live entries, dropping every tombstone.

        Entry lists are kept (``_entries`` still points at them); only the
        heap arrangement changes, and the pop order is untouched — events
        compare by ``(time, handle)``, a total order independent of heap
        layout.
        """
        live = [entry for entry in self._heap if entry[2] is not None]
        heapify(live)
        self._heap = live

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        return self.pop_entry()[2]

    def pop_entry(self) -> list:
        """Remove and return the earliest live entry ``[time, handle, event,
        dest]``.

        The engine's run loop uses this instead of :meth:`pop`: for shared
        broadcast deliveries (:meth:`push_deliveries`) the authoritative
        firing time and recipient live in the entry, not the event.
        ``dest`` is ``None`` for ordinary events.
        """
        heap = self._heap
        while heap:
            entry = heappop(heap)
            if entry[2] is None:
                continue
            del self._entries[entry[1]]
            return entry
        raise SchedulingError("pop from an empty event queue")

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` when empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2] is None:
                heappop(heap)
                continue
            return entry[0]
        return None

    def cancel_if(self, predicate: "Callable[[Event], bool]") -> int:
        """Cancel every live event satisfying ``predicate``; returns count.

        O(queue size); used for rare structural operations such as a node
        crash discarding that node's pending timers.
        """
        removed = 0
        entries = self._entries
        for entry in self._heap:
            event = entry[2]
            if event is not None and predicate(event):
                entry[2] = None
                del entries[entry[1]]
                removed += 1
        dead = len(self._heap) - len(entries)
        if dead > self.COMPACT_MIN_TOMBSTONES and dead > len(entries):
            self._compact()
        return removed

    def live_count(self, event_type: type) -> int:
        """Number of live events of exactly ``event_type``.

        O(queue size); used by the metrics registry's in-flight-messages
        gauge, which samples at interval boundaries, never per event.
        """
        return sum(
            1 for entry in self._entries.values() if type(entry[2]) is event_type
        )

    def live_events(self) -> list[Event]:
        """Every live (non-cancelled) event in firing order, without popping.

        Diagnostic view used by the liveness watchdog's pending-event
        census; O(n log n), never on the hot path.
        """
        entries = sorted(self._entries.values(), key=lambda e: (e[0], e[1]))
        return [entry[2] for entry in entries]

    def drain(self) -> Iterator[Event]:
        """Pop every remaining live event, in order (mainly for tests)."""
        while self:
            yield self.pop()
