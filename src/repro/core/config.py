"""Simulation configuration.

A :class:`SimulationConfig` is the single input to a run, mirroring the
paper's "configuration file specifying the network model and parameters, the
BFT protocol, and, optionally, the attack scenario" (§III-A).  Configurations
are plain dataclasses with dict/JSON round-tripping so experiments can be
scripted, stored, and replayed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any

from .errors import ConfigurationError


@dataclass
class NetworkConfig:
    """Parameters of the simulated peer-to-peer network.

    Attributes:
        distribution: name of the delay distribution registered in
            :mod:`repro.network.delays` (``"normal"``, ``"uniform"``,
            ``"exponential"``, ``"lognormal"``, ``"poisson"``, ``"constant"``).
        mean: distribution mean in milliseconds (the paper's ``mu``).
        std: standard deviation in milliseconds (the paper's ``sigma``);
            ignored by distributions without a spread parameter.
        min_delay: hard lower bound applied after sampling; physical links
            never deliver instantaneously, and a strictly positive floor also
            guarantees simulation progress.
        max_delay: optional hard upper bound ``b``.  Setting it simulates a
            synchronous (``b <= lambda``) or partially-synchronous network
            (bound exists but the protocol's ``lambda`` underestimates it);
            leaving it ``None`` simulates an asynchronous network.
        gst: global stabilization time (ms).  Before GST, sampled delays are
            multiplied by :attr:`pre_gst_factor` and :attr:`max_delay` is not
            enforced, modelling the unstable period of a partially-synchronous
            network.  ``0`` means the network is stable from the start.
        pre_gst_factor: delay multiplier applied before GST.
    """

    distribution: str = "normal"
    mean: float = 250.0
    std: float = 50.0
    min_delay: float = 1.0
    max_delay: float | None = None
    gst: float = 0.0
    pre_gst_factor: float = 10.0

    def validate(self) -> None:
        if self.mean <= 0:
            raise ConfigurationError(f"network mean delay must be > 0, got {self.mean}")
        if self.std < 0:
            raise ConfigurationError(f"network std must be >= 0, got {self.std}")
        if self.min_delay <= 0:
            raise ConfigurationError(
                f"min_delay must be > 0 to guarantee progress, got {self.min_delay}"
            )
        if self.max_delay is not None and self.max_delay < self.min_delay:
            raise ConfigurationError("max_delay must be >= min_delay")
        if self.gst < 0:
            raise ConfigurationError("gst must be >= 0")
        if self.pre_gst_factor < 1.0:
            raise ConfigurationError("pre_gst_factor must be >= 1")


@dataclass
class AttackConfig:
    """Selects and parameterizes an attack from :mod:`repro.attacks`.

    Attributes:
        name: registry name of the attacker (e.g. ``"failstop"``,
            ``"partition"``, ``"add-static"``, ``"add-adaptive"``).
        params: attacker-specific parameters, passed through verbatim.
    """

    name: str = "null"
    params: dict[str, Any] = field(default_factory=dict)


@dataclass
class SimulationConfig:
    """Complete description of one simulation run.

    Attributes:
        protocol: registry name of the BFT protocol (see
            :mod:`repro.protocols.registry`), e.g. ``"pbft"``,
            ``"hotstuff-ns"``, ``"librabft"``, ``"algorand"``, ``"async-ba"``,
            ``"add-v1"``, ``"add-v2"``, ``"add-v3"``.
        n: total number of nodes (honest + Byzantine).
        f: number of tolerated faulty nodes.  ``None`` resolves to the
            protocol's maximum resilience (``floor((n-1)/3)`` for partially
            synchronous and asynchronous protocols, ``floor((n-1)/2)`` for
            synchronous ones).
        lam: the protocol's timeout parameter lambda in milliseconds — the
            *estimated* upper bound of network delay that synchronous and
            partially-synchronous protocols are configured with (§IV).
        network: network model parameters.
        attack: optional attack scenario.
        num_decisions: how many values must be decided before the run
            terminates.  The paper uses 10 for the pipelined protocols
            (HotStuff+NS, LibraBFT) and 1 for the rest (§IV).
        seed: root random seed; every run is a deterministic function of the
            full configuration including this seed.
        max_time: simulation horizon in ms; exceeding it raises
            :class:`~repro.core.errors.LivenessTimeoutError` unless
            ``allow_horizon`` is set.
        max_events: hard cap on processed events (runaway protection).
        allow_horizon: when True, hitting ``max_time`` ends the run with
            ``terminated=False`` instead of raising; used by experiments that
            deliberately explore non-terminating regimes.
        record_trace: record a full event trace (needed by the validator
            module and the Fig. 9 view-timeline analysis).
        protocol_params: protocol-specific overrides (documented per
            protocol), passed through verbatim.
    """

    protocol: str
    n: int = 16
    f: int | None = None
    lam: float = 1000.0
    network: NetworkConfig = field(default_factory=NetworkConfig)
    attack: AttackConfig = field(default_factory=AttackConfig)
    num_decisions: int = 1
    seed: int = 0
    max_time: float = 3_600_000.0
    max_events: int = 20_000_000
    allow_horizon: bool = False
    record_trace: bool = False
    protocol_params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check internal consistency; raises ``ConfigurationError``."""
        if not self.protocol:
            raise ConfigurationError("protocol name must be non-empty")
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if self.f is not None and not 0 <= self.f < self.n:
            raise ConfigurationError(f"f must satisfy 0 <= f < n, got f={self.f} n={self.n}")
        if self.lam <= 0:
            raise ConfigurationError(f"lambda must be > 0, got {self.lam}")
        if self.num_decisions < 1:
            raise ConfigurationError("num_decisions must be >= 1")
        if self.max_time <= 0:
            raise ConfigurationError("max_time must be > 0")
        if self.max_events < 1:
            raise ConfigurationError("max_events must be >= 1")
        self.network.validate()

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, suitable for JSON."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimulationConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        data = dict(data)
        network = data.pop("network", None)
        attack = data.pop("attack", None)
        known = {f_.name for f_ in cls.__dataclass_fields__.values()}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown config keys: {sorted(unknown)}")
        config = cls(
            network=NetworkConfig(**network) if isinstance(network, dict) else NetworkConfig(),
            attack=AttackConfig(**attack) if isinstance(attack, dict) else AttackConfig(),
            **data,
        )
        return config

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SimulationConfig":
        return cls.from_dict(json.loads(text))

    def replace(self, **changes: Any) -> "SimulationConfig":
        """A copy with ``changes`` applied (nested keys via new objects)."""
        data = self.to_dict()
        network = data.pop("network")
        attack = data.pop("attack")
        network_changes = changes.pop("network", None)
        attack_changes = changes.pop("attack", None)
        data.update(changes)
        if isinstance(network_changes, NetworkConfig):
            network = asdict(network_changes)
        elif isinstance(network_changes, dict):
            network.update(network_changes)
        if isinstance(attack_changes, AttackConfig):
            attack = asdict(attack_changes)
        elif isinstance(attack_changes, dict):
            attack.update(attack_changes)
        return SimulationConfig.from_dict({**data, "network": network, "attack": attack})
