"""Simulation configuration.

A :class:`SimulationConfig` is the single input to a run, mirroring the
paper's "configuration file specifying the network model and parameters, the
BFT protocol, and, optionally, the attack scenario" (§III-A).  Configurations
are plain dataclasses with dict/JSON round-tripping so experiments can be
scripted, stored, and replayed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any

from .errors import ConfigurationError

#: Broadcast dissemination strategies accepted by ``NetworkConfig``.
DISSEMINATION_MODES = ("full", "tree", "gossip")


@dataclass
class NetworkConfig:
    """Parameters of the simulated peer-to-peer network.

    Attributes:
        distribution: name of the delay distribution registered in
            :mod:`repro.network.delays` (``"normal"``, ``"uniform"``,
            ``"exponential"``, ``"lognormal"``, ``"poisson"``, ``"constant"``).
        mean: distribution mean in milliseconds (the paper's ``mu``).
        std: standard deviation in milliseconds (the paper's ``sigma``);
            ignored by distributions without a spread parameter.
        min_delay: hard lower bound applied after sampling; physical links
            never deliver instantaneously, and a strictly positive floor also
            guarantees simulation progress.
        max_delay: optional hard upper bound ``b``.  Setting it simulates a
            synchronous (``b <= lambda``) or partially-synchronous network
            (bound exists but the protocol's ``lambda`` underestimates it);
            leaving it ``None`` simulates an asynchronous network.
        gst: global stabilization time (ms).  Before GST, sampled delays are
            multiplied by :attr:`pre_gst_factor` and :attr:`max_delay` is not
            enforced, modelling the unstable period of a partially-synchronous
            network.  ``0`` means the network is stable from the start.
        pre_gst_factor: delay multiplier applied before GST.
        dissemination: broadcast dissemination strategy (see
            :mod:`repro.network.dissemination`): ``"full"`` — the sender
            transmits one unicast per peer (the classic O(n) fan-out, and
            the byte-identical historical behaviour); ``"tree"`` — a
            deterministic k-ary spanning tree rooted at the sender relays
            the broadcast; ``"gossip"`` — a seed-deterministic fanout-f
            push overlay drawn per broadcast.  Unicasts are unaffected.
        fanout: relay fan-out for ``tree``/``gossip`` (``k`` resp. ``f``).
            ``0`` (default) resolves to ``max(2, ceil(sqrt(n)))`` — depth-2
            overlays that keep end-to-end latency within a small multiple
            of the unicast delay.  Ignored by ``"full"``.
    """

    distribution: str = "normal"
    mean: float = 250.0
    std: float = 50.0
    min_delay: float = 1.0
    max_delay: float | None = None
    gst: float = 0.0
    pre_gst_factor: float = 10.0
    dissemination: str = "full"
    fanout: int = 0

    def validate(self) -> None:
        if self.mean <= 0:
            raise ConfigurationError(f"network mean delay must be > 0, got {self.mean}")
        if self.std < 0:
            raise ConfigurationError(f"network std must be >= 0, got {self.std}")
        if self.min_delay <= 0:
            raise ConfigurationError(
                f"min_delay must be > 0 to guarantee progress, got {self.min_delay}"
            )
        if self.max_delay is not None and self.max_delay < self.min_delay:
            raise ConfigurationError("max_delay must be >= min_delay")
        if self.gst < 0:
            raise ConfigurationError("gst must be >= 0")
        if self.pre_gst_factor < 1.0:
            raise ConfigurationError("pre_gst_factor must be >= 1")
        if self.dissemination not in DISSEMINATION_MODES:
            raise ConfigurationError(
                f"unknown dissemination mode {self.dissemination!r}; "
                f"available: {list(DISSEMINATION_MODES)}"
            )
        if not isinstance(self.fanout, int) or self.fanout < 0:
            raise ConfigurationError(
                f"fanout must be a non-negative integer (0 = auto), got {self.fanout!r}"
            )


#: Fault kinds accepted by :class:`FaultSpec`.
FAULT_KINDS = ("loss", "duplicate", "corrupt", "delay", "link-down", "crash")

#: Fault kinds applied per message on a link (everything except ``crash``).
LINK_FAULT_KINDS = ("loss", "duplicate", "corrupt", "delay", "link-down")


@dataclass
class FaultSpec:
    """One environmental fault process (see :mod:`repro.faults`).

    These are *benign environment* faults — lossy links, flaky hardware,
    node churn — applied by the network/controller layers independently of
    the attacker module.  They are never charged against the attacker's
    capabilities or corruption budget.

    Attributes:
        kind: one of :data:`FAULT_KINDS`:

            * ``"loss"`` — drop each matching message with probability
              ``rate``;
            * ``"duplicate"`` — deliver an extra copy (independent delay)
              with probability ``rate``;
            * ``"corrupt"`` — tamper the payload with probability ``rate``;
              receivers reject tampered messages (failed signature /
              checksum verification), they are never dispatched to protocol
              logic;
            * ``"delay"`` — multiply the sampled delay by ``factor`` with
              probability ``rate``;
            * ``"link-down"`` — drop *every* matching message inside the
              window (timed link churn);
            * ``"crash"`` — crash ``node`` at ``start``; recover it at
              ``end`` (``None`` = never: a permanent fail-stop).
        rate: per-message probability for the stochastic kinds.
        factor: delay multiplier for ``kind="delay"``.
        start: window start in ms (for ``crash``: the crash time).
        end: window end in ms, exclusive (``None`` = open / never; for
            ``crash``: the recovery time).
        node: crash target (``crash`` only).
        src: restrict to messages from these sources (``None`` = all).
        dst: restrict to messages to these destinations (``None`` = all).
    """

    kind: str
    rate: float = 0.0
    factor: float = 1.0
    start: float = 0.0
    end: float | None = None
    node: int | None = None
    src: list[int] | None = None
    dst: list[int] | None = None

    def validate(self, n: int | None = None) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; available: {list(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"fault rate must be in [0, 1], got {self.rate} for {self.kind!r}"
            )
        if self.factor < 1.0:
            raise ConfigurationError(
                f"delay fault factor must be >= 1, got {self.factor}"
            )
        if self.start < 0:
            raise ConfigurationError(f"fault window start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ConfigurationError(
                f"fault window end must be > start, got [{self.start}, {self.end})"
            )
        if self.kind == "crash":
            if self.node is None:
                raise ConfigurationError("crash fault requires a target node")
            if n is not None and not 0 <= self.node < n:
                raise ConfigurationError(
                    f"crash fault targets node {self.node}, but n={n}"
                )
        elif self.kind in ("loss", "duplicate", "corrupt", "delay") and self.rate == 0.0:
            raise ConfigurationError(f"{self.kind!r} fault with rate=0 has no effect")
        if n is not None:
            for label, nodes in (("src", self.src), ("dst", self.dst)):
                for node in nodes or ():
                    if not 0 <= node < n:
                        raise ConfigurationError(
                            f"fault {label} scope names node {node}, but n={n}"
                        )

    def in_window(self, time: float) -> bool:
        """True when ``time`` falls inside ``[start, end)``."""
        return time >= self.start and (self.end is None or time < self.end)

    def matches_link(self, source: int, dest: int) -> bool:
        """True when the spec's src/dst scope covers the given link."""
        if self.src is not None and source not in self.src:
            return False
        return self.dst is None or dest in self.dst

    def describe(self) -> str:
        window = f"@{self.start:g}:{'' if self.end is None else f'{self.end:g}'}"
        if self.kind == "crash":
            return f"crash(node={self.node}){window}"
        extra = f"x{self.factor:g}" if self.kind == "delay" else ""
        return f"{self.kind}({self.rate:g}{extra}){window}"


@dataclass
class FaultScheduleConfig:
    """The declarative environmental fault schedule of a run.

    An empty schedule (the default) adds zero overhead and leaves every
    existing configuration byte-identical in serialized form, so
    fingerprints of fault-free runs are unchanged across versions.

    Attributes:
        specs: the fault processes, applied in order per message.
    """

    specs: list[FaultSpec] = field(default_factory=list)

    def active(self) -> bool:
        """True when the schedule contains any fault process."""
        return bool(self.specs)

    def link_specs(self) -> list[FaultSpec]:
        """The per-message (link-level) fault processes, in schedule order."""
        return [s for s in self.specs if s.kind in LINK_FAULT_KINDS]

    def crash_specs(self) -> list[FaultSpec]:
        """The node crash/recovery processes, in schedule order."""
        return [s for s in self.specs if s.kind == "crash"]

    def requires_recovery(self) -> bool:
        """True when any crash is followed by a scheduled recovery."""
        return any(s.end is not None for s in self.crash_specs())

    def validate(self, n: int | None = None) -> None:
        for spec in self.specs:
            spec.validate(n)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultScheduleConfig":
        specs = [
            spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
            for spec in data.get("specs", [])
        ]
        unknown = set(data) - {"specs"}
        if unknown:
            raise ConfigurationError(f"unknown fault schedule keys: {sorted(unknown)}")
        return cls(specs=specs)

    def describe(self) -> str:
        return "; ".join(spec.describe() for spec in self.specs) or "<none>"


#: Arrival processes accepted by :class:`WorkloadConfig`.
ARRIVAL_PROCESSES = ("poisson", "trace")


@dataclass
class WorkloadConfig:
    """Open-loop client workload (see :mod:`repro.workload`).

    ``SimulationConfig.workload`` is ``None`` by default: no clients, no
    mempool, no extra RNG substream, and a serialized form byte-identical
    to what older versions produced — attaching a workload is strictly
    opt-in, exactly like the fault schedule.

    Attributes:
        arrival: ``"poisson"`` — each client submits requests as an
            independent Poisson process at ``rate / clients`` requests per
            second over ``duration`` ms; ``"trace"`` — requests are
            submitted at exactly the times in :attr:`trace_times`
            (assigned to clients round-robin), standing in for a recorded
            production arrival trace.
        rate: aggregate offered load across all clients, requests/second
            (Poisson arrivals only).
        clients: number of open-loop clients.  Each client draws its
            arrivals on a dedicated ``workload.{client}`` substream, so
            adding clients never perturbs another client's arrival times.
        duration: arrival window in simulated ms — clients stop submitting
            after this point, which makes the request population finite
            and the run's termination well-defined (all submitted requests
            decided).
        batch: mempool batch size — a proposer cuts at most this many
            requests into one proposal (the size trigger).
        batch_timeout: mempool batch age trigger, ms — a proposer cuts a
            partial batch once the oldest pending request has waited this
            long (until then small young backlogs ride along with the
            synthetic proposal path).
        trace_times: explicit submit times in ms for ``arrival="trace"``.
    """

    arrival: str = "poisson"
    rate: float = 100.0
    clients: int = 1
    duration: float = 1000.0
    batch: int = 64
    batch_timeout: float = 50.0
    trace_times: list[float] | None = None

    def validate(self) -> None:
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ConfigurationError(
                f"unknown arrival process {self.arrival!r}; "
                f"available: {list(ARRIVAL_PROCESSES)}"
            )
        if self.clients < 1:
            raise ConfigurationError(
                f"workload clients must be >= 1, got {self.clients}"
            )
        if self.batch < 1:
            raise ConfigurationError(
                f"workload batch size must be >= 1, got {self.batch}"
            )
        if self.batch_timeout < 0:
            raise ConfigurationError(
                f"workload batch_timeout must be >= 0 ms, got {self.batch_timeout}"
            )
        if self.arrival == "poisson":
            if self.rate <= 0:
                raise ConfigurationError(
                    f"workload rate must be > 0 requests/s, got {self.rate}"
                )
            if self.duration <= 0:
                raise ConfigurationError(
                    f"workload duration must be > 0 ms, got {self.duration}"
                )
        else:  # trace
            if not self.trace_times:
                raise ConfigurationError(
                    "arrival='trace' requires a non-empty trace_times list"
                )
            if any(t < 0 for t in self.trace_times):
                raise ConfigurationError("trace_times must all be >= 0 ms")

    def describe(self) -> str:
        if self.arrival == "trace":
            return (
                f"trace({len(self.trace_times or [])} requests, "
                f"clients={self.clients}, batch={self.batch})"
            )
        return (
            f"poisson(rate={self.rate:g}/s, clients={self.clients}, "
            f"duration={self.duration:g}ms, batch={self.batch})"
        )


@dataclass
class AttackConfig:
    """Selects and parameterizes an attack from :mod:`repro.attacks`.

    Attributes:
        name: registry name of the attacker (e.g. ``"failstop"``,
            ``"partition"``, ``"add-static"``, ``"add-adaptive"``).
        params: attacker-specific parameters, passed through verbatim.
    """

    name: str = "null"
    params: dict[str, Any] = field(default_factory=dict)


@dataclass
class SimulationConfig:
    """Complete description of one simulation run.

    Attributes:
        protocol: registry name of the BFT protocol (see
            :mod:`repro.protocols.registry`), e.g. ``"pbft"``,
            ``"hotstuff-ns"``, ``"librabft"``, ``"algorand"``, ``"async-ba"``,
            ``"add-v1"``, ``"add-v2"``, ``"add-v3"``.
        n: total number of nodes (honest + Byzantine).
        f: number of tolerated faulty nodes.  ``None`` resolves to the
            protocol's maximum resilience (``floor((n-1)/3)`` for partially
            synchronous and asynchronous protocols, ``floor((n-1)/2)`` for
            synchronous ones).
        lam: the protocol's timeout parameter lambda in milliseconds — the
            *estimated* upper bound of network delay that synchronous and
            partially-synchronous protocols are configured with (§IV).
        network: network model parameters.
        attack: optional attack scenario.
        faults: declarative environmental fault schedule (message loss,
            duplication, corruption, link churn, node crash/recovery) —
            applied by the environment, orthogonally to the attacker and
            never charged against its capabilities.  Empty by default.
        workload: optional open-loop client workload (see
            :mod:`repro.workload`): arrival process, mempool batching, and
            a throughput/latency axis on the result.  ``None`` (default)
            keeps runs workload-free and byte-identical to older versions.
        stall_timeout: liveness-watchdog window in simulated ms.  When set,
            a run in which no honest node makes progress (decision, view
            advance, or delivered message) for this long stops gracefully
            with a :class:`~repro.core.results.StallReport` instead of
            spinning to the horizon and raising.  ``None`` (default)
            disables the watchdog.
        num_decisions: how many values must be decided before the run
            terminates.  The paper uses 10 for the pipelined protocols
            (HotStuff+NS, LibraBFT) and 1 for the rest (§IV).
        seed: root random seed; every run is a deterministic function of the
            full configuration including this seed.
        max_time: simulation horizon in ms; exceeding it raises
            :class:`~repro.core.errors.LivenessTimeoutError` unless
            ``allow_horizon`` is set.
        max_events: hard cap on processed events (runaway protection).
        allow_horizon: when True, hitting ``max_time`` ends the run with
            ``terminated=False`` instead of raising; used by experiments that
            deliberately explore non-terminating regimes.
        record_trace: record a full event trace (needed by the validator
            module and the Fig. 9 view-timeline analysis).
        protocol_params: protocol-specific overrides (documented per
            protocol), passed through verbatim.
    """

    protocol: str
    n: int = 16
    f: int | None = None
    lam: float = 1000.0
    network: NetworkConfig = field(default_factory=NetworkConfig)
    attack: AttackConfig = field(default_factory=AttackConfig)
    faults: FaultScheduleConfig = field(default_factory=FaultScheduleConfig)
    workload: WorkloadConfig | None = None
    stall_timeout: float | None = None
    num_decisions: int = 1
    seed: int = 0
    max_time: float = 3_600_000.0
    max_events: int = 20_000_000
    allow_horizon: bool = False
    record_trace: bool = False
    protocol_params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check internal consistency; raises ``ConfigurationError``."""
        if not self.protocol:
            raise ConfigurationError("protocol name must be non-empty")
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if self.f is not None and not 0 <= self.f < self.n:
            raise ConfigurationError(f"f must satisfy 0 <= f < n, got f={self.f} n={self.n}")
        if self.lam <= 0:
            raise ConfigurationError(f"lambda must be > 0, got {self.lam}")
        if self.num_decisions < 1:
            raise ConfigurationError("num_decisions must be >= 1")
        if self.max_time <= 0:
            raise ConfigurationError("max_time must be > 0")
        if self.max_events < 1:
            raise ConfigurationError("max_events must be >= 1")
        if self.stall_timeout is not None and self.stall_timeout <= 0:
            raise ConfigurationError(
                f"stall_timeout must be > 0 ms (or None), got {self.stall_timeout}"
            )
        self.network.validate()
        self.faults.validate(self.n)
        if self.workload is not None:
            self.workload.validate()

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, suitable for JSON.

        Fields at their benign defaults (an empty fault schedule, a disabled
        watchdog, full-fan-out dissemination) are omitted, so the serialized
        form — and therefore the ``result_fingerprint`` of fault-free runs —
        is identical to what older versions produced.
        """
        data = asdict(self)
        if not self.faults.active():
            data.pop("faults")
        if self.workload is None:
            data.pop("workload")
        elif data["workload"]["trace_times"] is None:
            data["workload"].pop("trace_times")
        if self.stall_timeout is None:
            data.pop("stall_timeout")
        network = data["network"]
        if network["dissemination"] == "full":
            network.pop("dissemination")
        if network["fanout"] == 0:
            network.pop("fanout")
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimulationConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        data = dict(data)
        network = data.pop("network", None)
        attack = data.pop("attack", None)
        faults = data.pop("faults", None)
        workload = data.pop("workload", None)
        known = {f_.name for f_ in cls.__dataclass_fields__.values()}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown config keys: {sorted(unknown)}")
        if isinstance(workload, dict):
            workload_known = {
                f_.name for f_ in WorkloadConfig.__dataclass_fields__.values()
            }
            workload_unknown = set(workload) - workload_known
            if workload_unknown:
                raise ConfigurationError(
                    f"unknown workload keys: {sorted(workload_unknown)}"
                )
        config = cls(
            network=NetworkConfig(**network) if isinstance(network, dict) else NetworkConfig(),
            attack=AttackConfig(**attack) if isinstance(attack, dict) else AttackConfig(),
            faults=(
                FaultScheduleConfig.from_dict(faults)
                if isinstance(faults, dict)
                else FaultScheduleConfig()
            ),
            workload=(
                workload if isinstance(workload, WorkloadConfig)
                else WorkloadConfig(**workload) if isinstance(workload, dict)
                else None
            ),
            **data,
        )
        return config

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SimulationConfig":
        return cls.from_dict(json.loads(text))

    def replace(self, **changes: Any) -> "SimulationConfig":
        """A copy with ``changes`` applied (nested keys via new objects)."""
        data = self.to_dict()
        network = data.pop("network")
        attack = data.pop("attack")
        faults = data.pop("faults", None)
        workload = data.pop("workload", None)
        network_changes = changes.pop("network", None)
        attack_changes = changes.pop("attack", None)
        faults_changes = changes.pop("faults", None)
        unset = object()
        workload_changes = changes.pop("workload", unset)
        data.update(changes)
        if isinstance(network_changes, NetworkConfig):
            network = asdict(network_changes)
        elif isinstance(network_changes, dict):
            network.update(network_changes)
        if isinstance(attack_changes, AttackConfig):
            attack = asdict(attack_changes)
        elif isinstance(attack_changes, dict):
            attack.update(attack_changes)
        if isinstance(faults_changes, FaultScheduleConfig):
            faults = asdict(faults_changes)
        elif isinstance(faults_changes, dict):
            faults = dict(faults_changes)
        elif isinstance(faults_changes, list):
            faults = {"specs": [
                asdict(s) if isinstance(s, FaultSpec) else dict(s)
                for s in faults_changes
            ]}
        if workload_changes is not unset:
            if workload_changes is None:
                workload = None
            elif isinstance(workload_changes, WorkloadConfig):
                workload = asdict(workload_changes)
            elif isinstance(workload_changes, dict):
                # Merge into the current workload (or the defaults when the
                # config had none), mirroring the network/attack semantics.
                base_workload = workload if workload is not None else asdict(
                    WorkloadConfig()
                )
                base_workload = dict(base_workload)
                base_workload.update(workload_changes)
                workload = base_workload
        merged = {**data, "network": network, "attack": attack}
        if faults is not None:
            merged["faults"] = faults
        if workload is not None:
            merged["workload"] = workload
        return SimulationConfig.from_dict(merged)
