"""Core simulator machinery: events, clock, controller, config, metrics."""

from .config import AttackConfig, NetworkConfig, SimulationConfig
from .controller import Controller
from .events import EventQueue, MessageEvent, TimeEvent
from .message import BROADCAST, Message
from .metrics import Decision, MessageCounts, MetricsCollector
from .node import Node, NodeEnvironment, TimerHandle
from .results import SimulationResult
from .runner import repeat_simulation, run_simulation
from .tracing import Trace, TraceEvent

__all__ = [
    "AttackConfig", "BROADCAST", "Controller", "Decision", "EventQueue",
    "Message", "MessageCounts", "MessageEvent", "MetricsCollector",
    "NetworkConfig", "Node", "NodeEnvironment", "SimulationConfig",
    "SimulationResult", "TimeEvent", "TimerHandle", "Trace", "TraceEvent",
    "repeat_simulation", "run_simulation",
]
