"""Execution tracing.

A trace is an ordered record of everything observable about a run: message
sends and deliveries, timer firings, protocol-reported events (view changes,
phase transitions), corruptions, and decisions.  Traces feed three consumers:

* the **validator module** (:mod:`repro.validator`), which replays and
  cross-checks traces against ground truth;
* the **view-synchronization analysis** behind the paper's Fig. 9
  (:mod:`repro.analysis.viewtrace`);
* debugging, via :meth:`Trace.format`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One observable occurrence during a simulation.

    Attributes:
        time: simulation time in ms.
        kind: category string.  Core kinds emitted by the controller/network:
            ``"send"``, ``"deliver"``, ``"drop"``, ``"timer"``, ``"corrupt"``,
            ``"decide"``.  Protocols add their own kinds through
            ``Node.report`` (e.g. ``"view-change"``, ``"commit"``).
        node: primary node involved (destination for deliveries, reporter
            for protocol events); ``-1`` when not node-specific.
        fields: kind-specific details (message type, view number, value...).
    """

    time: float
    kind: str
    node: int = -1
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"time": self.time, "kind": self.kind, "node": self.node, **self.fields}

    def matches(self, **expected: Any) -> bool:
        """True if every expected key equals the event's value for it."""
        own = self.to_dict()
        return all(own.get(key) == value for key, value in expected.items())


class Trace:
    """An append-only sequence of :class:`TraceEvent` objects.

    Recording can be disabled wholesale (``enabled=False``) so the hot path
    of large simulations pays a single branch per event.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: list[TraceEvent] = []

    def record(self, time: float, kind: str, node: int = -1, **fields: Any) -> None:
        """Append an event (no-op while disabled)."""
        if self.enabled:
            self._events.append(TraceEvent(time=time, kind=kind, node=node, fields=fields))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    def events(self, kind: str | None = None, node: int | None = None) -> list[TraceEvent]:
        """Events filtered by ``kind`` and/or ``node``."""
        out: Iterable[TraceEvent] = self._events
        if kind is not None:
            out = (e for e in out if e.kind == kind)
        if node is not None:
            out = (e for e in out if e.node == node)
        return list(out)

    def where(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        """Events satisfying an arbitrary predicate."""
        return [e for e in self._events if predicate(e)]

    def to_jsonl(self) -> str:
        """One JSON object per line — the interchange format the validator
        accepts as ground truth."""
        return "\n".join(json.dumps(e.to_dict(), sort_keys=True) for e in self._events)

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Parse a trace previously produced by :meth:`to_jsonl` (or by an
        external tool emitting the same schema)."""
        trace = cls(enabled=True)
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            time = data.pop("time")
            kind = data.pop("kind")
            node = data.pop("node", -1)
            trace.record(time, kind, node, **data)
        return trace

    def format(self, limit: int | None = 50) -> str:
        """Human-readable rendering of (the first ``limit``) events."""
        shown = self._events if limit is None else self._events[:limit]
        lines = [
            f"{e.time:12.3f}  {e.kind:<12} node={e.node:<4} "
            + " ".join(f"{k}={v}" for k, v in sorted(e.fields.items()))
            for e in shown
        ]
        if limit is not None and len(self._events) > limit:
            lines.append(f"... ({len(self._events) - limit} more events)")
        return "\n".join(lines)
