"""Execution tracing: events, sinks, and the :class:`Trace` facade.

A trace is an ordered record of everything observable about a run: message
sends and deliveries, timer firings, protocol-reported events (view changes,
phase transitions), corruptions, and decisions.  Traces feed three consumers:

* the **validator module** (:mod:`repro.validator`), which replays and
  cross-checks traces against ground truth;
* the **view-synchronization analysis** behind the paper's Fig. 9
  (:mod:`repro.analysis.viewtrace`);
* debugging and forensics, via :meth:`Trace.format` and the ``repro
  inspect`` CLI (:mod:`repro.observability.inspect`).

Storage is pluggable: a :class:`Trace` forwards every recorded event to a
:class:`TraceSink`.  :class:`MemorySink` (the default) buffers events in
memory exactly as the pre-sink ``Trace`` did; :class:`JsonlSink` streams
events to a newline-delimited JSON file with *bounded* memory, so
million-event runs can record full traces to disk without OOM;
:class:`NullSink` counts and discards.  Every sink accepts an optional
:class:`EventFilter` restricting what it keeps by kind, node, and time
window.

The sink classes live here (the :class:`Trace` facade needs them) and are
re-exported by :mod:`repro.observability.sinks`, the telemetry subsystem's
public namespace.
"""

from __future__ import annotations

import gzip
import io
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from .errors import SimulationError


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One observable occurrence during a simulation.

    Attributes:
        time: simulation time in ms.
        kind: category string.  Core kinds emitted by the controller/network:
            ``"send"``, ``"deliver"``, ``"drop"``, ``"timer"``, ``"corrupt"``,
            ``"decide"``.  Protocols add their own kinds through
            ``Node.report`` (e.g. ``"view-change"``, ``"commit"``).
        node: primary node involved (destination for deliveries, reporter
            for protocol events); ``-1`` when not node-specific.
        fields: kind-specific details (message type, view number, value...).
    """

    time: float
    kind: str
    node: int = -1
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"time": self.time, "kind": self.kind, "node": self.node, **self.fields}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_dict` (remaining keys become ``fields``)."""
        data = dict(data)
        time = data.pop("time")
        kind = data.pop("kind")
        node = data.pop("node", -1)
        return cls(time=time, kind=kind, node=node, fields=data)

    def to_json(self) -> str:
        """The event's one-line JSONL form."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def matches(self, **expected: Any) -> bool:
        """True if every expected key equals the event's value for it."""
        own = self.to_dict()
        return all(own.get(key) == value for key, value in expected.items())


class TraceBufferUnavailable(SimulationError):
    """Raised when a sink cannot hand back the events it accepted."""


def open_trace_text(path: str | os.PathLike[str]) -> io.TextIOBase:
    """Open a JSONL trace file for reading, gzip-transparent.

    Paths ending in ``.gz`` are decompressed on the fly (multi-member
    archives — produced by a sink reopened after pickling — read as one
    stream).  The shared reader used by :meth:`JsonlSink.iter_events` and
    ``repro inspect``.
    """
    text = os.fspath(path)
    if text.endswith(".gz"):
        return gzip.open(text, "rt", encoding="utf-8")
    return open(text, encoding="utf-8")


@dataclass(frozen=True)
class EventFilter:
    """Declarative predicate restricting which events a sink keeps.

    All clauses must hold (conjunction); an unset clause admits everything.

    Attributes:
        kinds: event kinds to keep (``None`` = all kinds).
        nodes: node ids to keep (``None`` = all nodes); events with
            ``node=-1`` (not node-specific) always pass a node clause.
        start: keep events with ``time >= start``.
        end: keep events with ``time < end`` (``None`` = no upper bound).
    """

    kinds: frozenset[str] | None = None
    nodes: frozenset[int] | None = None
    start: float = 0.0
    end: float | None = None

    def admits(self, event: TraceEvent) -> bool:
        """True when ``event`` passes every clause."""
        if event.time < self.start:
            return False
        if self.end is not None and event.time >= self.end:
            return False
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        if self.nodes is not None and event.node != -1 and event.node not in self.nodes:
            return False
        return True

    @classmethod
    def parse(cls, text: str) -> "EventFilter":
        """Parse the CLI grammar ``"kind=a,b; node=0,1; window=START:END"``.

        Clauses are semicolon-separated; ``kinds``/``nodes`` are accepted as
        aliases, and either bound of ``window`` may be left empty
        (``window=5000:`` keeps everything from 5 s on).
        """
        kinds: frozenset[str] | None = None
        nodes: frozenset[int] | None = None
        start, end = 0.0, None
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if "=" not in clause:
                raise ValueError(
                    f"bad trace filter clause {clause!r}: expected key=value"
                )
            key, _, value = clause.partition("=")
            key = key.strip().rstrip("s")  # kind/kinds, node/nodes
            if key == "kind":
                kinds = frozenset(k.strip() for k in value.split(",") if k.strip())
            elif key == "node":
                nodes = frozenset(int(v) for v in value.split(",") if v.strip())
            elif key == "window":
                lo, _, hi = value.partition(":")
                start = float(lo) if lo.strip() else 0.0
                end = float(hi) if hi.strip() else None
            else:
                raise ValueError(
                    f"unknown trace filter key {key!r}; expected kind, node, or window"
                )
        return cls(kinds=kinds, nodes=nodes, start=start, end=end)

    def describe(self) -> str:
        parts = []
        if self.kinds is not None:
            parts.append(f"kind={','.join(sorted(self.kinds))}")
        if self.nodes is not None:
            parts.append(f"node={','.join(str(n) for n in sorted(self.nodes))}")
        if self.start or self.end is not None:
            hi = "" if self.end is None else f"{self.end:g}"
            parts.append(f"window={self.start:g}:{hi}")
        return "; ".join(parts) or "<all events>"


class TraceSink:
    """Receives every event a :class:`Trace` records.

    Subclasses implement :meth:`_accept` (store/write one event) and usually
    :meth:`events` (hand the accepted events back).  The base class applies
    the optional :class:`EventFilter` and maintains :attr:`count`, the
    number of events *accepted* (events the filter rejected are not
    counted).
    """

    def __init__(self, filter: EventFilter | None = None) -> None:
        self.filter = filter
        self.count = 0

    def emit(self, event: TraceEvent) -> None:
        """Offer one event to the sink (filtered, counted, then accepted)."""
        if self.filter is not None and not self.filter.admits(event):
            return
        self.count += 1
        self._accept(event)

    def _accept(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def events(self) -> list[TraceEvent]:
        """The accepted events, in acceptance order."""
        raise TraceBufferUnavailable(
            f"{type(self).__name__} does not buffer events"
        )

    def flush(self) -> None:
        """Push buffered bytes to durable storage (no-op by default)."""

    def close(self) -> None:
        """Release resources; the sink may still serve :meth:`events`."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Close on scope exit — exceptions included — so a crashed run
        still leaves the sink's storage readable (truncated but valid)."""
        self.close()


class MemorySink(TraceSink):
    """Buffers every accepted event in memory (the classic ``Trace`` list).

    The default sink: cheap, random-access, and what the validator replay
    and Fig. 9 view-timeline analysis consume.  Memory grows linearly with
    the event count — for million-event runs use :class:`JsonlSink`.
    """

    def __init__(self, filter: EventFilter | None = None) -> None:
        super().__init__(filter)
        self._events: list[TraceEvent] = []

    def _accept(self, event: TraceEvent) -> None:
        self._events.append(event)

    def events(self) -> list[TraceEvent]:
        return self._events


class NullSink(TraceSink):
    """Counts accepted events and discards them.

    Useful to measure tracing overhead (the record path runs, storage
    does not) and as an explicit "no trace wanted" marker.
    """

    def _accept(self, event: TraceEvent) -> None:
        pass

    def events(self) -> list[TraceEvent]:
        return []


class JsonlSink(TraceSink):
    """Streams accepted events to a newline-delimited JSON file.

    Peak memory is bounded by the write buffer (constant size) no matter
    how many events the run records — the sink that makes full traces of
    the paper's scalability experiments (§V) practical.  The file format is
    exactly :meth:`Trace.to_jsonl`, so ``Trace.from_jsonl``, the validator,
    and ``repro inspect`` all read it back.

    A path ending in ``.gz`` (e.g. ``trace.jsonl.gz``) writes gzip-
    compressed JSONL instead — million-event traces shrink by an order of
    magnitude on disk.  Reads (:meth:`iter_events`, ``repro inspect``,
    :func:`~repro.observability.inspect.analyze_trace`) decompress
    transparently, and a post-pickle reopen appends a second gzip member,
    which every reader also handles transparently.

    The sink is picklable (results cross worker-process pipes): pickling
    flushes and drops the OS file handle, which transparently reopens in
    append mode if more events arrive.

    Args:
        path: output file path; truncated when the first event arrives.
        filter: optional :class:`EventFilter`.
        buffer_bytes: size of the write buffer (the memory bound; advisory
            for gzip paths, which buffer inside the compressor).
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        filter: EventFilter | None = None,
        buffer_bytes: int = 1 << 16,
    ) -> None:
        super().__init__(filter)
        self.path = os.fspath(path)
        self._buffer_bytes = buffer_bytes
        self._handle: io.TextIOWrapper | None = None

    def _accept(self, event: TraceEvent) -> None:
        if self._handle is None:
            # First event truncates; a reopen (after close/pickle) appends.
            mode = "w" if self.count <= 1 else "a"
            if self.path.endswith(".gz"):
                self._handle = gzip.open(self.path, mode + "t", encoding="utf-8")
            else:
                self._handle = open(
                    self.path, mode, buffering=self._buffer_bytes,
                    encoding="utf-8",
                )
        self._handle.write(event.to_json() + "\n")

    def events(self) -> list[TraceEvent]:
        """Read the accepted events back from disk.

        Materializes the whole file — recording stays bounded, reading back
        is an explicit loader (prefer :meth:`iter_events` for streaming).
        """
        return list(self.iter_events())

    def iter_events(self) -> Iterator[TraceEvent]:
        """Stream the accepted events back from disk, one at a time."""
        self.flush()
        if self.count == 0 or not os.path.exists(self.path):
            return
        with open_trace_text(self.path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield TraceEvent.from_dict(json.loads(line))

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __getstate__(self) -> dict[str, Any]:
        self.close()
        return self.__dict__.copy()


class Trace:
    """An append-only sequence of :class:`TraceEvent` objects.

    Recording can be disabled wholesale (``enabled=False``) so the hot path
    of large simulations pays a single branch per event.  Storage is
    delegated to a :class:`TraceSink` (default: :class:`MemorySink`, which
    preserves the historical in-memory behavior exactly); the read API
    (:meth:`events`, iteration, indexing) asks the sink for its buffer, so
    it works wherever the sink can hand events back.
    """

    def __init__(self, enabled: bool = True, sink: TraceSink | None = None) -> None:
        self.enabled = enabled
        self.sink = sink if sink is not None else MemorySink()

    def record(self, time: float, kind: str, node: int = -1, **fields: Any) -> None:
        """Append an event (no-op while disabled)."""
        if self.enabled:
            self.sink.emit(TraceEvent(time=time, kind=kind, node=node, fields=fields))

    def __len__(self) -> int:
        return self.sink.count

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.sink.events())

    def __getitem__(self, index: int) -> TraceEvent:
        return self.sink.events()[index]

    def events(self, kind: str | None = None, node: int | None = None) -> list[TraceEvent]:
        """Events filtered by ``kind`` and/or ``node``."""
        out: Iterable[TraceEvent] = self.sink.events()
        if kind is not None:
            out = (e for e in out if e.kind == kind)
        if node is not None:
            out = (e for e in out if e.node == node)
        return list(out)

    def where(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        """Events satisfying an arbitrary predicate."""
        return [e for e in self.sink.events() if predicate(e)]

    def flush(self) -> None:
        """Flush the sink's buffered bytes (if any)."""
        self.sink.flush()

    def close(self) -> None:
        """Close the sink; reading events back remains possible."""
        self.sink.close()

    def to_jsonl(self) -> str:
        """One JSON object per line — the interchange format the validator
        accepts as ground truth (and the exact on-disk format of
        :class:`JsonlSink`)."""
        return "\n".join(e.to_json() for e in self.sink.events())

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Parse a trace previously produced by :meth:`to_jsonl` (or by an
        external tool emitting the same schema)."""
        trace = cls(enabled=True)
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            time = data.pop("time")
            kind = data.pop("kind")
            node = data.pop("node", -1)
            trace.record(time, kind, node, **data)
        return trace

    def format(self, limit: int | None = 50) -> str:
        """Human-readable rendering of (the first ``limit``) events.

        When ``limit`` truncates the trace, an explicit
        ``"... (+N more events)"`` tail line says so — silent truncation
        reads as "that was everything" when it was not.
        """
        events = self.sink.events()
        shown = events if limit is None else events[:limit]
        lines = [
            f"{e.time:12.3f}  {e.kind:<12} node={e.node:<4} "
            + " ".join(f"{k}={v}" for k, v in sorted(e.fields.items()))
            for e in shown
        ]
        if limit is not None and len(events) > limit:
            lines.append(f"... (+{len(events) - limit} more events)")
        return "\n".join(lines)
