"""High-level entry points for running simulations.

:func:`run_simulation` executes one configuration; :func:`repeat_simulation`
re-runs it under different seeds — the paper repeats every experiment 100
times and reports mean and standard deviation (§IV).  Both
:func:`repeat_simulation` and :func:`sweep` accept ``jobs`` to fan the
(independent, deterministic) runs across CPU cores via
:class:`repro.parallel.ParallelRunner`; parallel execution returns exactly
the results serial execution would, in the same order — only
``wall_clock_seconds`` (host time) differs.

For large systems (n in the hundreds to 1000), select a relayed
dissemination overlay (``NetworkConfig.dissemination = "tree"`` or
``"gossip"``) — broadcasts then cost one shared delivery event and one
vectorized delay batch instead of per-recipient copies; see
``docs/scaling.md`` and ``benchmarks/bench_scale.py``.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..observability.health import DEFAULT_WINDOW_MS, HealthMonitor
from ..observability.metrics import DEFAULT_INTERVAL_MS, MetricsRegistry
from ..observability.profiler import Profiler
from .config import SimulationConfig
from .controller import Controller
from .errors import ExperimentFailureError
from .results import RunFailure, SimulationResult
from .tracing import TraceSink

#: Allowed ``on_error`` policies for batched runs.
ON_ERROR_POLICIES = ("raise", "record")


def run_simulation(
    config: SimulationConfig,
    *,
    sink: TraceSink | None = None,
    profile: bool = False,
    metrics: bool | float = False,
    lineage: bool = True,
    health: bool | float = False,
) -> SimulationResult:
    """Build a controller for ``config``, run it, return the result.

    The run is a deterministic function of ``config`` (including its seed):
    calling this twice with an equal configuration yields identical results,
    event counts, and traces.  The telemetry keywords never change what the
    run computes — ``result_fingerprint`` is identical with them on or off.

    Args:
        config: the run's configuration.
        sink: optional :class:`~repro.core.tracing.TraceSink` to stream the
            run's trace into (e.g. a
            :class:`~repro.observability.sinks.JsonlSink`); enables tracing
            regardless of ``config.record_trace``.
        profile: time the engine's hot sections and attach a
            :class:`~repro.observability.profiler.RunProfile` to
            ``result.profile``.
        metrics: sample engine metrics (queue depth, in-flight messages,
            wire bytes, delivery latency) on the simulated clock and attach
            a :class:`~repro.observability.metrics.RunMetrics` to
            ``result.run_metrics``.  ``True`` samples every
            ``DEFAULT_INTERVAL_MS``; a float sets the sampling interval in
            simulated milliseconds.
        lineage: stamp every message and timer with the id of the event
            being handled when it was created, so traces carry the causal
            DAG behind :mod:`repro.observability.causality`.  On by default
            (zero RNG cost; adds trace fields only).
        health: run the streaming anomaly detectors
            (:class:`~repro.observability.health.HealthMonitor`) and attach
            a :class:`~repro.observability.health.HealthReport` to
            ``result.health``.  ``True`` evaluates every
            ``DEFAULT_WINDOW_MS``; a float sets the window width in
            simulated milliseconds.
    """
    profiler = Profiler() if profile else None
    registry = _metrics_registry(metrics)
    monitor = _health_monitor(health)
    return Controller(
        config, sink=sink, profiler=profiler, metrics=registry,
        lineage=lineage, health=monitor,
    ).run()


def _metrics_registry(metrics: bool | float) -> MetricsRegistry | None:
    """Resolve the ``metrics`` run option into a registry (or ``None``)."""
    if metrics is False:
        return None
    if metrics is True:
        return MetricsRegistry(interval=DEFAULT_INTERVAL_MS)
    return MetricsRegistry(interval=float(metrics))


def _health_monitor(health: bool | float) -> HealthMonitor | None:
    """Resolve the ``health`` run option into a monitor (or ``None``)."""
    if health is False:
        return None
    if health is True:
        return HealthMonitor(window_ms=DEFAULT_WINDOW_MS)
    return HealthMonitor(window_ms=float(health))


def seed_window(
    config: SimulationConfig,
    repetitions: int,
    seed_offset: int = 0,
) -> list[SimulationConfig]:
    """The configurations of one repetition batch, in seed order.

    **Seed-window contract:** run ``i`` (``0 <= i < repetitions``) uses seed
    ``config.seed + seed_offset + i``, i.e. the batch covers the half-open
    window ``[config.seed + seed_offset, config.seed + seed_offset +
    repetitions)``.  Callers splitting one experiment across several calls
    must pick offsets that keep the windows disjoint — consecutive chunks of
    ``k`` runs use offsets ``0, k, 2k, ...``.  Overlap across calls cannot be
    detected here (each call only sees its own window), which is exactly why
    the contract is explicit: reusing a seed silently duplicates a run.

    Raises:
        ValueError: if ``repetitions < 1`` or ``seed_offset < 0`` (a negative
            offset shifts the window below the base seed and collides with
            the windows of smaller base seeds).
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if seed_offset < 0:
        raise ValueError(
            f"seed_offset must be >= 0, got {seed_offset}; negative offsets "
            "make seed windows overlap those of smaller base seeds"
        )
    return [
        config.replace(seed=config.seed + seed_offset + index)
        for index in range(repetitions)
    ]


def _check_batch_options(jobs: int | None, timeout: float | None, retries: int,
                         on_error: str) -> None:
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be > 0 seconds, got {timeout}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if on_error not in ON_ERROR_POLICIES:
        raise ValueError(
            f"on_error must be one of {ON_ERROR_POLICIES}, got {on_error!r}"
        )


def _raise_failures(entries: list[SimulationResult | RunFailure]) -> None:
    failures = [e for e in entries if isinstance(e, RunFailure)]
    if failures:
        raise ExperimentFailureError(failures)


def repeat_simulation(
    config: SimulationConfig,
    repetitions: int,
    seed_offset: int = 0,
    callback: Callable[[int, SimulationResult], None] | None = None,
    *,
    jobs: int | None = 1,
    timeout: float | None = None,
    retries: int = 1,
    on_error: str = "raise",
    progress: Callable[..., None] | None = None,
    profile: bool = False,
    metrics: bool | float = False,
    health: bool | float = False,
    recorder: Callable[[int, "SimulationResult | RunFailure"], None] | None = None,
) -> list[SimulationResult | RunFailure]:
    """Run ``config`` under ``repetitions`` consecutive seeds.

    Run ``i`` uses seed ``config.seed + seed_offset + i`` — see
    :func:`seed_window` for the full seed-window contract (and the
    ``ValueError`` cases: ``repetitions < 1``, ``seed_offset < 0``).

    Args:
        config: the base configuration; its own ``seed`` is the first seed.
        repetitions: number of runs.
        seed_offset: shifts the seed window (useful for splitting work
            across calls; keep windows disjoint).
        callback: optional per-run hook ``callback(run_index, result)``,
            invoked in seed order (streamed during serial execution, after
            the batch during parallel execution).
        jobs: worker processes; ``1`` (default) runs serially in-process,
            ``None`` uses one worker per CPU.  Parallel results are
            field-identical to serial ones except ``wall_clock_seconds``.
        timeout: wall-clock seconds allowed per run; ``None`` disables the
            deadline.  Any timeout (even with ``jobs=1``) routes execution
            through the worker-process engine so hung runs can be killed.
        retries: extra attempts for runs whose worker crashed or hung
            (simulation exceptions are deterministic and never retried).
        on_error: ``"raise"`` (default) raises
            :class:`~repro.core.errors.ExperimentFailureError` after the
            batch finishes if any run failed; ``"record"`` leaves a
            :class:`~repro.core.results.RunFailure` in the failed run's
            slot and returns the mixed list.
        progress: optional :class:`repro.parallel.ProgressUpdate` callback
            (parallel engine only).
        profile: profile every run's hot path (see :func:`run_simulation`);
            each result carries its own
            :class:`~repro.observability.profiler.RunProfile`, mergeable
            with :meth:`RunProfile.merge`.
        metrics: sample engine metrics in every run (see
            :func:`run_simulation`); each result carries its own
            :class:`~repro.observability.metrics.RunMetrics`, mergeable
            with :meth:`RunMetrics.merge`.
        health: run the streaming anomaly detectors in every run (see
            :func:`run_simulation`); each result carries its own
            :class:`~repro.observability.health.HealthReport`.
        recorder: optional run recorder ``recorder(run_index, entry)``
            (e.g. a :class:`repro.store.StoreRecorder`) invoked once per
            terminal run — streamed as runs finish, so a persistent store
            shows live progress.  Recording happens strictly after a run
            completes; results are byte-identical with or without it.

    Returns:
        One entry per run, in seed order: :class:`SimulationResult`, or
        :class:`RunFailure` under ``on_error="record"``.
    """
    _check_batch_options(jobs, timeout, retries, on_error)
    configs = seed_window(config, repetitions, seed_offset)

    if jobs == 1 and timeout is None:
        entries: list[SimulationResult | RunFailure] = []
        for index, run_config in enumerate(configs):
            if on_error == "raise":
                result: SimulationResult | RunFailure = run_simulation(
                    run_config, profile=profile, metrics=metrics, health=health
                )
            else:
                try:
                    result = run_simulation(
                        run_config, profile=profile, metrics=metrics,
                        health=health,
                    )
                except Exception as exc:
                    result = RunFailure(
                        config=run_config,
                        kind="error",
                        error_type=type(exc).__name__,
                        message=str(exc),
                        run_index=index,
                    )
            if recorder is not None:
                recorder(index, result)
            if callback is not None:
                callback(index, result)
            entries.append(result)
        return entries

    from ..parallel import ParallelRunner

    runner = ParallelRunner(
        jobs=jobs, timeout=timeout, retries=retries, progress=progress,
        profile=profile, metrics=metrics, health=health, recorder=recorder,
    )
    entries = runner.map(configs)
    if on_error == "raise":
        _raise_failures(entries)
    if callback is not None:
        for index, entry in enumerate(entries):
            callback(index, entry)
    return entries


def sweep(
    base: SimulationConfig,
    variations: Iterable[dict],
    repetitions: int = 1,
    *,
    jobs: int | None = 1,
    timeout: float | None = None,
    retries: int = 1,
    on_error: str = "raise",
    progress: Callable[..., None] | None = None,
    profile: bool = False,
    metrics: bool | float = False,
    health: bool | float = False,
    recorder: Callable[[int, "SimulationResult | RunFailure"], None] | None = None,
) -> list[list[SimulationResult | RunFailure]]:
    """Run ``base`` once per variation, each repeated ``repetitions`` times.

    Each variation is a dict of ``SimulationConfig.replace`` keyword
    arguments (nested ``network``/``attack`` dicts merge).

    With ``jobs > 1`` the whole ``variations x repetitions`` grid is
    flattened into a single batch for the parallel engine, so workers stay
    saturated across variation boundaries; the grouped result order is
    identical to the serial one.  ``timeout``, ``retries``, ``on_error``,
    ``progress``, ``profile``, and ``metrics`` behave as in
    :func:`repeat_simulation`.  A ``recorder`` sees the grid's *flattened*
    run indices (``variation_index * repetitions + rep``), identically for
    serial and parallel execution.
    """
    _check_batch_options(jobs, timeout, retries, on_error)
    variations = list(variations)

    if jobs == 1 and timeout is None:
        groups = []
        for v_index, variation in enumerate(variations):
            group_recorder = None
            if recorder is not None:
                from ..store.recorder import offset_recorder

                group_recorder = offset_recorder(
                    recorder, v_index * repetitions
                )
            groups.append(
                repeat_simulation(
                    base.replace(**variation), repetitions, on_error=on_error,
                    profile=profile, metrics=metrics, health=health,
                    recorder=group_recorder,
                )
            )
        return groups

    from ..parallel import ParallelRunner

    runner = ParallelRunner(
        jobs=jobs, timeout=timeout, retries=retries, progress=progress,
        profile=profile, metrics=metrics, health=health, recorder=recorder,
    )
    groups = runner.run_sweep(base, variations, repetitions)
    if on_error == "raise":
        _raise_failures([entry for group in groups for entry in group])
    return groups
