"""High-level entry points for running simulations.

:func:`run_simulation` executes one configuration; :func:`repeat_simulation`
re-runs it under different seeds — the paper repeats every experiment 100
times and reports mean and standard deviation (§IV).
"""

from __future__ import annotations

from typing import Callable, Iterable

from .config import SimulationConfig
from .controller import Controller
from .results import SimulationResult


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Build a controller for ``config``, run it, return the result.

    The run is a deterministic function of ``config`` (including its seed):
    calling this twice with an equal configuration yields identical results,
    event counts, and traces.
    """
    return Controller(config).run()


def repeat_simulation(
    config: SimulationConfig,
    repetitions: int,
    seed_offset: int = 0,
    callback: Callable[[int, SimulationResult], None] | None = None,
) -> list[SimulationResult]:
    """Run ``config`` under ``repetitions`` consecutive seeds.

    Args:
        config: the base configuration; its own ``seed`` is the first seed.
        repetitions: number of runs.
        seed_offset: shifts the seed window (useful for splitting work).
        callback: optional per-run hook ``callback(run_index, result)``.

    Returns:
        One result per run, in seed order.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    results: list[SimulationResult] = []
    for index in range(repetitions):
        run_config = config.replace(seed=config.seed + seed_offset + index)
        result = run_simulation(run_config)
        if callback is not None:
            callback(index, result)
        results.append(result)
    return results


def sweep(
    base: SimulationConfig,
    variations: Iterable[dict],
    repetitions: int = 1,
) -> list[list[SimulationResult]]:
    """Run ``base`` once per variation, each repeated ``repetitions`` times.

    Each variation is a dict of ``SimulationConfig.replace`` keyword
    arguments (nested ``network``/``attack`` dicts merge).
    """
    return [
        repeat_simulation(base.replace(**variation), repetitions)
        for variation in variations
    ]
