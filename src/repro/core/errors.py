"""Exception hierarchy for the simulator.

Every error raised by :mod:`repro` derives from :class:`SimulationError` so
that callers can catch simulator failures without swallowing unrelated bugs.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the simulator."""


class ConfigurationError(SimulationError):
    """A simulation configuration is invalid or internally inconsistent."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or the queue was misused."""


class CapabilityError(SimulationError):
    """An attacker attempted an action its capabilities do not permit.

    The attacker framework enforces the threat model centrally: for example,
    dropping an honest node's message requires the ``NETWORK`` capability,
    and corrupting a node mid-run requires ``ADAPTIVE``.  Violations are
    programming errors in the attack implementation, not simulated events,
    so they raise instead of being silently ignored.
    """


class CorruptionBudgetError(CapabilityError):
    """An attacker attempted to corrupt more than ``f`` nodes."""


class SafetyViolationError(SimulationError):
    """Two honest nodes decided different values for the same slot.

    A correctly implemented BFT protocol must never trigger this under the
    threat model it was designed for; the metrics collector raises it as
    soon as conflicting decisions are reported so the failing execution is
    caught at the earliest possible point.
    """


class LivenessTimeoutError(SimulationError):
    """The simulation exceeded its horizon without reaching termination."""


class ValidationError(SimulationError):
    """The validator module found a mismatch against the ground truth."""


class ProtocolViolationError(SimulationError):
    """An honest node observed a message that violates protocol invariants.

    Honest replicas use this for conditions that indicate a bug in the
    *simulator or protocol implementation* (for example, a forged signature
    from an honest signer, which the crypto layer guarantees impossible).
    Byzantine misbehaviour that the protocol is designed to tolerate must be
    handled gracefully, never via this exception.
    """


class ExperimentFailureError(SimulationError):
    """A batch of runs contained failures and the caller asked to raise.

    ``repeat_simulation``/``sweep`` collect per-run
    :class:`~repro.core.results.RunFailure` records; under the default
    ``on_error="raise"`` policy the first failure is re-raised as this
    exception (with every failure attached) once the batch finishes, so a
    parallel batch still completes its healthy runs before reporting.

    Attributes:
        failures: every :class:`~repro.core.results.RunFailure` in the batch.
    """

    def __init__(self, failures) -> None:
        self.failures = list(failures)
        first = self.failures[0]
        more = f" (+{len(self.failures) - 1} more)" if len(self.failures) > 1 else ""
        super().__init__(f"{first.summary()}{more}")


class BaselineCapacityError(SimulationError):
    """The baseline (BFTSim-style) simulator exceeded its memory budget.

    Models the out-of-memory failures the paper reports for BFTSim beyond
    32 nodes (Fig. 2).
    """
