"""Result objects returned by a simulation run.

Everything here is part of the **picklable result contract**: results and
failure records cross process boundaries (the :mod:`repro.parallel` engine
runs simulations in worker processes and ships results back over pipes), so
every field must survive a pickle round-trip.  A dedicated test guards this.

:func:`result_fingerprint` digests the deterministic fields of a result.
Two runs of the same configuration — serial or parallel, today or on a
future version — must produce the same fingerprint; the golden determinism
tests and the serial/parallel equivalence tests are built on it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any

from .config import SimulationConfig
from .metrics import Decision, FaultCounts, MessageCounts
from .tracing import Trace

if TYPE_CHECKING:  # pragma: no cover
    from ..observability.health import HealthReport
    from ..observability.metrics import RunMetrics
    from ..observability.profiler import RunProfile


@dataclass(frozen=True)
class StallReport:
    """Structured diagnosis of a run the liveness watchdog stopped.

    Produced when ``SimulationConfig.stall_timeout`` is set and no honest
    node made progress (decision, view advance, or delivered message) for
    that long: the run degrades into a result carrying this report instead
    of spinning to the horizon and raising an opaque
    :class:`~repro.core.errors.LivenessTimeoutError`.

    Like ``wall_clock_seconds`` and :class:`~repro.core.metrics.FaultCounts`,
    stall reports are excluded from :func:`result_fingerprint`.

    Attributes:
        detected_at: simulation time (ms) at which the stall was declared.
        last_progress: time of the last honest progress event.
        stall_timeout: the configured watchdog window (ms).
        reason: human-readable cause (watchdog window exceeded, event queue
            drained, ...).
        node_last_activity: per-node time of last observed activity.
        pending_events: census of the live event queue at detection, keyed
            by event label (``"message:<type>"`` / ``"timer:<name>"``).
        fault_counts: environmental fault counters at detection.
        down_nodes: nodes crashed (environment) at detection.
        halted_nodes: nodes corrupted (attacker) at detection.
    """

    detected_at: float
    last_progress: float
    stall_timeout: float
    reason: str
    node_last_activity: dict[int, float]
    pending_events: dict[str, int]
    fault_counts: FaultCounts
    down_nodes: tuple[int, ...] = ()
    halted_nodes: tuple[int, ...] = ()

    def summary(self) -> str:
        """One-line human-readable summary."""
        pending = sum(self.pending_events.values())
        return (
            f"STALLED at {self.detected_at:.1f}ms ({self.reason}); "
            f"last progress at {self.last_progress:.1f}ms, "
            f"{pending} pending events, "
            f"{len(self.down_nodes)} down / {len(self.halted_nodes)} halted nodes"
        )


@dataclass(frozen=True)
class RequestRecord:
    """Final outcome of one client request in a workload run.

    Part of the picklable result contract; carried on
    ``SimulationResult.workload.requests`` as per-request detail for the
    conservation tests and the analysis layer, but excluded from
    :meth:`ThroughputMetrics.to_dict` (and therefore the fingerprint) the
    same way the trace is — bulky determinism, guarded by the aggregate
    counts instead.

    Attributes:
        id: stable request identifier (``"req{client}.{index}"``).
        client: submitting client.
        submitted_at: submission time (simulated ms).
        decided_at: time the first honest node decided the slot carrying
            this request, or ``None`` when the run ended with the request
            still outstanding.
        slot: the decided slot carrying the request (``None`` while
            outstanding).
        batch: tag of the decided batch carrying the request (``None``
            while outstanding).
        requeues: how many times the request was cut into a batch whose
            slot decided a different value (view-change casualties that
            went back to the mempool).
    """

    id: str
    client: int
    submitted_at: float
    decided_at: float | None = None
    slot: int | None = None
    batch: str | None = None
    requeues: int = 0

    @property
    def decided(self) -> bool:
        return self.decided_at is not None

    @property
    def latency(self) -> float | None:
        """Client-perceived latency (decide - submit), or ``None``."""
        if self.decided_at is None:
            return None
        return self.decided_at - self.submitted_at


@dataclass
class ThroughputMetrics:
    """Throughput/latency outcome of a workload run.

    The aggregate fields (everything :meth:`to_dict` returns) are
    deterministic functions of the configuration and participate in
    :func:`result_fingerprint` for workload runs — the request counts are
    the determinism guard the throughput benchmarks assert on.  Runs
    without a workload carry ``SimulationResult.workload = None`` and
    their fingerprints are byte-identical to older versions.

    Attributes:
        submitted: requests submitted by the arrival processes.
        decided: requests carried by a decided batch at run end.
        committed_tx_s: decided requests per second of simulated time.
        latency_mean_ms / latency_p50_ms / latency_p90_ms /
            latency_p99_ms / latency_max_ms: per-request latency
            distribution (decide time minus submit time) over the decided
            requests; all 0.0 when nothing was decided.
        per_client: client id -> ``[submitted, decided, mean latency ms]``.
        batches: decided batches.
        max_batch: largest decided batch.
        max_queue_depth: high-water mark of the mempool.
        requeues: batch-cut casualties (requests returned to the mempool
            because their slot decided a different value).
        backlog_at_arrival_end: requests not yet decided when the arrival
            window closed (the queue the protocol was left to drain).
        saturated: the saturation flag of a throughput-latency curve —
            True when the run ended with undecided requests, or when more
            than half the load was still backlogged at the end of the
            arrival window (drain rate below offered rate throughout).
        requests: per-request detail (excluded from :meth:`to_dict`).
    """

    submitted: int
    decided: int
    committed_tx_s: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p90_ms: float
    latency_p99_ms: float
    latency_max_ms: float
    per_client: dict[int, list[float]]
    batches: int
    max_batch: int
    max_queue_depth: int
    requeues: int
    backlog_at_arrival_end: int
    saturated: bool
    requests: list[RequestRecord] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """Deterministic aggregate form (per-request detail excluded)."""
        data = asdict(self)
        data.pop("requests")
        data["per_client"] = {
            str(client): stats for client, stats in self.per_client.items()
        }
        return data

    def summary(self) -> str:
        """One-line human-readable summary."""
        flag = " SATURATED" if self.saturated else ""
        return (
            f"workload: {self.decided}/{self.submitted} requests decided "
            f"({self.committed_tx_s:.1f} tx/s), latency p50="
            f"{self.latency_p50_ms:.1f}ms p99={self.latency_p99_ms:.1f}ms "
            f"over {self.batches} batches (max {self.max_batch}, "
            f"queue<= {self.max_queue_depth}){flag}"
        )


@dataclass
class SimulationResult:
    """Everything a run produced.

    Attributes:
        config: the configuration that produced this result.
        terminated: True if every honest node decided the configured number
            of values before the horizon; False means the run was cut off at
            ``max_time`` (only possible with ``allow_horizon=True``).
        latency: total simulated time usage in ms (start to termination, or
            to the horizon when not terminated).
        latency_per_decision: ``latency / num_decisions`` — the per-decision
            metric the paper reports for pipelined protocols.
        messages: honest message usage (network transmissions).
        messages_per_decision: ``messages / num_decisions``.
        counts: full traffic breakdown (honest/byzantine/dropped/delivered).
        decisions: every recorded honest decision, in report order.
        decided_values: slot -> agreed value.
        faulty: nodes that ended the run crashed or corrupted.
        events_processed: number of events the controller dispatched.
        max_view: the highest view/round/iteration any honest node reported
            entering — the run's round complexity (§II-C).
        wall_clock_seconds: real time the run took — the quantity compared
            against the baseline simulator in the paper's Fig. 2.
        trace: full event trace when ``record_trace`` was enabled, else an
            empty disabled trace.
        fault_counts: environmental fault counters (:mod:`repro.faults`);
            all zeros for fault-free runs.  Excluded from the fingerprint.
        stall: the liveness watchdog's :class:`StallReport` when the run was
            stopped as stalled, else ``None``.  Excluded from the
            fingerprint.
        profile: hot-path timing breakdown
            (:class:`~repro.observability.profiler.RunProfile`) when the run
            was profiled, else ``None``.  Host-time telemetry — excluded
            from the fingerprint by the same policy as
            ``wall_clock_seconds``.
        run_metrics: simulated-time metrics
            (:class:`~repro.observability.metrics.RunMetrics`) when the run
            carried a metrics registry, else ``None``.  Observability
            output — excluded from the fingerprint like ``profile``.
        signals_summary: final :meth:`~repro.observability.signals.
            LiveSignals.summary_dict` snapshot (fan-in by message kind,
            per-view phase timings, closing senders) when the run's attacker
            requested live signals, else ``None``.  What the adversary saw —
            persisted by the experiment store, excluded from the fingerprint
            like the other observability fields.
        workload: :class:`ThroughputMetrics` when the run drove an open-loop
            client workload, else ``None``.  The aggregate part participates
            in the fingerprint (see :func:`deterministic_dict`); runs
            without a workload are byte-identical to older versions.
        health: :class:`~repro.observability.health.HealthReport` when the
            run carried a health monitor, else ``None``.  Observability
            output — excluded from the fingerprint like ``profile`` and
            ``run_metrics``.
    """

    config: SimulationConfig
    terminated: bool
    latency: float
    latency_per_decision: float
    messages: int
    messages_per_decision: float
    counts: MessageCounts
    decisions: list[Decision]
    decided_values: dict[int, Any]
    faulty: frozenset[int]
    events_processed: int
    max_view: int
    wall_clock_seconds: float
    trace: Trace = field(default_factory=lambda: Trace(enabled=False))
    fault_counts: FaultCounts = field(default_factory=FaultCounts)
    stall: StallReport | None = None
    profile: "RunProfile | None" = None
    run_metrics: "RunMetrics | None" = None
    signals_summary: dict | None = None
    workload: ThroughputMetrics | None = None
    health: "HealthReport | None" = None

    @property
    def stalled(self) -> bool:
        """True when the liveness watchdog stopped this run."""
        return self.stall is not None

    @property
    def bytes_sent(self) -> int:
        """Estimated honest wire bytes (reconstructed per §II-C)."""
        return self.counts.bytes_sent

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.terminated:
            status = "terminated"
        elif self.stalled:
            status = "STALLED"
        else:
            status = "HORIZON"
        return (
            f"{self.config.protocol}: {status} latency={self.latency:.1f}ms "
            f"({self.latency_per_decision:.1f}ms/decision) "
            f"msgs={self.messages} ({self.messages_per_decision:.1f}/decision) "
            f"events={self.events_processed}"
        )


@dataclass(frozen=True)
class RunFailure:
    """Structured record of one run that did not produce a result.

    The parallel engine (and ``repeat_simulation(..., on_error="record")``)
    puts a ``RunFailure`` in the failed run's output slot instead of raising
    a batch-wide exception, so a single bad run never discards the rest of
    an experiment.  :func:`repro.analysis.aggregate.summarize` excludes
    failures from the statistics and reports their count.

    Attributes:
        config: the configuration whose run failed (seed already resolved).
        kind: ``"error"`` for an exception raised by the simulation itself
            (deterministic — never retried), ``"crash"`` for a worker
            process that died without replying, ``"timeout"`` for a run
            that exceeded the per-run wall-clock deadline.
        error_type: exception class name for ``"error"`` failures, else the
            kind itself.
        message: human-readable failure description.
        run_index: the run's slot in its batch (seed order).
        attempts: how many times the run was attempted in total.
        traceback: formatted traceback text for ``"error"`` failures
            (empty for crashes and timeouts — the worker could not report).
    """

    config: SimulationConfig
    kind: str
    error_type: str
    message: str
    run_index: int
    attempts: int = 1
    traceback: str = ""

    def summary(self) -> str:
        """One-line human-readable summary, mirroring the result form."""
        return (
            f"{self.config.protocol}: FAILED ({self.kind}) run={self.run_index} "
            f"seed={self.config.seed} attempts={self.attempts}: "
            f"{self.error_type}: {self.message}"
        )


def is_failure(entry: Any) -> bool:
    """True when a batch entry is a :class:`RunFailure`."""
    return isinstance(entry, RunFailure)


def deterministic_dict(result: SimulationResult, include_trace: bool = False) -> dict:
    """The deterministic fields of ``result`` as a JSON-friendly dict.

    Excludes ``wall_clock_seconds`` (host time, varies between otherwise
    identical runs), the fault/stall/profile diagnostics (``fault_counts``,
    ``stall`` and ``profile`` — diagnostic observability, kept out of the
    fingerprint by the same policy as wall-clock time) and, unless
    requested, the trace
    (deterministic but bulky, and only recorded when ``record_trace`` is
    set).

    Workload runs contribute their :meth:`ThroughputMetrics.to_dict`
    aggregates under a ``"workload"`` key; runs without a workload omit the
    key entirely so their fingerprints are unchanged from older versions.
    """
    data = {
        "config": result.config.to_dict(),
        "terminated": result.terminated,
        "latency": result.latency,
        "latency_per_decision": result.latency_per_decision,
        "messages": result.messages,
        "messages_per_decision": result.messages_per_decision,
        "counts": asdict(result.counts),
        "decisions": [
            [d.node, d.slot, d.value, d.time] for d in result.decisions
        ],
        "decided_values": {str(k): v for k, v in result.decided_values.items()},
        "faulty": sorted(result.faulty),
        "events_processed": result.events_processed,
        "max_view": result.max_view,
    }
    if result.workload is not None:
        data["workload"] = result.workload.to_dict()
    if include_trace:
        data["trace"] = result.trace.to_jsonl()
    return data


def result_fingerprint(result: SimulationResult, include_trace: bool = False) -> str:
    """Stable hex digest of every deterministic field of ``result``.

    Two runs of an equal configuration must yield equal fingerprints,
    whether executed serially or by the parallel engine — this is the
    determinism contract the golden-digest and serial/parallel-equivalence
    tests enforce.
    """
    payload = json.dumps(
        deterministic_dict(result, include_trace=include_trace),
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode()).hexdigest()
