"""Result objects returned by a simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .config import SimulationConfig
from .metrics import Decision, MessageCounts
from .tracing import Trace


@dataclass
class SimulationResult:
    """Everything a run produced.

    Attributes:
        config: the configuration that produced this result.
        terminated: True if every honest node decided the configured number
            of values before the horizon; False means the run was cut off at
            ``max_time`` (only possible with ``allow_horizon=True``).
        latency: total simulated time usage in ms (start to termination, or
            to the horizon when not terminated).
        latency_per_decision: ``latency / num_decisions`` — the per-decision
            metric the paper reports for pipelined protocols.
        messages: honest message usage (network transmissions).
        messages_per_decision: ``messages / num_decisions``.
        counts: full traffic breakdown (honest/byzantine/dropped/delivered).
        decisions: every recorded honest decision, in report order.
        decided_values: slot -> agreed value.
        faulty: nodes that ended the run crashed or corrupted.
        events_processed: number of events the controller dispatched.
        max_view: the highest view/round/iteration any honest node reported
            entering — the run's round complexity (§II-C).
        wall_clock_seconds: real time the run took — the quantity compared
            against the baseline simulator in the paper's Fig. 2.
        trace: full event trace when ``record_trace`` was enabled, else an
            empty disabled trace.
    """

    config: SimulationConfig
    terminated: bool
    latency: float
    latency_per_decision: float
    messages: int
    messages_per_decision: float
    counts: MessageCounts
    decisions: list[Decision]
    decided_values: dict[int, Any]
    faulty: frozenset[int]
    events_processed: int
    max_view: int
    wall_clock_seconds: float
    trace: Trace = field(default_factory=lambda: Trace(enabled=False))

    @property
    def bytes_sent(self) -> int:
        """Estimated honest wire bytes (reconstructed per §II-C)."""
        return self.counts.bytes_sent

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "terminated" if self.terminated else "HORIZON"
        return (
            f"{self.config.protocol}: {status} latency={self.latency:.1f}ms "
            f"({self.latency_per_decision:.1f}ms/decision) "
            f"msgs={self.messages} ({self.messages_per_decision:.1f}/decision) "
            f"events={self.events_processed}"
        )
